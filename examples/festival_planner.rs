//! Festival planner: the paper's motivating scenario (§1) — a multi-stage
//! music festival scheduling concerts against competing venues.
//!
//! Uses the simulated Concerts (Yahoo! Music) dataset: 600 albums are
//! candidate concerts over 40 slots with 8 stages; rival venues host
//! competing gigs in every slot. Demonstrates the attendance-maximizing
//! schedule and the §2.1 *profit-oriented* extension (each concert has an
//! organization cost; unprofitable ones are dropped).
//!
//! Run with: `cargo run --release --example festival_planner`

use social_event_scheduling::algorithms::prelude::*;
use social_event_scheduling::core::scoring::utility::total_profit;
use social_event_scheduling::datasets::concerts::{self, ConcertsParams};
use social_event_scheduling::IntervalId;

fn main() {
    let params = ConcertsParams {
        num_users: 1_500,
        num_events: 600,
        num_intervals: 40,
        num_locations: 8, // stages
        ..ConcertsParams::default()
    };
    let mut inst = concerts::generate(&params);
    println!(
        "Festival: {} candidate concerts, {} slots, {} stages, {} fans, {} competing gigs\n",
        inst.num_events(),
        inst.num_intervals(),
        8,
        inst.num_users(),
        inst.num_competing()
    );

    // Attendance-maximizing schedule for a 60-concert program.
    let k = 60;
    let plan = HorI.run(&inst, k);
    println!(
        "HOR-I schedules {} concerts, expected attendance {:.0} (took {:.0} ms, {} score computations)",
        plan.schedule.len(),
        plan.utility,
        plan.elapsed.as_secs_f64() * 1e3,
        plan.stats.score_computations
    );

    // Busiest slots.
    let mut load: Vec<(usize, usize)> = (0..inst.num_intervals())
        .map(|t| (plan.schedule.events_at(IntervalId::new(t)).len(), t))
        .collect();
    load.sort_unstable_by(|a, b| b.cmp(a));
    println!("Busiest slots: {:?}", &load[..5.min(load.len())]);

    // Profit-oriented variant: every concert costs 3.0 to produce; each
    // expected attendee is worth 1.0. Weak slots stop being worth it.
    for e in &mut inst.events {
        e.cost = 3.0;
    }
    let profit_plan =
        ProfitGreedy { revenue_per_attendee: 1.0, stop_when_unprofitable: true }.run(&inst, k);
    let profit = total_profit(&inst, &profit_plan.schedule, 1.0);
    println!(
        "\nProfit mode (cost 3.0/concert): schedules {} of {} allowed, expected profit {:.1}",
        profit_plan.schedule.len(),
        k,
        profit
    );
    let naive_profit = total_profit(&inst, &plan.schedule, 1.0);
    println!(
        "Attendance-max plan would net {:.1} — profit mode improves it by {:.1}",
        naive_profit,
        profit - naive_profit
    );

    assert!(profit >= naive_profit - 1e-9, "profit mode must not lose to attendance mode");
}
