//! Worst-case analysis for the horizontal algorithms (Propositions 5 & 7).
//!
//! HOR performs ⌈k/|T|⌉ rounds and always pays for a full round of score
//! computations; with `k mod |T| = 1` the final round's work buys a single
//! selection. This example measures HOR/HOR-I at `|T| = k - 1` (the worst
//! case), `|T| = k` (best: one round), and `|T| = k/2` (exact rounds), and
//! shows that even in the worst case the horizontal algorithms beat ALG.
//!
//! Run with: `cargo run --release --example worst_case_analysis`

use social_event_scheduling::algorithms::prelude::*;
use social_event_scheduling::datasets::Dataset;

fn main() {
    let (users, k, events) = (300usize, 60usize, 300usize);
    println!("Zip dataset, |U| = {users}, |E| = {events}, k = {k}\n");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>14} {:>14}",
        "|T|", "rounds", "ALG comp", "HOR comp", "HOR-I comp", "INC comp"
    );

    for (label, intervals) in
        [("k-1 (worst)", k - 1), ("k (1 round)", k), ("k/2 (exact)", k / 2), ("3k/2", 3 * k / 2)]
    {
        let inst = Dataset::Zip.build(users, events, intervals, 7);
        let alg = Alg.run(&inst, k);
        let hor = Hor.run(&inst, k);
        let hor_i = HorI.run(&inst, k);
        let inc = Inc.run(&inst, k);
        println!(
            "{:>10} {:>8} {:>14} {:>14} {:>14} {:>14}   [{label}]",
            intervals,
            k.div_ceil(intervals),
            alg.stats.user_ops,
            hor.stats.user_ops,
            hor_i.stats.user_ops,
            inc.stats.user_ops,
        );
        assert!(hor_i.stats.user_ops <= hor.stats.user_ops, "HOR-I must never out-compute HOR");
        // Utility parity within each pair (Props. 3 & 6).
        assert!((alg.utility - inc.utility).abs() < 1e-9);
        assert!((hor.utility - hor_i.utility).abs() < 1e-9);
    }

    println!("\nAt |T| = k-1 the last round computes a full |T|-selection worth of scores");
    println!("for one pick (Prop. 5) — visible as the jump between rows 2 and 1. Even so,");
    println!("both horizontal variants stay below ALG's computation count (Fig. 10a).");
}
