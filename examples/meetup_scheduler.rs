//! Meetup scheduler: event-based social network scenario (EBSN, §1).
//!
//! A Meetup-like community with sparse, topic-driven interest: most members
//! care about a handful of the candidate events. Compares all algorithms on
//! schedule quality and cost, and demonstrates the *user weights* extension
//! (§2.1): weighting influential members changes which events get scheduled.
//!
//! Run with: `cargo run --release --example meetup_scheduler`

use social_event_scheduling::algorithms::prelude::*;
use social_event_scheduling::datasets::meetup::{self, MeetupParams};

fn main() {
    let params = MeetupParams {
        num_users: 1_200,
        num_events: 400,
        num_intervals: 50,
        ..MeetupParams::default()
    };
    let inst = meetup::generate(&params);

    let nnz: usize = (0..inst.num_events()).map(|e| inst.event_interest.column_len(e)).sum();
    println!(
        "Community: {} members, {} candidate events, {} slots; interest sparsity {:.1}%\n",
        inst.num_users(),
        inst.num_events(),
        inst.num_intervals(),
        100.0 * nnz as f64 / (inst.num_events() * inst.num_users()) as f64
    );

    let k = 30;
    println!("Scheduling k = {k} events:");
    println!("{:>8} {:>12} {:>14} {:>10}", "method", "attendance", "computations", "time(ms)");
    for kind in SchedulerKind::paper_lineup() {
        let res = kind.run(&inst, k);
        println!(
            "{:>8} {:>12.1} {:>14} {:>10.1}",
            res.algorithm,
            res.utility,
            res.stats.user_ops,
            res.elapsed.as_secs_f64() * 1e3
        );
    }

    // Influence extension: organizers often weight "connector" members whose
    // attendance draws others. Triple-weight the 10% most active members.
    let mut activity_mass: Vec<(f64, usize)> = (0..inst.num_users())
        .map(|u| {
            let total: f64 = (0..inst.num_intervals()).map(|t| inst.activity.value(u, t)).sum();
            (total, u)
        })
        .collect();
    activity_mass.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let mut weights = vec![1.0; inst.num_users()];
    for &(_, u) in activity_mass.iter().take(inst.num_users() / 10) {
        weights[u] = 3.0;
    }
    let mut weighted = inst.clone();
    weighted.user_weights = Some(weights);

    let base = HorI.run(&inst, k);
    let infl = HorI.run(&weighted, k);
    let base_set: std::collections::HashSet<_> =
        base.schedule.assignments().iter().map(|a| a.event).collect();
    let moved = infl.schedule.assignments().iter().filter(|a| !base_set.contains(&a.event)).count();
    println!(
        "\nInfluence weighting (3× the most active decile) changes {moved} of {k} picks \
         (weighted objective {:.1})",
        infl.utility
    );
}
