//! Multi-session serving, embedded: the `ses serve --listen` engine as a
//! library, no sockets required.
//!
//! Drives a `SessionManager` — the exact object behind the TCP server
//! (DESIGN.md §15) — through the v1 wire protocol: opens two named
//! sessions next to the built-in `default`, schedules independently in
//! each, shows that a mutation in one session moves zero bytes in the
//! other, and reads a session concurrently with its own in-flight
//! mutation (the published-view rule: the answer is the pre- or the
//! post-mutation bytes, never a blend).
//!
//! Run with: `cargo run --release --example multi_session`

use social_event_scheduling::algorithms::service::wire;
use social_event_scheduling::algorithms::{Request, SessionManager};
use social_event_scheduling::core::parallel::Threads;
use social_event_scheduling::datasets::Dataset;
use std::sync::Arc;

fn schedule(algorithm: &str, k: usize) -> Request {
    Request::Schedule {
        algorithm: algorithm.to_string(),
        k,
        threads: None,
        gate: false,
        profile: false,
        constraints: None,
    }
}

fn main() {
    // The manager every connection of a TCP server shares: one template
    // instance, in-memory sessions (pass a state dir to make them
    // durable), up to 8 of them.
    let inst = Dataset::Unf.build(120, 18, 6, 42);
    let (manager, boots) =
        SessionManager::new(inst, Threads::default(), None, 1024, 8).expect("boot");
    println!("booted {} session(s): {:?}", boots.len(), boots[0].session);

    // Session control speaks the same wire lines a socket would carry.
    for name in ["planning", "analytics"] {
        let line = wire::encode_request(&Request::OpenSession { session: name.to_string() });
        println!("<- {}", manager.handle_line(&line));
    }

    // Independent schedules per session: INC in one, HOR in the other.
    let inc = wire::encode_request_for("planning", &schedule("INC", 6));
    let hor = wire::encode_request_for("analytics", &schedule("HOR", 4));
    let inc_resp = manager.handle_line(&inc);
    let hor_resp = manager.handle_line(&hor);
    println!("<- planning:  {}…", &inc_resp[..inc_resp.len().min(100)]);
    println!("<- analytics: {}…", &hor_resp[..hor_resp.len().min(100)]);

    // Isolation: `analytics`' snapshot bytes before and after hammering
    // `planning` must be identical.
    let probe = wire::encode_request_for("analytics", &Request::Snapshot);
    let before = manager.handle_line(&probe);
    for _ in 0..5 {
        manager.handle_line(&inc);
    }
    let after = manager.handle_line(&probe);
    assert_eq!(before, after, "cross-session isolation");
    println!("isolation: 5 mutations in `planning` moved 0 bytes in `analytics`");

    // Lock-free reads: probe `planning` from another thread while its own
    // mutation runs. Every answer is the pre- or post-mutation bytes —
    // the published-view swap makes a blend impossible.
    let manager = Arc::new(manager);
    let planning_probe = wire::encode_request_for("planning", &Request::Snapshot);
    let pre = manager.handle_line(&planning_probe);
    let reader = {
        let manager = Arc::clone(&manager);
        let probe = planning_probe.clone();
        std::thread::spawn(move || (0..50).map(|_| manager.handle_line(&probe)).collect::<Vec<_>>())
    };
    let mutate = wire::encode_request_for("planning", &schedule("TOP", 3));
    manager.handle_line(&mutate);
    let post = manager.handle_line(&planning_probe);
    let answers = reader.join().expect("reader thread");
    assert!(answers.iter().all(|a| a == &pre || a == &post), "read observed a blended state");
    println!(
        "concurrent reads: {} probes during the mutation, every one pre- or post-bytes",
        answers.len()
    );

    let list = manager.handle_line(&wire::encode_request(&Request::ListSessions));
    println!("<- {list}");
}
