//! Quickstart: the paper's running example (Figure 1), end to end.
//!
//! Builds the four-event/two-interval instance from §2, scores assignments
//! by hand, runs all four algorithms, and shows they agree with the paper's
//! Examples 2–5 — plus what the exact optimum looks like.
//!
//! Run with: `cargo run --release --example quickstart`

use social_event_scheduling::algorithms::prelude::*;
use social_event_scheduling::core::model::running_example;
use social_event_scheduling::core::scoring::utility::total_utility;
use social_event_scheduling::core::scoring::ScoringEngine;
use social_event_scheduling::{EventId, IntervalId};

fn main() {
    let inst = running_example();
    println!(
        "Running example: {} events, {} intervals, {} competing, {} users\n",
        inst.num_events(),
        inst.num_intervals(),
        inst.num_competing(),
        inst.num_users()
    );

    // Step 1: the initial assignment scores of Figure 2, row ①.
    println!("Initial assignment scores (Eq. 4):");
    let mut engine = ScoringEngine::new(&inst);
    print!("{:>8}", "");
    for t in 0..inst.num_intervals() {
        print!(" {:>8}", format!("t{}", t + 1));
    }
    println!();
    for e in 0..inst.num_events() {
        print!("{:>8}", inst.events[e].label.as_deref().unwrap_or("?"));
        for t in 0..inst.num_intervals() {
            print!(" {:>8.2}", engine.assignment_score(EventId::new(e), IntervalId::new(t)));
        }
        println!();
    }

    // Step 2: schedule k = 3 events with each algorithm.
    println!("\nScheduling k = 3 events:");
    for result in [
        Alg.run(&inst, 3),
        Inc.run(&inst, 3),
        Hor.run(&inst, 3),
        HorI.run(&inst, 3),
        Top.run(&inst, 3),
    ] {
        let picks: Vec<String> = result
            .schedule
            .assignments()
            .iter()
            .map(|a| {
                format!(
                    "{}@t{}",
                    inst.events[a.event.index()].label.as_deref().unwrap_or("?"),
                    a.interval.index() + 1
                )
            })
            .collect();
        println!(
            "  {:>6}: Ω = {:.4}  [{}]  ({} score computations, {} updates)",
            result.algorithm,
            result.utility,
            picks.join(", "),
            result.stats.score_computations,
            result.stats.score_updates,
        );
    }

    // Step 3: the exact optimum — greedy is a heuristic (Theorem 1 rules
    // out a PTAS), and on this very instance it is ~1.5% below optimal.
    let exact = Exact.run(&inst, 3);
    println!(
        "\nExact optimum: Ω* = {:.4} (greedy gap demonstrates the APX-hardness)",
        exact.utility
    );

    // Step 4: utilities are independently verifiable via Eq. 1–3.
    let omega = total_utility(&inst, &exact.schedule);
    assert!((omega - exact.utility).abs() < 1e-9);
    println!("Independent evaluator agrees: Ω(S) = {omega:.4}");
}
