//! Algorithm comparison: a miniature of the paper's Figure 5 sweep.
//!
//! Sweeps the number of scheduled events `k` on the Zip dataset (`|E| = 5k`,
//! `|T| = 3k/2` per Table 1) and prints utility / computations / time for
//! every method — the same three metrics the paper plots.
//!
//! Run with: `cargo run --release --example algorithm_comparison`

use social_event_scheduling::algorithms::SchedulerKind;
use social_event_scheduling::datasets::Dataset;

fn main() {
    let users = 400;
    println!("Zip dataset, |U| = {users}, |E| = 5k, |T| = 3k/2\n");

    for k in [25usize, 50, 100] {
        let inst = Dataset::Zip.build(users, 5 * k, 3 * k / 2, 42 + k as u64);
        println!("k = {k}  (|E| = {}, |T| = {})", inst.num_events(), inst.num_intervals());
        println!(
            "  {:>8} {:>12} {:>16} {:>12} {:>10}",
            "method", "utility", "computations", "examined", "time(ms)"
        );
        let mut alg_comp = 0u64;
        for kind in SchedulerKind::paper_lineup() {
            let res = kind.run(&inst, k);
            if res.algorithm == "ALG" {
                alg_comp = res.stats.user_ops;
            }
            let rel = if alg_comp > 0 && res.stats.user_ops > 0 {
                format!("({:.0}%)", 100.0 * res.stats.user_ops as f64 / alg_comp as f64)
            } else {
                String::new()
            };
            println!(
                "  {:>8} {:>12.1} {:>16} {:>12} {:>10.1} {rel}",
                res.algorithm,
                res.utility,
                res.stats.user_ops,
                res.stats.assignments_examined,
                res.elapsed.as_secs_f64() * 1e3
            );
        }
        println!();
    }

    println!("Expected shape (paper Figs 5a–l): ALG/INC/HOR/HOR-I tie on utility here;");
    println!("ALG pays the most computations, HOR-I the fewest (TOP aside); the gap");
    println!("between ALG and the proposed methods widens with k.");
}
