//! Cross-crate verification of the Theorem-1 reduction (§2.2): the exact
//! solver confirms both directions of the 3DM-3 ↔ SES correspondence on
//! tiny instances.

use social_event_scheduling::algorithms::prelude::*;
use social_event_scheduling::core::scoring::utility::total_utility;
use social_event_scheduling::datasets::hardness::{matching_to_schedule, reduce, ThreeDm};

const DELTA: f64 = 0.05;

fn with_perfect_matching() -> ThreeDm {
    ThreeDm { n: 2, triples: vec![(0, 0, 0), (1, 1, 1), (0, 1, 1)] }
}

fn without_perfect_matching() -> ThreeDm {
    ThreeDm { n: 2, triples: vec![(0, 0, 0), (0, 1, 1), (0, 1, 0)] }
}

/// Completeness: a perfect matching exists ⇒ the SES optimum equals
/// `3n(0.25 + δ) + (m − n)` exactly, and the matching's schedule attains it.
#[test]
fn exact_optimum_equals_matching_utility() {
    let dm = with_perfect_matching();
    let red = reduce(&dm, DELTA).unwrap();
    assert_eq!(dm.max_matching_size(), dm.n, "fixture must have a perfect matching");

    let opt = Exact.run(&red.instance, red.k);
    assert!(
        (opt.utility - red.perfect_matching_utility).abs() < 1e-9,
        "Ω* = {}, proof value {}",
        opt.utility,
        red.perfect_matching_utility
    );

    let schedule = matching_to_schedule(&dm, &red, &[0, 1]).expect("valid matching");
    let omega = total_utility(&red.instance, &schedule);
    assert!((omega - opt.utility).abs() < 1e-9, "matching schedule must be optimal");
}

/// Soundness: no perfect matching ⇒ the optimum falls short of the proof
/// value by at least δ per missing matched element.
#[test]
fn deficient_matching_lowers_optimum() {
    let dm = without_perfect_matching();
    let red = reduce(&dm, DELTA).unwrap();
    assert_eq!(dm.max_matching_size(), 1);

    let opt = Exact.run(&red.instance, red.k);
    assert!(
        opt.utility < red.perfect_matching_utility - 1e-9,
        "Ω* = {} must fall short of {}",
        opt.utility,
        red.perfect_matching_utility
    );
    // The shortfall is δ per element that cannot sit in an interval whose
    // edge contains it. For this fixture the best placement earns 5 of the
    // 6 possible δ-bonuses (t0 hosts its full triple; t1 hosts y1 and z1;
    // x1 appears in no triple at all), so Ω* = 6·0.25 + 5δ + 1 exactly.
    // Note this is *more* credit than 3·(max matching) — the proof's
    // (1 − ε) soundness bound accounts for such partial credit, which is
    // precisely why it needs δ < 1/12 rather than a trivial counting step.
    let expected = 6.0 * 0.25 + 5.0 * DELTA + 1.0;
    assert!(
        (opt.utility - expected).abs() < 1e-9,
        "Ω* = {} ≠ hand-analyzed {expected}",
        opt.utility
    );
}

/// The greedy algorithms remain feasible (and bounded by the optimum) on
/// the adversarial reduction instances — they were designed for EBSN
/// workloads, not matching gadgets.
#[test]
fn greedy_on_reduction_instances() {
    for dm in [with_perfect_matching(), without_perfect_matching()] {
        let red = reduce(&dm, DELTA).unwrap();
        let opt = Exact.run(&red.instance, red.k).utility;
        for kind in [SchedulerKind::Alg, SchedulerKind::Hor, SchedulerKind::Top] {
            let res = kind.run(&red.instance, red.k);
            assert!(res.schedule.verify_feasible(&red.instance).is_ok());
            assert!(res.utility <= opt + 1e-9, "{} beat the optimum", kind.name());
        }
        // INC ≡ ALG even on the gadget (ties abound: flat interest values).
        let alg = SchedulerKind::Alg.run(&red.instance, red.k);
        let inc = SchedulerKind::Inc.run(&red.instance, red.k);
        assert_eq!(alg.schedule.assignments(), inc.schedule.assignments());
    }
}
