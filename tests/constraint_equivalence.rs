//! The differential layer behind the constraint subsystem: **every
//! candidate generator, on every constrained family, emits feasible
//! schedules — and an empty constraint set changes nothing, bit for bit.**
//!
//! Three pillars:
//!
//! * **Feasibility matrix** — every scheduler (the eight greedy/baseline
//!   kinds plus the stream repairer) × every [`ConstraintFamily`] preset ×
//!   threads 1/2/8, with each schedule re-checked by an *independent*
//!   validator written in this file from the §2.1 + constraint definitions
//!   — no shared code with `Schedule::check_assign`, so a bug in the
//!   production gate cannot vouch for itself.
//! * **Oracle dominance** — on tractable shapes, constrained EXACT is
//!   feasible and its utility weakly dominates every greedy scheduler,
//!   pinning EXACT as the optimality oracle over the constrained space.
//! * **Empty-set pinning** — installing an explicitly empty
//!   [`ConstraintSet`] leaves all nine registry schedulers *and* the
//!   stream repairer bit-identical (assignment sequence, utility bits,
//!   full [`Stats`]) to the unconstrained run, so the constraint hook in
//!   the hot path is provably free when unused.
//!
//! [`ConstraintSet`]: social_event_scheduling::core::constraints::ConstraintSet
//! [`Stats`]: social_event_scheduling::Stats

use social_event_scheduling::algorithms::stream::StreamScheduler;
use social_event_scheduling::algorithms::SchedulerKind;
use social_event_scheduling::core::parallel::{Threads, PAR_BLOCK};
use social_event_scheduling::datasets::{ConstraintFamily, Dataset};
use social_event_scheduling::{Instance, Schedule};

/// Thread counts of the matrix (sequential reference plus two widths).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Enough users for ≥ 2 reduction blocks per dense column, so the
/// threaded sweeps really run their parallel paths.
const USERS: usize = PAR_BLOCK + 293;

/// Every scheduler kind that runs at scale (EXACT gets its own tractable
/// shapes below).
const SCALABLE: [SchedulerKind; 8] = [
    SchedulerKind::Alg,
    SchedulerKind::Inc,
    SchedulerKind::Hor,
    SchedulerKind::HorI,
    SchedulerKind::Top,
    SchedulerKind::Rand(7),
    SchedulerKind::Lazy,
    SchedulerKind::RefinedHor,
];

/// Independent feasibility validator: re-derives every rule from the
/// definitions (§2.1 occupancy/resources plus the three constraint
/// families) over the raw assignment list, sharing no code with the
/// production `check_assign` gate.
fn validate_independently(inst: &Instance, schedule: &Schedule, label: &str) {
    let assignments = schedule.assignments();
    let num_intervals = inst.num_intervals();

    // No event twice.
    for (i, a) in assignments.iter().enumerate() {
        assert!(
            !assignments[..i].iter().any(|b| b.event == a.event),
            "{label}: event {:?} scheduled twice",
            a.event
        );
    }

    // §2.1: per-interval location exclusivity and resource budget θ, with
    // duration-d events occupying d consecutive intervals.
    let spans = |e: usize, t: usize| {
        let d = inst.events[e].duration as usize;
        t..t + d
    };
    for a in assignments {
        let end = spans(a.event.index(), a.interval.index()).end;
        assert!(end <= num_intervals, "{label}: {:?} runs off the calendar", a.event);
    }
    for ti in 0..num_intervals {
        let here: Vec<usize> = assignments
            .iter()
            .filter(|a| spans(a.event.index(), a.interval.index()).contains(&ti))
            .map(|a| a.event.index())
            .collect();
        for (i, &e) in here.iter().enumerate() {
            for &f in &here[i + 1..] {
                assert_ne!(
                    inst.events[e].location, inst.events[f].location,
                    "{label}: interval {ti} double-books a location (events {e}, {f})"
                );
            }
        }
        let used: f64 = here.iter().map(|&e| inst.events[e].required_resources).sum();
        assert!(
            used <= inst.resources + 1e-9,
            "{label}: interval {ti} uses {used} of θ = {}",
            inst.resources
        );
    }

    // Venue capacities: total slots per location across the schedule.
    for v in inst.constraints.venue_capacities() {
        let used: u64 = assignments
            .iter()
            .filter(|a| inst.events[a.event.index()].location == v.location)
            .map(|a| u64::from(inst.events[a.event.index()].duration))
            .sum();
        assert!(
            used <= u64::from(v.capacity),
            "{label}: location {:?} uses {used} slots of capacity {}",
            v.location,
            v.capacity
        );
    }

    // Conflicts: never both endpoints scheduled.
    for p in inst.constraints.conflicts() {
        let both = assignments.iter().any(|a| a.event == p.a)
            && assignments.iter().any(|a| a.event == p.b);
        assert!(!both, "{label}: conflict {:?} – {:?} violated", p.a, p.b);
    }

    // Precedence: when both are scheduled, `before` finishes before
    // `after` starts.
    for e in inst.constraints.precedences() {
        let start_of = |ev| assignments.iter().find(|a| a.event == ev).map(|a| a.interval.index());
        if let (Some(tb), Some(ta)) = (start_of(e.before), start_of(e.after)) {
            let d = inst.events[e.before.index()].duration as usize;
            assert!(
                tb + d <= ta,
                "{label}: precedence {:?} → {:?} violated ({tb}+{d} > {ta})",
                e.before,
                e.after
            );
        }
    }
}

/// Pillar 1: the full feasibility matrix. Every scalable scheduler and
/// the stream repairer, on every constrained family, at every thread
/// count, yields an independently-validated feasible schedule — and the
/// constrained results are themselves bit-identical across thread counts.
#[test]
fn all_schedulers_feasible_on_every_constrained_family() {
    for (d, dataset) in [Dataset::Unf, Dataset::Meetup].into_iter().enumerate() {
        for family in ConstraintFamily::ALL {
            let mut inst = dataset.build(USERS, 24, 6, 0xC0DE + d as u64);
            family.apply(&mut inst, 0xFA + d as u64);
            assert!(inst.validate().is_ok());
            let label = format!("{}/{}", dataset.name(), family.name());
            for &kind in &SCALABLE {
                let reference = kind.run_threaded(&inst, 8, Threads::sequential());
                validate_independently(&inst, &reference.schedule, &label);
                for &n in &THREAD_COUNTS[1..] {
                    let par = kind.run_threaded(&inst, 8, Threads::new(n));
                    validate_independently(&inst, &par.schedule, &label);
                    assert_eq!(
                        reference.schedule.assignments(),
                        par.schedule.assignments(),
                        "{label}/{}/t{n}: constrained schedule diverged",
                        kind.name()
                    );
                    assert_eq!(
                        reference.utility.to_bits(),
                        par.utility.to_bits(),
                        "{label}/{}/t{n}: constrained utility bits diverged",
                        kind.name()
                    );
                    assert_eq!(
                        reference.stats,
                        par.stats,
                        "{label}/{}/t{n}: constrained stats diverged",
                        kind.name()
                    );
                }
            }
            // The tenth generator: the warm stream repairer.
            for &n in &THREAD_COUNTS {
                let stream = StreamScheduler::new(inst.clone(), 8, Threads::new(n));
                validate_independently(&inst, stream.schedule(), &format!("{label}/stream"));
            }
        }
    }
}

/// Pillar 2: constrained EXACT stays the optimality oracle. On shapes
/// small enough to enumerate, its schedule is independently feasible and
/// its utility weakly dominates every other scheduler under the same
/// constraints.
#[test]
fn constrained_exact_dominates_every_scheduler_on_tractable_shapes() {
    for family in ConstraintFamily::ALL {
        let mut inst = Dataset::Zip.build(120, 8, 3, 0xE6);
        family.apply(&mut inst, 0x0E);
        assert!(inst.validate().is_ok());
        let label = format!("Zip-tiny/{}", family.name());

        let exact = SchedulerKind::Exact.run_threaded(&inst, 3, Threads::sequential());
        validate_independently(&inst, &exact.schedule, &label);
        for &kind in &SCALABLE {
            let res = kind.run_threaded(&inst, 3, Threads::sequential());
            validate_independently(&inst, &res.schedule, &label);
            assert!(
                res.utility <= exact.utility + 1e-9,
                "{label}: {} beat constrained EXACT ({} > {})",
                kind.name(),
                res.utility,
                exact.utility
            );
        }
    }
}

/// Pillar 3: an explicitly-installed empty constraint set leaves every
/// scheduler — all nine registry kinds plus the stream repairer —
/// bit-identical to the unconstrained run: same assignment sequence, same
/// utility mantissa, same full `Stats` record.
#[test]
fn empty_constraint_set_pins_bit_identical_output() {
    let free = Dataset::Concerts.build(USERS, 9, 3, 0xB17);
    let mut pinned = free.clone();
    pinned.constraints = social_event_scheduling::core::constraints::ConstraintSet::new();
    assert!(pinned.constraints.is_empty());

    let kinds = [
        SchedulerKind::Alg,
        SchedulerKind::Inc,
        SchedulerKind::Hor,
        SchedulerKind::HorI,
        SchedulerKind::Top,
        SchedulerKind::Rand(7),
        SchedulerKind::Lazy,
        SchedulerKind::RefinedHor,
        SchedulerKind::Exact, // 9 events × 3 intervals: tractable
    ];
    for kind in kinds {
        let a = kind.run_threaded(&free, 4, Threads::sequential());
        let b = kind.run_threaded(&pinned, 4, Threads::sequential());
        assert_eq!(
            a.schedule.assignments(),
            b.schedule.assignments(),
            "{}: empty set changed the schedule",
            kind.name()
        );
        assert_eq!(
            a.utility.to_bits(),
            b.utility.to_bits(),
            "{}: empty set changed utility bits",
            kind.name()
        );
        assert_eq!(a.stats, b.stats, "{}: empty set changed stats", kind.name());
    }

    let a = StreamScheduler::new(free.clone(), 4, Threads::sequential());
    let b = StreamScheduler::new(pinned, 4, Threads::sequential());
    assert_eq!(a.schedule().assignments(), b.schedule().assignments());
    assert_eq!(a.utility().to_bits(), b.utility().to_bits());
    assert_eq!(a.last_repair().stats, b.last_repair().stats);
}

/// Pillar 4: the bound-first gate stays selection-neutral *under
/// constraints*. For every gated scheduler × family × thread count, the
/// gated run reproduces the ungated schedule, utility bits, and non-skip
/// stats exactly — the gate defers scoring, never admission, so the
/// feasibility gate's verdicts are identical either way — and the skip
/// counter still fires somewhere in the constrained matrix.
#[test]
fn constrained_gate_on_matches_gate_off_bit_for_bit() {
    use social_event_scheduling::algorithms::{RunConfig, Scratch};

    let gated = [SchedulerKind::Inc, SchedulerKind::HorI, SchedulerKind::Lazy];
    let mut total_skips = 0u64;
    for family in ConstraintFamily::ALL {
        let mut inst = Dataset::Meetup.build(150, 40, 12, 0x6A7E);
        family.apply(&mut inst, 0x9A7E);
        assert!(inst.validate().is_ok());
        for kind in gated {
            for &n in &THREAD_COUNTS {
                let cfg = RunConfig::threaded(Threads::new(n));
                let plain = kind.run_configured(&inst, 8, cfg, &mut Scratch::new());
                let on =
                    kind.run_configured(&inst, 8, cfg.with_bound_gate(true), &mut Scratch::new());
                let label = format!("{}/{}/t{n}", family.name(), kind.name());
                validate_independently(&inst, &on.schedule, &label);
                assert_eq!(
                    plain.schedule.assignments(),
                    on.schedule.assignments(),
                    "{label}: gate changed the constrained schedule"
                );
                assert_eq!(
                    plain.utility.to_bits(),
                    on.utility.to_bits(),
                    "{label}: gate changed constrained utility bits"
                );
                assert_eq!(
                    plain.stats.selections, on.stats.selections,
                    "{label}: gate changed selection count"
                );
                total_skips += on.stats.bound_skips;
            }
        }
    }
    assert!(total_skips > 0, "gate never fired across the constrained matrix");
}

/// Pillar 6 (storage axis): converting a constrained instance's interest
/// matrices to the compressed columnar layout changes nothing — every
/// scalable scheduler emits the same assignment sequence, utility bits,
/// and full `Stats` it emits on the native layout, for every constraint
/// family, and the schedules stay independently feasible.
#[test]
fn constrained_runs_bit_identical_on_compressed_storage() {
    use social_event_scheduling::core::model::StorageKind;

    for family in ConstraintFamily::ALL {
        let mut native = Dataset::Unf.build(USERS, 24, 6, 0xC0DE);
        family.apply(&mut native, 0xFA);
        let mut compressed = native.clone();
        compressed.event_interest = native.event_interest.convert_to(StorageKind::Compressed);
        compressed.competing_interest =
            native.competing_interest.convert_to(StorageKind::Compressed);
        let label = format!("Unf-compressed/{}", family.name());
        for &kind in &SCALABLE {
            for &n in &THREAD_COUNTS {
                let a = kind.run_threaded(&native, 8, Threads::new(n));
                let b = kind.run_threaded(&compressed, 8, Threads::new(n));
                validate_independently(&compressed, &b.schedule, &label);
                assert_eq!(
                    a.schedule.assignments(),
                    b.schedule.assignments(),
                    "{label}/{}/t{n}: schedule diverged across storage",
                    kind.name()
                );
                assert_eq!(
                    a.utility.to_bits(),
                    b.utility.to_bits(),
                    "{label}/{}/t{n}: utility bits diverged across storage",
                    kind.name()
                );
                assert_eq!(a.stats, b.stats, "{label}/{}/t{n}", kind.name());
            }
        }
    }
}

/// Pillar 5: the dynamic side of the matrix. A constraint-churning op
/// stream over a constrained base repairs bit-identically at 1/2/8
/// threads, every intermediate repair stays independently feasible under
/// the live rules, and the final state matches a cold rebuild of the
/// materialized instance bit for bit.
#[test]
fn constrained_churning_streams_stay_feasible_and_thread_invariant() {
    use social_event_scheduling::core::delta;
    use social_event_scheduling::datasets::ops::{self, OpStreamParams};

    let mut base = Dataset::Unf.build(160, 18, 6, 0x5EED);
    ConstraintFamily::Mixed.apply(&mut base, 0x5EED);
    let params = OpStreamParams::default()
        .with_ops(60)
        .with_churn(0.3)
        .with_constraint_churn(0.35)
        .with_seed(0xD1CE);
    let stream_ops = ops::generate(&base, &params);

    let mut reference: Option<Vec<_>> = None;
    for &n in &THREAD_COUNTS {
        let mut stream = StreamScheduler::new(base.clone(), 6, Threads::new(n));
        let mut live = base.clone();
        let mut trace = Vec::new();
        for op in &stream_ops {
            delta::apply(&mut live, op).expect("generated ops are valid");
            stream.apply(op).expect("generated ops are valid");
            validate_independently(&live, stream.schedule(), &format!("churn/t{n}"));
            trace.push((stream.schedule().assignments().to_vec(), stream.utility().to_bits()));
        }
        // Final state ≡ a cold rebuild of the materialized instance.
        let cold = StreamScheduler::new(live.clone(), 6, Threads::new(n));
        assert_eq!(stream.schedule().assignments(), cold.schedule().assignments());
        assert_eq!(stream.utility().to_bits(), cold.utility().to_bits());
        match &reference {
            None => reference = Some(trace),
            Some(r) => assert_eq!(r, &trace, "t{n}: constrained repair trace diverged from t1"),
        }
    }
}
