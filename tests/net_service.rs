//! The network layer's two load-bearing guarantees, proven differentially:
//!
//! * **Concurrent-read equivalence** — a `Query`/`Snapshot` issued while a
//!   mutation is in flight on the same session answers with bytes
//!   identical to either the pre-mutation or the post-mutation serialized
//!   answer, **never a blend** — for every registry scheduler × every
//!   dataset at 1 and 4 worker threads. The published-view design makes a
//!   blend structurally impossible (a view is an immutable value swapped
//!   atomically); this test is the observable proof.
//! * **Cross-session isolation** — mutations hammering session A cannot
//!   perturb one byte of session B's transcript: a fuzz-style interleave
//!   across concurrent "connections" answers B exactly like a
//!   single-session run.
//!
//! Both proofs compare encoded wire bytes, not parsed values — the same
//! currency the golden transcripts pin.

use social_event_scheduling::algorithms::service::net::{NetSession, SessionBackend};
use social_event_scheduling::algorithms::service::{wire, Query};
use social_event_scheduling::algorithms::{Request, SchedulerRegistry, SesService, SessionManager};
use social_event_scheduling::core::parallel::Threads;
use social_event_scheduling::datasets::ops::{self, OpStreamParams};
use social_event_scheduling::datasets::Dataset;
use social_event_scheduling::Instance;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Explicit thread counts (the CI thread-matrix additionally re-runs this
/// whole file under `SES_THREADS=1` and `=4`).
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn schedule_req(algorithm: &str, k: usize) -> Request {
    Request::Schedule {
        algorithm: algorithm.to_string(),
        k,
        threads: None,
        gate: false,
        profile: false,
        constraints: None,
    }
}

/// The read-only probes the equivalence proof fires: the full state
/// summary plus one lookup of each query kind.
fn read_probes() -> Vec<Request> {
    vec![
        Request::Snapshot,
        Request::Query { query: Query::Event { event: 0 } },
        Request::Query { query: Query::Interval { interval: 0 } },
        Request::Query { query: Query::User { user: 0 } },
    ]
}

/// Runs the proof for one (instance, scheduler, k, threads) cell: capture
/// the serialized pre- and post-mutation answer for every probe, fire the
/// mutation on a second thread, and hammer reads while it runs — every
/// answer must be bit-identical to one of the two serialized answers.
fn prove_reads_never_blend(
    label: &str,
    inst: &Instance,
    algorithm: &str,
    k: usize,
    threads: usize,
) {
    let threads = Threads::new(threads);
    let probes = read_probes();
    let mutate = schedule_req(algorithm, k);

    // Serialized references: the answer before the mutation, and the
    // answer after it (computed on an identical shadow session — the
    // engine is deterministic, so the shadow's post-state is the
    // session's post-state).
    let session = Arc::new(NetSession::new(SessionBackend::Plain(
        SesService::new(inst.clone()).with_threads(threads),
    )));
    let pre: Vec<String> =
        probes.iter().map(|p| wire::encode_response(&session.handle(p))).collect();
    let mut shadow = SesService::new(inst.clone()).with_threads(threads);
    shadow.handle(&mutate);
    let post: Vec<String> =
        probes.iter().map(|p| wire::encode_response(&shadow.handle(p))).collect();
    assert_ne!(pre, post, "{label}: mutation must change what reads observe");

    let writer_session = Arc::clone(&session);
    let done = Arc::new(AtomicBool::new(false));
    let start = Arc::new(std::sync::Barrier::new(2));
    let writer_done = Arc::clone(&done);
    let writer_start = Arc::clone(&start);
    let writer_mutate = mutate.clone();
    let writer = std::thread::spawn(move || {
        writer_start.wait();
        // Re-running the identical mutation is a state no-op after the
        // first publication, so this widens the in-flight window the
        // reader races against without changing the pre→post story.
        for _ in 0..3 {
            writer_session.handle(&writer_mutate);
        }
        writer_done.store(true, Ordering::SeqCst);
    });

    // Reads concurrent with the in-flight mutation: never block on it,
    // never observe a torn state. At least one full probe pass always
    // runs (racing the first mutation from the starting line).
    start.wait();
    loop {
        for (i, probe) in probes.iter().enumerate() {
            let got = wire::encode_response(&session.handle(probe));
            assert!(
                got == pre[i] || got == post[i],
                "{label}: concurrent read observed a blended state:\n  got  {got}\n  pre  {}\n  post {}",
                pre[i],
                post[i],
            );
        }
        if done.load(Ordering::SeqCst) {
            break;
        }
    }
    writer.join().expect("writer thread");

    // After the mutation publishes, reads settle on the post answer.
    for (i, probe) in probes.iter().enumerate() {
        assert_eq!(wire::encode_response(&session.handle(probe)), post[i], "{label}: probe {i}");
    }
}

/// The acceptance matrix: every registry scheduler × every dataset at 1
/// and 4 threads (EXACT on its tractable shape below).
#[test]
fn concurrent_reads_equal_pre_or_post_mutation_for_every_scheduler_and_dataset() {
    let reg = SchedulerRegistry::standard();
    for dataset in Dataset::ALL {
        let inst = dataset.build(150, 24, 6, 0x5E5);
        for threads in THREAD_COUNTS {
            for name in reg.names() {
                if name == "EXACT" {
                    continue;
                }
                let label = format!("{}/{}/t{threads}", dataset.name(), name);
                prove_reads_never_blend(&label, &inst, name, 8, threads);
            }
        }
    }
}

/// EXACT's proof on a branch-&-bound-tractable shape.
#[test]
fn concurrent_reads_equal_pre_or_post_mutation_for_exact() {
    let inst = Dataset::Zip.build(120, 6, 2, 0xE8A);
    for threads in THREAD_COUNTS {
        prove_reads_never_blend(&format!("Zip/EXACT/t{threads}"), &inst, "exact", 3, threads);
    }
}

/// The mutation mix the isolation fuzz fires at session A: schedules,
/// repairs, op batches, resets — everything that takes the writer lock.
fn mutation_mix(inst: &Instance) -> Vec<Request> {
    let params = OpStreamParams::default().with_ops(24).with_churn(0.5).with_seed(0xF52);
    let stream_ops = ops::generate(inst, &params);
    let mut mix =
        vec![schedule_req("hor", 5), Request::Repair { k: 5, threads: None, gate: false }];
    for chunk in stream_ops.chunks(6) {
        mix.push(Request::ApplyOps { ops: chunk.to_vec(), window: None });
    }
    mix.push(schedule_req("inc", 4));
    mix.push(Request::Reset);
    mix.push(schedule_req("top", 3));
    mix
}

/// The request script session B runs — reads *and* writes, so the test
/// proves full-transcript stability, not just read stability.
fn b_script() -> Vec<String> {
    let mut script = vec![
        wire::encode_request_for("b", &Request::Snapshot),
        wire::encode_request_for("b", &schedule_req("hor-i", 6)),
        wire::encode_request_for("b", &Request::Query { query: Query::Event { event: 3 } }),
        wire::encode_request_for("b", &Request::Repair { k: 6, threads: None, gate: false }),
    ];
    for i in 0..8 {
        script.push(wire::encode_request_for(
            "b",
            &Request::Query { query: Query::User { user: i * 5 } },
        ));
        script.push(wire::encode_request_for("b", &Request::Snapshot));
    }
    script.push(wire::encode_request_for("b", &schedule_req("alg", 4)));
    script
}

/// Cross-session isolation, fuzz-style: two writer "connections" hammer
/// session A (mutations interleaved with a seeded jitter) while a third
/// connection runs session B's script. B's transcript must be
/// byte-identical to a single-session run with no A traffic at all.
#[test]
fn session_b_transcript_identical_under_concurrent_session_a_mutations() {
    let inst = Dataset::Unf.build(150, 24, 6, 0x5E5);
    for threads in THREAD_COUNTS {
        let threads = Threads::new(threads);

        // Reference: B's script on a quiet manager.
        let (quiet, _) =
            SessionManager::new(inst.clone(), threads, None, 1024, 8).expect("boot quiet");
        quiet.open("b").expect("open b");
        let reference: Vec<String> = b_script().iter().map(|l| quiet.handle_line(l)).collect();

        // Loud run: A is hammered from two connections while B executes.
        let (loud, _) = SessionManager::new(inst.clone(), threads, None, 1024, 8).expect("boot");
        loud.open("a").expect("open a");
        loud.open("b").expect("open b");
        let loud = Arc::new(loud);
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|conn| {
                let manager = Arc::clone(&loud);
                let stop = Arc::clone(&stop);
                let mix: Vec<String> =
                    mutation_mix(&inst).iter().map(|r| wire::encode_request_for("a", r)).collect();
                std::thread::spawn(move || {
                    // Deterministic per-connection rotation; runs until B
                    // finishes, so A traffic brackets every B request.
                    let mut i = conn;
                    while !stop.load(Ordering::SeqCst) {
                        manager.handle_line(&mix[i % mix.len()]);
                        i += 1;
                    }
                })
            })
            .collect();

        let got: Vec<String> = b_script().iter().map(|l| loud.handle_line(l)).collect();
        stop.store(true, Ordering::SeqCst);
        for w in writers {
            w.join().expect("writer connection");
        }

        assert_eq!(
            got,
            reference,
            "session B's transcript diverged under concurrent session A mutations (t{})",
            threads.get()
        );
    }
}

/// Control-plane sanity on a busy manager: sessions opened concurrently
/// with traffic resolve, list deterministically (sorted), and close.
#[test]
fn session_control_is_consistent_under_concurrent_traffic() {
    let inst = Dataset::Zip.build(100, 12, 4, 0x77);
    let (manager, boots) =
        SessionManager::new(inst, Threads::sequential(), None, 1024, 16).expect("boot");
    assert_eq!(boots.len(), 1);
    let manager = Arc::new(manager);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let m = Arc::clone(&manager);
            std::thread::spawn(move || {
                let name = format!("worker-{i}");
                m.open(&name).expect("open");
                let line = wire::encode_request_for(&name, &schedule_req("top", 3));
                for _ in 0..5 {
                    let resp = m.handle_line(&line);
                    assert!(resp.contains("Scheduled"), "{resp}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    let names: Vec<String> = manager.list().into_iter().map(|s| s.session).collect();
    assert_eq!(names, vec!["default", "worker-0", "worker-1", "worker-2", "worker-3"]);
    for i in 0..4 {
        manager.close(&format!("worker-{i}")).expect("close");
    }
    assert_eq!(manager.len(), 1);
}
