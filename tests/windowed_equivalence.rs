//! The differential proof behind windowed ingestion: for every dataset
//! family × window size × thread count, repairing a stream **one
//! coalesced window at a time** must be bit-identical to repairing it
//! **one op at a time** — the same live instance, the same assignment
//! sequence, the same utility bits — and bit-identical to a **cold
//! rebuild** of the materialized instance at every window boundary. The
//! windowed repair's full `Stats` must also be invariant across thread
//! counts, extending the `tests/stream_equivalence.rs` contract to the
//! batch path.

use social_event_scheduling::algorithms::stream::StreamScheduler;
use social_event_scheduling::core::delta;
use social_event_scheduling::core::model::{Instance, StorageKind};
use social_event_scheduling::core::parallel::Threads;
use social_event_scheduling::datasets::ops::{self, BurstParams, OpStreamParams};
use social_event_scheduling::datasets::Dataset;

const K: usize = 8;
const OPS: usize = 180;
const WINDOWS: &[usize] = &[1, 7, 32];

struct Scenario {
    dataset: Dataset,
    churn: f64,
    user_churn: f64,
    density: f64,
    constraint_churn: f64,
    /// Redundant-follower pressure; above zero the scenario streams the
    /// bursty feed instead of the bare backbone.
    redundancy: f64,
    seed: u64,
    /// Interest-storage override for the live base (`None` = native).
    storage: Option<StorageKind>,
}

fn feed_for(s: &Scenario, base: &Instance) -> Vec<delta::DeltaOp> {
    let params = OpStreamParams::default()
        .with_ops(OPS)
        .with_churn(s.churn)
        .with_user_churn(s.user_churn)
        .with_interest_density(s.density)
        .with_constraint_churn(s.constraint_churn)
        .with_seed(s.seed ^ 0x5EED);
    if s.redundancy > 0.0 {
        let burst = BurstParams::default().with_ops(params).with_redundancy(s.redundancy);
        ops::generate_bursts(base, &burst).into_iter().map(|t| t.op).collect()
    } else {
        ops::generate(base, &params)
    }
}

fn run_scenario(s: &Scenario) {
    let mut base = s.dataset.build(60, 16, 6, s.seed);
    if let Some(kind) = s.storage {
        base.event_interest = base.event_interest.convert_to(kind);
        base.competing_interest = base.competing_interest.convert_to(kind);
    }
    let feed = feed_for(s, &base);
    for &window in WINDOWS {
        let label = format!("{}/window={window}", s.dataset.name());
        let mut w1 = StreamScheduler::new(base.clone(), K, Threads::sequential());
        let mut w4 = StreamScheduler::new(base.clone(), K, Threads::new(4));
        let mut serial = StreamScheduler::new(base.clone(), K, Threads::sequential());
        let mut mat = base.clone();
        for (w, chunk) in feed.chunks(window).enumerate() {
            for (j, op) in chunk.iter().enumerate() {
                delta::apply(&mut mat, op)
                    .unwrap_or_else(|e| panic!("{label} window {w} op {j}: {e}"));
                serial.apply(op).unwrap_or_else(|e| panic!("{label} window {w} op {j}: {e}"));
            }
            let r1 = w1
                .repair_batch(chunk)
                .unwrap_or_else(|e| panic!("{label} window {w}: {e}"))
                .clone();
            let r4 = w4.repair_batch(chunk).unwrap_or_else(|e| panic!("{label} window {w}: {e}"));

            // Thread count never changes a windowed repair: same full
            // Stats, same schedule, same utility bits.
            assert_eq!(r1.stats, r4.stats, "{label} window {w}: stats diverged across threads");
            assert_eq!(
                w1.schedule().assignments(),
                w4.schedule().assignments(),
                "{label} window {w}: schedules diverged across threads"
            );
            assert_eq!(w1.utility().to_bits(), w4.utility().to_bits(), "{label} window {w}");

            // The coalesced batch lands on the op-at-a-time instance
            // exactly — and both live instances track the independent
            // materialization.
            assert!(w1.instance() == &mat, "{label} window {w}: windowed instance drifted");
            assert!(serial.instance() == &mat, "{label} window {w}: serial instance drifted");

            // Bit-identity to the op-at-a-time repair path...
            assert_eq!(
                w1.schedule().assignments(),
                serial.schedule().assignments(),
                "{label} window {w}: windowed repair diverged from op-at-a-time"
            );
            assert_eq!(
                w1.utility().to_bits(),
                serial.utility().to_bits(),
                "{label} window {w}: utility bits diverged from op-at-a-time"
            );

            // ...and to a cold rebuild of the same post-window instance.
            let cold = StreamScheduler::new(mat.clone(), K, Threads::sequential());
            assert_eq!(
                w1.schedule().assignments(),
                cold.schedule().assignments(),
                "{label} window {w}: windowed repair diverged from cold rebuild"
            );
            assert_eq!(
                w1.utility().to_bits(),
                cold.utility().to_bits(),
                "{label} window {w}: utility bits diverged from cold rebuild"
            );
        }
        // Coalescing only ever drops ops: the windowed scheduler applied
        // at most as many as the serial one, and with any window wider
        // than one op the redundant scenarios applied strictly fewer.
        assert!(
            w1.ops_applied() <= serial.ops_applied(),
            "{label}: windowed path applied more ops than serial"
        );
        if window > 1 && s.redundancy > 0.0 {
            assert!(
                w1.ops_applied() < serial.ops_applied(),
                "{label}: a redundant feed should coalesce at least one op away"
            );
        }
    }
}

#[test]
fn unf_moderate_churn_with_constraints() {
    run_scenario(&Scenario {
        dataset: Dataset::Unf,
        churn: 0.3,
        user_churn: 0.3,
        density: 1.0,
        constraint_churn: 0.2,
        redundancy: 0.0,
        seed: 0xA11,
        storage: None,
    });
}

#[test]
fn zip_heavy_structural_churn() {
    run_scenario(&Scenario {
        dataset: Dataset::Zip,
        churn: 0.8,
        user_churn: 0.5,
        density: 1.0,
        constraint_churn: 0.0,
        redundancy: 0.0,
        seed: 0xB22,
        storage: None,
    });
}

#[test]
fn meetup_sparse_redundant_bursts() {
    run_scenario(&Scenario {
        dataset: Dataset::Meetup,
        churn: 0.5,
        user_churn: 0.4,
        density: 0.25,
        constraint_churn: 0.0,
        redundancy: 0.6,
        seed: 0xC33,
        storage: None,
    });
}

/// The compressed columnar base under redundant bursty windows: batch
/// coalescing, per-op repair, and cold rebuilds must all agree bit for bit
/// while the interest matrices live in the dictionary-encoded layout.
#[test]
fn unf_compressed_redundant_bursts() {
    run_scenario(&Scenario {
        dataset: Dataset::Unf,
        churn: 0.4,
        user_churn: 0.3,
        density: 1.0,
        constraint_churn: 0.2,
        redundancy: 0.5,
        seed: 0xD44,
        storage: Some(StorageKind::Compressed),
    });
}
