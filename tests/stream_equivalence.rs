//! The differential layer behind the dynamic-workload subsystem: replaying
//! a seeded 500-op delta stream through the incremental [`StreamScheduler`]
//! must be **result-equivalent to full recompute at every step** — the
//! exact assignment sequence and utility bits of an `INC` run on the
//! materialized instance — while examining strictly fewer assignments than
//! a from-scratch rebuild, and bit-identical across thread counts
//! (schedule, utility bits, full `Stats`), extending the
//! `tests/parallel_equivalence.rs` contract to the repair path.
//!
//! Two structurally different regimes are exercised: a dense synthetic
//! base with moderate churn, and a sparse Meetup-like base with heavy
//! churn and sparse generated interest.

use social_event_scheduling::algorithms::stream::StreamScheduler;
use social_event_scheduling::algorithms::SchedulerKind;
use social_event_scheduling::core::delta;
use social_event_scheduling::core::model::StorageKind;
use social_event_scheduling::core::parallel::Threads;
use social_event_scheduling::datasets::ops::{self, OpStreamParams};
use social_event_scheduling::datasets::Dataset;

/// One 500-op scenario: base dataset, shape, stream knobs, and (optionally)
/// an interest-storage override for the live base.
struct Scenario {
    dataset: Dataset,
    churn: f64,
    user_churn: f64,
    density: f64,
    seed: u64,
    storage: Option<StorageKind>,
}

const K: usize = 8;
const OPS: usize = 500;

fn run_scenario(s: &Scenario) {
    let mut base = s.dataset.build(70, 18, 6, s.seed);
    if let Some(kind) = s.storage {
        base.event_interest = base.event_interest.convert_to(kind);
        base.competing_interest = base.competing_interest.convert_to(kind);
    }
    let params = OpStreamParams::default()
        .with_ops(OPS)
        .with_churn(s.churn)
        .with_user_churn(s.user_churn)
        .with_interest_density(s.density)
        .with_seed(s.seed ^ 0x5EED);
    let stream_ops = ops::generate(&base, &params);
    assert_eq!(stream_ops.len(), OPS);

    let label = format!("{}/churn={}", s.dataset.name(), s.churn);
    let mut s1 = StreamScheduler::new(base.clone(), K, Threads::sequential());
    let mut s4 = StreamScheduler::new(base.clone(), K, Threads::new(4));
    assert_eq!(s1.last_repair().stats, s4.last_repair().stats, "{label}: cold-build stats");
    let mut mat = base;
    for (i, op) in stream_ops.iter().enumerate() {
        delta::apply(&mut mat, op).unwrap_or_else(|e| panic!("{label} op {i}: {e}"));
        let r1 = s1.apply(op).unwrap_or_else(|e| panic!("{label} op {i}: {e}")).clone();
        let r4 = s4.apply(op).unwrap_or_else(|e| panic!("{label} op {i}: {e}")).clone();

        // Thread count never changes a repair: same schedule, same utility
        // bits, same full Stats.
        assert_eq!(r1.stats, r4.stats, "{label} op {i} ({}): stats diverged", op.kind());
        assert_eq!(
            s1.schedule().assignments(),
            s4.schedule().assignments(),
            "{label} op {i}: schedules diverged across threads"
        );
        assert_eq!(s1.utility().to_bits(), s4.utility().to_bits(), "{label} op {i}");

        // The live instance tracks the independent materialization exactly.
        assert_eq!(s1.instance(), &mat, "{label} op {i}: instance drifted");

        // Result-equivalence to full recompute: INC on the materialized
        // instance, assignment for assignment, utility bit for bit.
        let inc = SchedulerKind::Inc.run(&mat, K);
        assert_eq!(
            s1.schedule().assignments(),
            inc.schedule.assignments(),
            "{label} op {i} ({}): repair diverged from INC recompute",
            op.kind()
        );
        assert_eq!(
            s1.utility().to_bits(),
            inc.utility.to_bits(),
            "{label} op {i}: utility bits diverged from INC recompute"
        );

        // Work bound: a single-op repair examines strictly fewer
        // assignments than a cold rebuild of the same post-op instance.
        let cold = StreamScheduler::new(mat.clone(), K, Threads::sequential());
        let rebuilt = cold.last_repair().stats.assignments_examined;
        assert!(
            r1.stats.assignments_examined < rebuilt,
            "{label} op {i} ({}): repair examined {} !< rebuild {}",
            op.kind(),
            r1.stats.assignments_examined,
            rebuilt
        );
    }
    assert_eq!(s1.ops_applied(), OPS as u64);
}

#[test]
fn dense_base_moderate_churn_500_ops() {
    run_scenario(&Scenario {
        dataset: Dataset::Unf,
        churn: 0.3,
        user_churn: 0.3,
        density: 1.0,
        seed: 0xA11,
        storage: None,
    });
}

#[test]
fn dense_base_heavy_structural_churn_500_ops() {
    run_scenario(&Scenario {
        dataset: Dataset::Zip,
        churn: 0.8,
        user_churn: 0.5,
        density: 1.0,
        seed: 0xB22,
        storage: None,
    });
}

#[test]
fn sparse_base_sparse_drift_500_ops() {
    run_scenario(&Scenario {
        dataset: Dataset::Meetup,
        churn: 0.5,
        user_churn: 0.4,
        density: 0.25,
        seed: 0xC33,
        storage: None,
    });
}

/// A compressed-backend live base: the repair path mutates the instance
/// through every delta op (interest drift, event/user churn) while the
/// interest matrices live in the dictionary-encoded columnar layout —
/// and must stay bit-identical to the dense INC recompute at every step.
#[test]
fn compressed_base_moderate_churn_500_ops() {
    run_scenario(&Scenario {
        dataset: Dataset::Unf,
        churn: 0.3,
        user_churn: 0.3,
        density: 1.0,
        seed: 0xD44,
        storage: Some(StorageKind::Compressed),
    });
}
