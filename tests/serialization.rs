//! Serialization round-trips: instances (the CLI `generate` path), schedule
//! results, and experiment reports all survive JSON without behavioural
//! drift.

use social_event_scheduling::algorithms::SchedulerKind;
use social_event_scheduling::core::Instance;
use social_event_scheduling::datasets::Dataset;
use social_event_scheduling::experiments::{run_lineup, FigureReport, Metric};

/// An instance serialized and reloaded schedules identically — byte-level
/// model fidelity, including the sparse (Meetup) interest layout.
#[test]
fn instance_roundtrip_preserves_scheduling() {
    for dataset in [Dataset::Meetup, Dataset::Zip] {
        let inst = dataset.build(50, 20, 5, 0x5EDE);
        let json = serde_json::to_string(&inst).expect("serialize");
        let back: Instance = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(inst, back, "{}", dataset.name());
        assert!(back.validate().is_ok());

        for kind in [SchedulerKind::Alg, SchedulerKind::HorI] {
            let a = kind.run(&inst, 6);
            let b = kind.run(&back, 6);
            assert_eq!(a.schedule, b.schedule, "{} on {}", kind.name(), dataset.name());
            assert_eq!(a.stats, b.stats);
        }
    }
}

/// The compressed columnar layout round-trips through JSON without losing
/// a bit: the reloaded instance equals the original (dictionary, codes,
/// block metadata and cached sums included), keeps its storage kind, and
/// schedules identically to the dense original.
#[test]
fn compressed_instance_roundtrip() {
    use social_event_scheduling::core::model::StorageKind;

    let dense = Dataset::Zip.build(50, 20, 5, 0x5EDE);
    let mut inst = dense.clone();
    inst.event_interest = dense.event_interest.convert_to(StorageKind::Compressed);
    inst.competing_interest = dense.competing_interest.convert_to(StorageKind::Compressed);

    let json = serde_json::to_string(&inst).expect("serialize");
    let back: Instance = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(inst, back);
    assert_eq!(back.event_interest.storage_kind(), StorageKind::Compressed);
    assert!(back.validate().is_ok());

    for kind in [SchedulerKind::Alg, SchedulerKind::HorI] {
        let a = kind.run(&dense, 6);
        let b = kind.run(&back, 6);
        assert_eq!(a.schedule, b.schedule, "{}", kind.name());
        assert_eq!(a.utility.to_bits(), b.utility.to_bits(), "{}", kind.name());
        assert_eq!(a.stats, b.stats);
    }
}

/// ScheduleResult serializes (the JSON the CLI can emit per run).
#[test]
fn schedule_result_roundtrip() {
    let inst = Dataset::Unf.build(40, 15, 4, 1);
    let res = SchedulerKind::Inc.run(&inst, 5);
    let json = serde_json::to_string(&res).unwrap();
    let back: social_event_scheduling::algorithms::ScheduleResult =
        serde_json::from_str(&json).unwrap();
    assert_eq!(back.algorithm, "INC");
    assert_eq!(back.schedule, res.schedule);
    assert_eq!(back.stats, res.stats);
    assert!((back.utility - res.utility).abs() < 1e-12);
}

/// FigureReport JSON and CSV exports agree on the cell values.
#[test]
fn report_exports_agree() {
    let inst = Dataset::Zip.build(40, 15, 4, 2);
    let records =
        run_lineup("figX", "Zip", "k", 5.0, &inst, 5, &[SchedulerKind::Alg, SchedulerKind::Hor]);
    let report = FigureReport {
        id: "figX".into(),
        title: "roundtrip".into(),
        metrics: vec![Metric::Utility],
        records,
    };
    let back: FigureReport = serde_json::from_str(&report.to_json()).unwrap();
    assert_eq!(back.records.len(), report.records.len());

    let csv = report.to_csv();
    for r in &report.records {
        let line = csv
            .lines()
            .find(|l| l.contains(&r.algorithm) && l.starts_with("figX"))
            .unwrap_or_else(|| panic!("CSV row for {}", r.algorithm));
        assert!(line.contains(&format!("{}", r.utility)), "utility mismatch in CSV");
    }
}
