//! End-to-end reproduction of the paper's worked examples (§2–§3,
//! Figures 1–4, Examples 1–5) through the facade crate.

use social_event_scheduling::algorithms::prelude::*;
use social_event_scheduling::core::model::running_example;
use social_event_scheduling::core::scoring::utility::{
    attendance_probability, expected_attendance, total_utility,
};
use social_event_scheduling::core::scoring::ScoringEngine;
use social_event_scheduling::{Assignment, EventId, IntervalId};

fn paper_schedule() -> Vec<Assignment> {
    vec![
        Assignment::new(EventId::new(3), IntervalId::new(1)), // e4@t2
        Assignment::new(EventId::new(0), IntervalId::new(0)), // e1@t1
        Assignment::new(EventId::new(1), IntervalId::new(1)), // e2@t2
    ]
}

/// Figure 2 row ①: the eight initial assignment scores.
#[test]
fn figure2_initial_scores() {
    let inst = running_example();
    let mut engine = ScoringEngine::new(&inst);
    let expected = [
        ((0, 0), 0.59),
        ((1, 0), 0.52),
        ((2, 0), 0.10),
        ((3, 0), 0.64),
        ((0, 1), 0.53),
        ((1, 1), 0.57),
        ((2, 1), 0.09),
        ((3, 1), 0.66),
    ];
    for ((e, t), want) in expected {
        let got = engine.assignment_score(EventId::new(e), IntervalId::new(t));
        assert!((got - want).abs() < 5e-3, "α(e{}, t{}) = {got}, paper: {want}", e + 1, t + 1);
    }
}

/// Examples 2–5: every algorithm finds the paper's schedule, with exactly
/// the update counts the paper walks through (ALG 4, INC 1, HOR 3, HOR-I 2).
#[test]
fn examples_2_to_5_full_trace() {
    let inst = running_example();
    let cases: [(&str, Box<dyn Scheduler>, u64); 4] = [
        ("Example 2", Box::new(Alg), 4),
        ("Example 3", Box::new(Inc), 1),
        ("Example 4", Box::new(Hor), 3),
        ("Example 5", Box::new(HorI), 2),
    ];
    for (name, scheduler, updates) in cases {
        let res = scheduler.run(&inst, 3);
        assert_eq!(res.schedule.assignments(), paper_schedule().as_slice(), "{name}");
        assert_eq!(res.stats.score_updates, updates, "{name} update count");
        assert!((res.utility - 1.4073).abs() < 5e-4, "{name} utility {}", res.utility);
    }
}

/// Example 1's narrative: Alice (u1) is interested in all three Friday
/// options but can attend only one — the Luce probabilities for the
/// scheduled events sum to at most her activity probability.
#[test]
fn example1_luce_budget() {
    let inst = running_example();
    let mut s = social_event_scheduling::Schedule::new(&inst);
    for a in paper_schedule() {
        s.assign(&inst, a.event, a.interval).unwrap();
    }
    for t in 0..2 {
        let interval = IntervalId::new(t);
        for u in 0..2 {
            let total: f64 = s
                .events_at(interval)
                .iter()
                .map(|&e| attendance_probability(&inst, &s, u, e, interval))
                .sum();
            let sigma = inst.activity.value(u, t);
            assert!(total <= sigma + 1e-12, "user {u} t{t}: Σρ = {total} > σ = {sigma}");
        }
    }
}

/// Eq. 2/3 consistency on the final schedule: per-event attendances sum to
/// the total utility.
#[test]
fn expected_attendances_sum_to_utility() {
    let inst = running_example();
    let mut s = social_event_scheduling::Schedule::new(&inst);
    for a in paper_schedule() {
        s.assign(&inst, a.event, a.interval).unwrap();
    }
    let per_event: f64 =
        paper_schedule().iter().map(|a| expected_attendance(&inst, &s, a.event)).sum();
    let omega = total_utility(&inst, &s);
    assert!((per_event - omega).abs() < 1e-12);
    // Hand-computed per-event values: ω(e1) ≈ 0.5902, ω(e4) ≈ 0.4711,
    // ω(e2) ≈ 0.3461 under the final schedule.
    assert!((expected_attendance(&inst, &s, EventId::new(0)) - 0.5902).abs() < 5e-4);
    assert!((expected_attendance(&inst, &s, EventId::new(3)) - 0.4711).abs() < 5e-4);
    assert!((expected_attendance(&inst, &s, EventId::new(1)) - 0.3461).abs() < 5e-4);
}

/// The location constraint from Example 1: e1 and e2 share Stage 1 and can
/// never share an interval — in any k = 4 run they land in different slots.
#[test]
fn stage1_events_never_collide() {
    let inst = running_example();
    for kind in SchedulerKind::paper_lineup() {
        let res = kind.run(&inst, 4);
        let t0 = res.schedule.interval_of(EventId::new(0));
        let t1 = res.schedule.interval_of(EventId::new(1));
        if let (Some(a), Some(b)) = (t0, t1) {
            assert_ne!(a, b, "{}: e1 and e2 share Stage 1", kind.name());
        }
    }
}
