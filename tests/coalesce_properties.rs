//! Property layer for the window-coalescing algebra
//! (`core::delta::coalesce`): over seeded churn streams carved into
//! windows of several sizes, the coalesced batch must be **sound** (it
//! materializes to exactly the instance the window's ops reach one at a
//! time), **minimal-or-equal** (never longer than the window),
//! **idempotent** (re-coalescing a batch is a fixpoint), and — for
//! windows of commuting ops — **canonical**: every interleaving of the
//! window coalesces to the same batch.

use social_event_scheduling::core::delta::coalesce::coalesce;
use social_event_scheduling::core::delta::{self, DeltaOp};
use social_event_scheduling::core::model::Instance;
use social_event_scheduling::core::{EventId, LocationId};
use social_event_scheduling::datasets::ops::{self, BurstParams, OpStreamParams};
use social_event_scheduling::datasets::Dataset;

const WINDOWS: &[usize] = &[1, 5, 16, 64];

/// Chunks `stream` into `window`-sized windows against an evolving base
/// and checks soundness, length, and idempotence of every coalesced batch.
fn check_stream(label: &str, base: &Instance, stream: &[DeltaOp], window: usize) {
    let mut cur = base.clone();
    for (w, chunk) in stream.chunks(window).enumerate() {
        let batch = coalesce(&cur, chunk)
            .unwrap_or_else(|e| panic!("{label} window {w} (size {window}): {e}"));
        assert!(
            batch.len() <= chunk.len(),
            "{label} window {w}: batch of {} from a window of {}",
            batch.len(),
            chunk.len()
        );
        let serial = delta::materialize(&cur, chunk)
            .unwrap_or_else(|e| panic!("{label} window {w}: serial apply: {e}"));
        let batched = delta::materialize(&cur, &batch)
            .unwrap_or_else(|e| panic!("{label} window {w}: batch apply: {e}"));
        assert!(
            batched == serial,
            "{label} window {w} (size {window}): coalesced batch diverged from \
             op-at-a-time application"
        );
        let again = coalesce(&cur, &batch)
            .unwrap_or_else(|e| panic!("{label} window {w}: re-coalesce: {e}"));
        assert!(again == batch, "{label} window {w}: coalesce is not idempotent");
        cur = serial;
    }
}

#[test]
fn coalescing_is_sound_over_generated_streams() {
    let mixes: &[(&str, Dataset, OpStreamParams)] = &[
        (
            "unf/moderate",
            Dataset::Unf,
            OpStreamParams::default().with_ops(200).with_churn(0.3).with_seed(0xC0A1),
        ),
        (
            "zip/heavy-structural",
            Dataset::Zip,
            OpStreamParams::default()
                .with_ops(200)
                .with_churn(0.8)
                .with_user_churn(0.6)
                .with_seed(0xC0A2),
        ),
        (
            "meetup/sparse+constraints",
            Dataset::Meetup,
            OpStreamParams::default()
                .with_ops(200)
                .with_churn(0.5)
                .with_interest_density(0.25)
                .with_constraint_churn(0.3)
                .with_seed(0xC0A3),
        ),
    ];
    for (label, dataset, params) in mixes {
        let base = dataset.build(50, 14, 5, params.seed);
        let stream = ops::generate(&base, params);
        for &window in WINDOWS {
            check_stream(label, &base, &stream, window);
        }
    }
}

/// The redundancy-heavy bursty feed is the workload windowing exists for;
/// its duplicate-laden windows must coalesce soundly too — and actually
/// shrink.
#[test]
fn coalescing_is_sound_over_bursty_feeds() {
    let base = Dataset::Unf.build(50, 14, 5, 0xB5);
    let params = BurstParams::default()
        .with_ops(OpStreamParams::default().with_ops(150).with_seed(0xB5))
        .with_redundancy(0.7);
    let feed: Vec<DeltaOp> =
        ops::generate_bursts(&base, &params).into_iter().map(|t| t.op).collect();
    for &window in WINDOWS {
        check_stream("bursty", &base, &feed, window);
    }
    let shrunk: usize = feed
        .chunks(16)
        .scan(base.clone(), |cur, chunk| {
            let n = coalesce(cur, chunk).unwrap().len();
            *cur = delta::materialize(cur, chunk).unwrap();
            Some(n)
        })
        .sum();
    assert!(shrunk < feed.len(), "a redundant feed must coalesce below its raw length");
}

/// Tiny deterministic LCG so the interleaving shuffles need no RNG
/// dependency in the root test crate.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

fn shuffled(window: &[DeltaOp], seed: u64) -> Vec<DeltaOp> {
    let mut out = window.to_vec();
    let mut state = seed;
    for i in (1..out.len()).rev() {
        let j = (lcg(&mut state) % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// Canonicality: a window of pairwise-commuting ops (drifts on distinct
/// cells, capacity updates on distinct already-capacitated venues)
/// reaches the same final state in any order, and **every interleaving
/// coalesces to the identical batch** — the batch is a function of
/// (base, final state), not of arrival order.
#[test]
fn commuting_interleavings_coalesce_to_one_canonical_batch() {
    let mut base = Dataset::Unf.build(30, 12, 5, 0xCA);
    // Pre-capacitate two venues so the window's capacity writes are
    // in-place updates (fresh capacities would append in arrival order
    // and thus not commute).
    base.constraints.set_venue_capacity(LocationId::new(0), 5);
    base.constraints.set_venue_capacity(LocationId::new(1), 5);

    let mut window: Vec<DeltaOp> = (0..10)
        .map(|i| DeltaOp::ShiftInterest {
            event: EventId::new(i % base.num_events()),
            user: i, // distinct (event, user) cells — drifts commute
            interest: 0.05 * (i as f64 + 1.0),
        })
        .collect();
    window.push(DeltaOp::SetVenueCapacity { location: LocationId::new(0), capacity: Some(2) });
    window.push(DeltaOp::SetVenueCapacity { location: LocationId::new(1), capacity: Some(3) });

    let canonical = coalesce(&base, &window).expect("window is valid");
    let end = delta::materialize(&base, &window).unwrap();
    for round in 0..24u64 {
        let perm = shuffled(&window, 0x5EED + round);
        assert!(
            delta::materialize(&base, &perm).unwrap() == end,
            "round {round}: ops were expected to commute"
        );
        let batch = coalesce(&base, &perm).expect("permuted window is valid");
        assert!(
            batch == canonical,
            "round {round}: interleaving produced a different batch — coalescing is not \
             canonical"
        );
    }
}

/// The canonical batch of a self-cancelling window is empty — redundant
/// traffic costs a flush nothing.
#[test]
fn a_reverted_window_coalesces_to_nothing() {
    let base = Dataset::Unf.build(30, 12, 5, 0xCB);
    let original = base.event_interest.value(3, 7);
    let window = vec![
        DeltaOp::ShiftInterest { event: EventId::new(3), user: 7, interest: 0.9 },
        DeltaOp::ShiftInterest { event: EventId::new(3), user: 7, interest: 0.4 },
        DeltaOp::ShiftInterest { event: EventId::new(3), user: 7, interest: original },
        DeltaOp::AddConflict { a: EventId::new(0), b: EventId::new(1) },
        DeltaOp::RemoveConflict { a: EventId::new(0), b: EventId::new(1) },
    ];
    assert_eq!(coalesce(&base, &window).unwrap(), Vec::new());
}
