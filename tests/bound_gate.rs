//! The bound-first gate's contract, enforced differentially:
//!
//! 1. **Selection-neutral.** A gated run produces the *exact* schedule and
//!    utility bits of the ungated reference — the gate may only change how
//!    many stale candidates pay for a full refresh sweep. This doubles as
//!    the skip-soundness proof: if the gate ever skipped a candidate that
//!    would have been selected, the schedules would diverge.
//! 2. **Effective.** Across the probed workloads the skip counter actually
//!    fires (a sound gate that never skips is dead weight), including on
//!    the fig-10b search-space workload (Meetup, INC).
//! 3. **Deterministic.** Gated runs stay bit-identical across thread
//!    counts — the bound is computed from thread-invariant caches.

use social_event_scheduling::algorithms::stream::StreamScheduler;
use social_event_scheduling::algorithms::{RunConfig, SchedulerKind, Scratch};
use social_event_scheduling::core::delta;
use social_event_scheduling::core::parallel::Threads;
use social_event_scheduling::datasets::ops::{self, OpStreamParams};
use social_event_scheduling::datasets::Dataset;
use social_event_scheduling::Instance;

/// The gated schedulers (ALG refreshes eagerly by design; TOP/RAND never
/// refresh).
const GATED: [SchedulerKind; 3] = [SchedulerKind::Inc, SchedulerKind::HorI, SchedulerKind::Lazy];

fn run(
    kind: SchedulerKind,
    inst: &Instance,
    k: usize,
    gate: bool,
    threads: usize,
) -> social_event_scheduling::algorithms::ScheduleResult {
    let cfg = RunConfig::threaded(Threads::new(threads)).with_bound_gate(gate);
    kind.run_configured(inst, k, cfg, &mut Scratch::new())
}

/// Gate on ≡ gate off, for every gated scheduler on every dataset, in both
/// the single-round and the multi-round regime — and the gate fires
/// somewhere in the matrix.
#[test]
fn gate_is_selection_neutral_and_fires() {
    let mut total_skips = 0u64;
    let (mut sweeps_plain, mut sweeps_gated) = (0u64, 0u64);
    for dataset in Dataset::ALL {
        for (i, &(k, events, intervals)) in
            [(8usize, 40usize, 12usize), (12, 30, 5)].iter().enumerate()
        {
            let inst = dataset.build(150, events, intervals, 0x6A7E + i as u64);
            for kind in GATED {
                let plain = run(kind, &inst, k, false, 1);
                let gated = run(kind, &inst, k, true, 1);
                assert_eq!(
                    plain.schedule.assignments(),
                    gated.schedule.assignments(),
                    "{}/{}#{i}: gate changed the schedule",
                    dataset.name(),
                    kind.name()
                );
                assert_eq!(
                    plain.utility.to_bits(),
                    gated.utility.to_bits(),
                    "{}/{}#{i}: gate changed utility bits",
                    dataset.name(),
                    kind.name()
                );
                assert_eq!(plain.stats.bound_skips, 0, "gate off must record no skips");
                assert!(
                    gated.stats.bound_skips > 0,
                    "{}/{}#{i}: gate-on runs must seed candidates with bounds",
                    dataset.name(),
                    kind.name()
                );
                sweeps_plain += plain.stats.score_computations;
                sweeps_gated += gated.stats.score_computations;
                total_skips += gated.stats.bound_skips;
            }
        }
    }
    assert!(total_skips > 0, "the gate never fired across the whole matrix");
    // The point of the gate: fewer full sweeps overall (seeds are
    // O(duration); only candidates whose bound survives Φ pay for a user
    // sweep). Dense single-round cases can tie — the matrix must not.
    assert!(
        sweeps_gated < sweeps_plain,
        "gate saved no sweeps across the matrix ({sweeps_gated} !< {sweeps_plain})"
    );
}

/// The fig-10b search-space workload (Meetup, ALG-vs-INC shape): gated INC
/// records a non-zero skip count while reproducing the ungated result
/// exactly.
#[test]
fn fig10b_workload_records_bound_skips() {
    let inst = Dataset::Meetup.build(100, 60, 12, 2);
    let k = 24;
    let plain = run(SchedulerKind::Inc, &inst, k, false, 1);
    let gated = run(SchedulerKind::Inc, &inst, k, true, 1);
    assert_eq!(plain.schedule.assignments(), gated.schedule.assignments());
    assert_eq!(plain.utility.to_bits(), gated.utility.to_bits());
    assert!(
        gated.stats.bound_skips > 0,
        "fig-10b workload must exercise the gate (skips = {})",
        gated.stats.bound_skips
    );
    assert!(
        gated.stats.user_ops < plain.stats.user_ops,
        "skips must translate into saved user sweeps ({} !< {})",
        gated.stats.user_ops,
        plain.stats.user_ops
    );
}

/// Gated runs are bit-identical across thread counts, `bound_skips`
/// included (the bound reads only thread-invariant caches).
#[test]
fn gated_runs_bit_identical_across_threads() {
    let inst = Dataset::Zip.build(2 * 512 + 307, 30, 5, 0x9A9);
    for kind in GATED {
        let seq = run(kind, &inst, 12, true, 1);
        for n in [2usize, 8] {
            let par = run(kind, &inst, 12, true, n);
            assert_eq!(seq.schedule.assignments(), par.schedule.assignments(), "{}", kind.name());
            assert_eq!(seq.utility.to_bits(), par.utility.to_bits(), "{}", kind.name());
            assert_eq!(seq.stats, par.stats, "{}: stats (incl. skips) diverged", kind.name());
        }
    }
}

/// The stream repairer with the gate on repairs to the same schedules and
/// utilities as the ungated repairer, op for op.
#[test]
fn stream_gate_is_repair_neutral() {
    let base = Dataset::Unf.build(60, 16, 5, 0xD16);
    let params =
        OpStreamParams::default().with_ops(60).with_churn(0.5).with_user_churn(0.4).with_seed(11);
    let stream_ops = ops::generate(&base, &params);
    let mut plain = StreamScheduler::new(base.clone(), 6, Threads::sequential());
    let mut gated =
        StreamScheduler::new(base.clone(), 6, Threads::sequential()).with_bound_gate(true);
    let mut mat = base;
    let mut skips = 0u64;
    for (i, op) in stream_ops.iter().enumerate() {
        delta::apply(&mut mat, op).unwrap();
        let rp = plain.apply(op).unwrap().clone();
        let rg = gated.apply(op).unwrap().clone();
        assert_eq!(
            plain.schedule().assignments(),
            gated.schedule().assignments(),
            "op {i} ({}): gated repair diverged",
            op.kind()
        );
        assert_eq!(plain.utility().to_bits(), gated.utility().to_bits(), "op {i}");
        assert_eq!(rp.stats.bound_skips, 0);
        skips += rg.stats.bound_skips;
    }
    assert!(skips > 0, "the gate never fired across the op stream");
}
