//! The differential layer behind the parallel execution paths: **every
//! scheduler, on every dataset, is bit-identical across thread counts.**
//!
//! The parallel engine (fixed-block user sweeps), the parallel candidate
//! generation in ALG/HOR, and the thread-count plumbing may only change
//! wall-clock time — never a schedule, a utility bit, or a counter. Each
//! case runs the sequential reference first and then re-runs at 2 and 8
//! threads, comparing:
//!
//! * the full assignment sequence (exact equality — selection *order*, not
//!   just the set),
//! * the utility down to the last mantissa bit (`f64::to_bits`),
//! * the complete [`Stats`] record (score computations, user ops,
//!   assignments examined, selections, updates).
//!
//! User counts are chosen to exceed the engine's 512-entry reduction block
//! (dense columns span ≥ 2 blocks), so the parallel summation path really
//! executes rather than degenerating to the single-block fast path.

use social_event_scheduling::algorithms::{SchedulerKind, SchedulerRegistry};
use social_event_scheduling::core::model::StorageKind;
use social_event_scheduling::core::parallel::{Threads, PAR_BLOCK};
use social_event_scheduling::datasets::Dataset;
use social_event_scheduling::Instance;

/// Thread counts compared against the sequential reference.
const THREAD_COUNTS: [usize; 2] = [2, 8];

/// Enough users for ≥ 2 reduction blocks per dense column.
const USERS: usize = 2 * PAR_BLOCK + 307;

fn assert_bit_identical(kind: SchedulerKind, inst: &Instance, k: usize, label: &str) {
    let seq = kind.run_threaded(inst, k, Threads::sequential());
    for &n in &THREAD_COUNTS {
        let par = kind.run_threaded(inst, k, Threads::new(n));
        assert_eq!(
            seq.schedule.assignments(),
            par.schedule.assignments(),
            "{label}/{}/t{n}: schedule diverged",
            kind.name()
        );
        assert_eq!(
            seq.utility.to_bits(),
            par.utility.to_bits(),
            "{label}/{}/t{n}: utility bits diverged ({} vs {})",
            kind.name(),
            seq.utility,
            par.utility
        );
        assert_eq!(seq.stats, par.stats, "{label}/{}/t{n}: stats diverged", kind.name());
    }
}

/// The Table-1 shape regimes each dataset is exercised in: one single-round
/// configuration (`k ≤ |T|` — HOR-I ≡ HOR, zero updates) and one
/// multi-round (`k > |T|` — every incremental scheme does update work).
const SHAPES: [(usize, usize, usize); 2] = [
    // (k, |E|, |T|)
    (8, 40, 12),
    (12, 30, 5),
];

#[test]
fn all_schedulers_bit_identical_across_thread_counts() {
    // The registry is the canonical scheduler table; this test takes every
    // entry except EXACT (covered on a tractable shape below) and the
    // aux/extension schedulers (covered on one instance below).
    let kinds: Vec<SchedulerKind> = SchedulerRegistry::standard()
        .kinds()
        .into_iter()
        .filter(|k| {
            !matches!(
                k,
                SchedulerKind::Exact
                    | SchedulerKind::Lazy
                    | SchedulerKind::RefinedHor
                    | SchedulerKind::Rand(_)
            )
        })
        .collect();
    assert_eq!(kinds.len(), 5, "registry lost a paper scheduler");
    for dataset in Dataset::ALL {
        for (i, &(k, events, intervals)) in SHAPES.iter().enumerate() {
            let inst = dataset.build(USERS, events, intervals, 0x9A8 + i as u64);
            let label = format!("{}#{i}", dataset.name());
            for &kind in &kinds {
                assert_bit_identical(kind, &inst, k, &label);
            }
        }
    }
}

/// The sparse interest layout drives the positional (non-zero-list) variant
/// of the blocked reduction; a dense uniform matrix converted to sparse has
/// full columns, so every column spans multiple blocks here too.
#[test]
fn sparse_layout_bit_identical_across_thread_counts() {
    let dense = Dataset::Unf.build(USERS, 30, 8, 0x5AE);
    let mut sparse = dense.clone();
    sparse.event_interest = dense.event_interest.to_sparse().into();
    sparse.competing_interest = dense.competing_interest.to_sparse().into();
    for kind in [SchedulerKind::Alg, SchedulerKind::Inc, SchedulerKind::Hor, SchedulerKind::HorI] {
        assert_bit_identical(kind, &sparse, 10, "Unf-sparse");
    }
}

/// The compressed (dictionary-encoded columnar) layout drives the
/// code-resolving variant of the blocked reduction. The quantized rebuild
/// keeps the dictionary small the way real compressed instances do, and
/// the layout must stay bit-identical to itself across thread counts *and*
/// to the dense run of the same matrix at every count.
#[test]
fn compressed_layout_bit_identical_across_thread_counts() {
    let dense = Dataset::Unf.build(USERS, 30, 8, 0x5AE);
    let mut compressed = dense.clone();
    compressed.event_interest = dense.event_interest.convert_to(StorageKind::Compressed);
    compressed.competing_interest = dense.competing_interest.convert_to(StorageKind::Compressed);
    for kind in [SchedulerKind::Alg, SchedulerKind::Inc, SchedulerKind::Hor, SchedulerKind::HorI] {
        assert_bit_identical(kind, &compressed, 10, "Unf-compressed");
        // Cross-backend: the compressed run must match the dense run bit
        // for bit at every thread count, not merely be self-consistent.
        for &n in &[1usize, 2, 8] {
            let d = kind.run_threaded(&dense, 10, Threads::new(n));
            let c = kind.run_threaded(&compressed, 10, Threads::new(n));
            assert_eq!(d.schedule.assignments(), c.schedule.assignments(), "{}/t{n}", kind.name());
            assert_eq!(d.utility.to_bits(), c.utility.to_bits(), "{}/t{n}", kind.name());
            assert_eq!(d.stats, c.stats, "{}/t{n}", kind.name());
        }
    }
}

/// EXACT backtracks over apply/unapply cycles — the residue-snapping path —
/// so its equivalence additionally proves the parallel engine's mass
/// updates round-trip identically. Tiny event count keeps the search tree
/// tractable at full user scale.
#[test]
fn exact_solver_bit_identical_across_thread_counts() {
    let inst = Dataset::Zip.build(USERS, 6, 2, 0xE8A);
    assert_bit_identical(SchedulerKind::Exact, &inst, 3, "Zip-tiny");
}

/// The ablation/extension schedulers ride the same engine; keep them honest
/// on one dense multi-round instance.
#[test]
fn auxiliary_schedulers_bit_identical_across_thread_counts() {
    let inst = Dataset::Concerts.build(USERS, 30, 5, 0xAB5);
    for kind in [SchedulerKind::Lazy, SchedulerKind::RefinedHor, SchedulerKind::Rand(7)] {
        assert_bit_identical(kind, &inst, 12, "Concerts-aux");
    }
}

/// `Threads::new(0)` (machine width) and the `SES_THREADS` default path go
/// through the same resolution; whatever they resolve to must also match
/// the sequential reference.
#[test]
fn auto_width_matches_sequential() {
    let inst = Dataset::Unf.build(USERS, 25, 6, 0xA07);
    let seq = SchedulerKind::Hor.run_threaded(&inst, 9, Threads::sequential());
    let auto = SchedulerKind::Hor.run_threaded(&inst, 9, Threads::new(0));
    assert_eq!(seq.schedule.assignments(), auto.schedule.assignments());
    assert_eq!(seq.utility.to_bits(), auto.utility.to_bits());
    assert_eq!(seq.stats, auto.stats);
}
