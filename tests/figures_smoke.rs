//! End-to-end smoke runs of every figure runner at `ExperimentConfig::smoke`
//! scale, checking the report structure and the paper's headline shape
//! claims on each.

use social_event_scheduling::experiments::figures::{self, summary, ALL_FIGURES};
use social_event_scheduling::experiments::{ExperimentConfig, Metric};

fn config() -> ExperimentConfig {
    ExperimentConfig::smoke()
}

#[test]
fn every_figure_runs_and_renders() {
    for id in ALL_FIGURES {
        let report = figures::run_figure(id, &config()).unwrap_or_else(|| panic!("{id} missing"));
        assert_eq!(report.id, id);
        assert!(!report.records.is_empty(), "{id} produced no records");
        let rendered = report.render();
        assert!(rendered.contains(id), "{id} render lacks id");
        // JSON and CSV exports are well-formed.
        let json = report.to_json();
        assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
        assert!(report.to_csv().lines().count() > 1);
    }
    assert!(figures::run_figure("nope", &config()).is_none());
}

/// Fig 5 shape: computations ordering ALG ≥ INC and ALG ≥ HOR ≥/= HOR-I at
/// every sweep point on every dataset; INC utility ≡ ALG utility.
#[test]
fn fig5_shapes() {
    let report = figures::fig5::run(&config());
    for dataset in report.datasets() {
        for x in report.xs(&dataset) {
            let get = |alg: &str| report.cell(&dataset, alg, x).unwrap();
            assert!(
                get("ALG").computations >= get("INC").computations,
                "{dataset} k={x}: INC must not out-compute ALG"
            );
            assert!(
                get("HOR").computations >= get("HOR-I").computations,
                "{dataset} k={x}: HOR-I must not out-compute HOR"
            );
            assert!((get("ALG").utility - get("INC").utility).abs() < 1e-9);
            assert!((get("HOR").utility - get("HOR-I").utility).abs() < 1e-9);
            // TOP computes the bare minimum among scoring methods.
            assert!(get("TOP").computations <= get("ALG").computations);
        }
    }
}

/// Fig 6 shape: utility of the greedy methods rises with |T| on every
/// dataset (more slots, fewer parallel events).
#[test]
fn fig6_utility_rises_with_intervals() {
    let report = figures::fig6::run(&config());
    for dataset in report.datasets() {
        let series = report.series(&dataset, "ALG", Metric::Utility);
        assert!(series.len() >= 2);
        let first = series.first().unwrap().1;
        let last = series.last().unwrap().1;
        assert!(last > first, "{dataset}: utility should rise with |T| ({first} -> {last})");
    }
}

/// Fig 7 shape: RAND never beats the greedy methods, and ALG's utility does
/// not degrade as |E| grows.
#[test]
fn fig7_shapes() {
    let report = figures::fig7::run(&config());
    for dataset in report.datasets() {
        for x in report.xs(&dataset) {
            let alg = report.cell(&dataset, "ALG", x).unwrap();
            let rnd = report.cell(&dataset, "RAND", x).unwrap();
            assert!(alg.utility >= rnd.utility - 1e-9, "{dataset} |E|={x}");
        }
        let series = report.series(&dataset, "ALG", Metric::Utility);
        let first = series.first().unwrap().1;
        let last = series.last().unwrap().1;
        assert!(last >= first * 0.95, "{dataset}: ALG utility collapsed with |E|");
    }
}

/// Fig 8 shape: computations grow linearly-ish with |U| for every method.
#[test]
fn fig8_computations_scale_with_users() {
    let report = figures::fig8::run(&config());
    for dataset in report.datasets() {
        let series = report.series(&dataset, "ALG", Metric::Computations);
        for w in series.windows(2) {
            assert!(w[1].1 > w[0].1, "{dataset}: computations must rise with |U|");
        }
    }
}

/// Fig 9 shape: every method stays feasible across location counts and the
/// greedy utilities stay within a band (the paper: "almost unaffected").
#[test]
fn fig9_greedy_utility_stable() {
    let report = figures::fig9::run(&config());
    let series = report.series("Unf", "ALG", Metric::Utility);
    let min = series.iter().map(|p| p.1).fold(f64::MAX, f64::min);
    let max = series.iter().map(|p| p.1).fold(f64::MIN, f64::max);
    assert!(min > 0.0);
    assert!(max / min < 2.0, "ALG utility swings too much with locations: {min}..{max}");
}

/// Fig 10a shape: even in the horizontal worst case, HOR-I performs no more
/// computations than ALG on any dataset.
#[test]
fn fig10a_worst_case_ordering() {
    let report = figures::fig10::run_worst_case(&config());
    for dataset in report.datasets() {
        let alg = report.cell(&dataset, "ALG", 0.0).unwrap();
        let hor_i = report.cell(&dataset, "HOR-I", 0.0).unwrap();
        assert!(
            hor_i.computations <= alg.computations,
            "{dataset}: HOR-I {} > ALG {}",
            hor_i.computations,
            alg.computations
        );
    }
}

/// Fig 10b shape: INC examines fewer assignments than ALG in every config.
#[test]
fn fig10b_search_space_reduction() {
    let report = figures::fig10::run_search_space(&config());
    for dataset in report.datasets() {
        for x in report.xs(&dataset) {
            let alg = report.cell(&dataset, "ALG", x).unwrap();
            let inc = report.cell(&dataset, "INC", x).unwrap();
            assert!(
                inc.examined < alg.examined,
                "{dataset}: INC {} !< ALG {}",
                inc.examined,
                alg.examined
            );
        }
    }
}

/// §4.2.8: the quality batch renders and Prop. 3 holds.
#[test]
fn summary_runs() {
    let s = summary::run(50, 1);
    assert!(s.inc_always_equal);
    assert!(s.render().contains("§4.2.8"));
}
