//! The differential layer behind the session service: **every request a
//! [`SesService`] answers is bit-identical to the cold, hand-plumbed
//! path it replaced.**
//!
//! The service owns warm state — per-scheduler scratch pools, the
//! incremental repairer's caches, a live mutated instance — and all of it
//! must be invisible in results. Three claims, each tested differentially:
//!
//! * a `Schedule` request equals a cold `run_configured` call: same
//!   assignment sequence, same utility bits (`f64::to_bits`), same full
//!   [`Stats`] — for **every registry scheduler × every dataset × 1 and 4
//!   threads**;
//! * warm state survives (and stays invisible across) **hundreds of
//!   consecutive requests** on one service — the pooled scratches make the
//!   steady state allocation-free, and round N must answer exactly like
//!   round 1;
//! * a `Repair`/`ApplyOps` session equals a hand-driven
//!   [`StreamScheduler`] op for op: same repaired schedule, utility bits,
//!   and per-op counters, with `Schedule` requests interleaved to prove
//!   the two warm caches don't contaminate each other.

use social_event_scheduling::algorithms::stream::StreamScheduler;
use social_event_scheduling::algorithms::{RunConfig, SchedulerRegistry, Scratch, SesService};
use social_event_scheduling::core::parallel::Threads;
use social_event_scheduling::core::stats::Stats;
use social_event_scheduling::datasets::ops::{self, OpStreamParams};
use social_event_scheduling::datasets::Dataset;
use social_event_scheduling::Instance;

/// Explicit thread counts (the CI thread-matrix additionally re-runs this
/// whole file under `SES_THREADS=1` and `=4`).
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn assert_schedule_matches(
    label: &str,
    via: &social_event_scheduling::algorithms::ScheduleResult,
    direct: &social_event_scheduling::algorithms::ScheduleResult,
) {
    assert_eq!(via.algorithm, direct.algorithm, "{label}: label diverged");
    assert_eq!(
        via.schedule.assignments(),
        direct.schedule.assignments(),
        "{label}: schedule diverged"
    );
    assert_eq!(
        via.utility.to_bits(),
        direct.utility.to_bits(),
        "{label}: utility bits diverged ({} vs {})",
        via.utility,
        direct.utility
    );
    assert_eq!(via.stats, direct.stats, "{label}: stats diverged");
}

/// `Schedule` requests across the full registry × datasets × thread
/// matrix, on one service per (dataset, threads) so warm scratches carry
/// across schedulers. EXACT runs on a reduced shape below (its search
/// tree explodes on this one).
#[test]
fn service_schedule_bit_identical_to_direct_runs() {
    let reg = SchedulerRegistry::standard();
    for dataset in Dataset::ALL {
        let inst = dataset.build(150, 24, 6, 0x5E5);
        for threads in THREAD_COUNTS.map(Threads::new) {
            let cfg = RunConfig::threaded(threads);
            let mut service = SesService::new(inst.clone()).with_threads(threads);
            for idx in 0..reg.len() {
                let name = reg.name(idx);
                if name == "EXACT" {
                    continue;
                }
                let via = service.schedule(name, 8, cfg).expect("registered name");
                let direct = reg.run(idx, &inst, 8, cfg, &mut Scratch::new());
                let label = format!("{}/{}/t{}", dataset.name(), name, threads.get());
                assert_schedule_matches(&label, &via, &direct);
            }
        }
    }
}

/// EXACT through the service on a branch-&-bound-tractable shape.
#[test]
fn service_exact_bit_identical_to_direct_run() {
    let inst = Dataset::Zip.build(120, 6, 2, 0xE8A);
    for threads in THREAD_COUNTS.map(Threads::new) {
        let cfg = RunConfig::threaded(threads);
        let mut service = SesService::new(inst.clone()).with_threads(threads);
        let via = service.schedule("exact", 3, cfg).unwrap();
        let reg = SchedulerRegistry::standard();
        let idx = reg.resolve("exact").unwrap();
        let direct = reg.run(idx, &inst, 3, cfg, &mut Scratch::new());
        assert_schedule_matches(&format!("Zip-exact/t{}", threads.get()), &via, &direct);
    }
}

/// One service, ≥ 100 consecutive `Schedule` requests over warm scratch
/// pools: every round must answer bit-identically to the cold reference
/// captured in round 1 — warm state may only save allocations, never leak
/// into results. The gated and profiled configurations ride along.
#[test]
fn warm_service_stable_across_hundreds_of_requests() {
    let reg = SchedulerRegistry::standard();
    let inst = Dataset::Unf.build(120, 20, 5, 0xA11);
    let mut service = SesService::new(inst.clone()).with_threads(Threads::sequential());
    let lineup: Vec<&'static str> = reg.names().into_iter().filter(|n| *n != "EXACT").collect();
    let configs = [
        RunConfig::threaded(Threads::sequential()),
        RunConfig::threaded(Threads::sequential()).with_bound_gate(true),
        RunConfig::threaded(Threads::new(4)).with_profile(true),
    ];

    // Round 1: capture the cold reference per (scheduler, config).
    let mut reference = Vec::new();
    for cfg in configs {
        for name in &lineup {
            let idx = reg.resolve(name).unwrap();
            reference.push(reg.run(idx, &inst, 7, cfg, &mut Scratch::new()));
        }
    }

    let mut requests = 0usize;
    for round in 0..5 {
        let mut it = reference.iter();
        for cfg in configs {
            for name in &lineup {
                let via = service.schedule(name, 7, cfg).unwrap();
                let direct = it.next().unwrap();
                assert_schedule_matches(&format!("round{round}/{name}"), &via, direct);
                requests += 1;
            }
        }
    }
    assert!(requests >= 100, "exercised only {requests} requests");
}

/// A `Repair` + per-op `ApplyOps` session equals a hand-driven
/// `StreamScheduler` — schedule, utility bits, per-op stats — across
/// datasets and thread counts, over seeded 30-op streams. `Schedule`
/// requests interleave every few ops to prove the scheduler scratch pools
/// and the repairer caches stay independent.
#[test]
fn service_repair_bit_identical_to_direct_stream() {
    for dataset in Dataset::ALL {
        let base = dataset.build(90, 16, 5, 0xD17);
        let params = OpStreamParams::default().with_ops(30).with_churn(0.4).with_seed(0x0D5);
        let stream_ops = ops::generate(&base, &params);
        for threads in THREAD_COUNTS.map(Threads::new) {
            let cfg = RunConfig::threaded(threads);
            let label = |i: usize| format!("{}/t{}/op{}", dataset.name(), threads.get(), i);

            let mut service = SesService::new(base.clone()).with_threads(threads);
            let cold = service.repair(6, cfg).expect("cold repair");
            assert!(!cold.warm);
            let mut direct = StreamScheduler::new(base.clone(), 6, threads);
            assert_repair_state_matches(&label(0), &service, &direct);
            assert_eq!(cold.report.stats, direct.last_repair().stats);

            for (i, op) in stream_ops.iter().enumerate() {
                let reports = service.apply_ops(std::slice::from_ref(op)).expect("valid op");
                let direct_report = direct.apply(op).expect("valid op").clone();
                assert_eq!(reports.len(), 1);
                assert_eq!(reports[0].stats, direct_report.stats, "{}", label(i));
                assert_eq!(
                    reports[0].utility.to_bits(),
                    direct_report.utility.to_bits(),
                    "{}",
                    label(i)
                );
                assert_eq!(reports[0].rescored, direct_report.rescored, "{}", label(i));
                assert_repair_state_matches(&label(i), &service, &direct);

                if i % 7 == 3 {
                    // Interleaved scheduling must neither disturb the
                    // repairer nor be disturbed by it.
                    let via = service.schedule("inc", 6, cfg).unwrap();
                    let reg = SchedulerRegistry::standard();
                    let direct_inc = reg.run(
                        reg.resolve("inc").unwrap(),
                        direct.instance(),
                        6,
                        cfg,
                        &mut Scratch::new(),
                    );
                    assert_schedule_matches(&label(i), &via, &direct_inc);
                    // Re-arming the matching repairer is a warm no-op.
                    let again = service.repair(6, cfg).unwrap();
                    assert!(again.warm, "{}", label(i));
                    assert_eq!(again.report.stats, direct_report.stats, "{}", label(i));
                }
            }
        }
    }
}

fn assert_repair_state_matches(label: &str, service: &SesService, direct: &StreamScheduler) {
    assert_eq!(
        service.current_schedule().expect("warm service").assignments(),
        direct.schedule().assignments(),
        "{label}: repaired schedule diverged"
    );
    assert_eq!(
        service.current_utility().expect("warm service").to_bits(),
        direct.utility().to_bits(),
        "{label}: repaired utility bits diverged"
    );
    assert_eq!(service.instance(), direct.instance(), "{label}: instances diverged");
}

/// Thread count must be invisible in service results: the full request mix
/// (schedule / repair / ops / schedule) answered at 1 thread and at 4
/// threads produces identical deterministic payloads.
#[test]
fn service_responses_thread_invariant() {
    let base = Dataset::Concerts.build(100, 14, 4, 0xC0C);
    let params = OpStreamParams::default().with_ops(12).with_churn(0.5).with_seed(7);
    let stream_ops = ops::generate(&base, &params);

    /// One observation of the session: counters + utility bits + schedule.
    #[derive(Debug, PartialEq)]
    struct Observation {
        stats: Stats,
        utility_bits: u64,
        schedule: Vec<(usize, usize)>,
    }
    fn pairs(sched: &social_event_scheduling::Schedule) -> Vec<(usize, usize)> {
        sched.assignments().iter().map(|a| (a.event.index(), a.interval.index())).collect()
    }

    let run_session = |threads: Threads| -> Vec<Observation> {
        let cfg = RunConfig::threaded(threads);
        let mut service = SesService::new(base.clone()).with_threads(threads);
        let mut log = Vec::new();
        let res = service.schedule("hor-i", 5, cfg).unwrap();
        log.push(Observation {
            stats: res.stats,
            utility_bits: res.utility.to_bits(),
            schedule: pairs(&res.schedule),
        });
        service.repair(5, cfg).unwrap();
        for op in &stream_ops {
            let rep = &service.apply_ops(std::slice::from_ref(op)).unwrap()[0];
            log.push(Observation {
                stats: rep.stats,
                utility_bits: rep.utility.to_bits(),
                schedule: pairs(service.current_schedule().unwrap()),
            });
        }
        log
    };

    let t1 = run_session(Threads::sequential());
    let t4 = run_session(Threads::new(4));
    assert_eq!(t1, t4, "thread count leaked into service results");
}

/// The service's instance mutations match `delta::materialize` — the
/// ops-applied instance a cold client would build.
#[test]
fn service_instance_matches_materialized_ops() {
    use social_event_scheduling::core::delta;
    let base = Dataset::Meetup.build(80, 12, 4, 0x33);
    let params = OpStreamParams::default().with_ops(20).with_churn(0.6).with_seed(0x99);
    let stream_ops = ops::generate(&base, &params);

    // Cold service (no repairer): ops mutate the owned instance.
    let mut cold = SesService::new(base.clone()).with_threads(Threads::sequential());
    cold.apply_ops(&stream_ops).unwrap();
    // Warm service: ops flow through the repairer.
    let mut warm = SesService::new(base.clone()).with_threads(Threads::sequential());
    warm.repair(5, RunConfig::threaded(Threads::sequential())).unwrap();
    warm.apply_ops(&stream_ops).unwrap();

    let reference: Instance = delta::materialize(&base, &stream_ops).unwrap();
    assert_eq!(cold.instance(), &reference);
    assert_eq!(warm.instance(), &reference);
    assert_eq!(cold.ops_applied(), stream_ops.len() as u64);
}
