//! Golden snapshot of one seeded **windowed** stream run: a redundant
//! bursty feed is carved into 12-op windows, each coalesced and repaired
//! in one flush, and the per-window trace — window size, coalesced batch
//! size, shapes, repair work, schedules, utilities — is byte-compared
//! against a committed golden file. The trace excludes wall-clock, so it
//! is fully deterministic; CI's `SES_THREADS` matrix makes the same
//! bytes double as a differential proof that thread count changes
//! nothing in the windowed repair path.
//!
//! To regenerate after an intentional change:
//! `UPDATE_GOLDEN=1 cargo test --test golden_windowed_stream` — then
//! commit the rewritten `tests/golden/windowed_stream.txt` and re-run
//! without the variable.

use social_event_scheduling::algorithms::stream::StreamScheduler;
use social_event_scheduling::core::delta::coalesce::coalesce;
use social_event_scheduling::core::delta::DeltaOp;
use social_event_scheduling::core::parallel::Threads;
use social_event_scheduling::datasets::ops::{self, BurstParams, OpStreamParams};
use social_event_scheduling::datasets::Dataset;
use std::fmt::Write as _;

const GOLDEN: &str = include_str!("golden/windowed_stream.txt");
const WINDOW: usize = 12;

fn render_run() -> String {
    let base = Dataset::Unf.build(60, 16, 5, 0xD15);
    let params =
        OpStreamParams::default().with_ops(40).with_churn(0.5).with_user_churn(0.4).with_seed(7);
    let burst = BurstParams::default().with_ops(params).with_redundancy(0.6);
    let feed: Vec<DeltaOp> =
        ops::generate_bursts(&base, &burst).into_iter().map(|t| t.op).collect();
    // Threads::default() resolves SES_THREADS: under CI's thread matrix the
    // identical golden bytes prove the windowed path is thread-invariant.
    let mut stream = StreamScheduler::new(base, 6, Threads::default());
    let mut out = String::new();
    let mut line = |tag: &str, ops: usize, coalesced: usize, s: &StreamScheduler| {
        let rep = s.last_repair();
        let sched: Vec<String> = s
            .schedule()
            .assignments()
            .iter()
            .map(|a| format!("{}@{}", a.event, a.interval))
            .collect();
        let _ = writeln!(
            out,
            "{tag:<6} ops={ops:<3} coal={coalesced:<3} |E|={:<3} |U|={:<3} rescored={:<3} \
             scores={:<5} updates={:<4} examined={:<5} utility={:.12} S=[{}]",
            s.instance().num_events(),
            s.instance().num_users(),
            rep.rescored,
            rep.stats.score_computations,
            rep.stats.score_updates,
            rep.stats.assignments_examined,
            s.utility(),
            sched.join(" "),
        );
    };
    line("cold", 0, 0, &stream);
    for chunk in feed.chunks(WINDOW) {
        let batch = coalesce(stream.instance(), chunk).expect("generated windows are valid");
        let coalesced = batch.len();
        stream.repair_batch(chunk).expect("generated windows are valid");
        line("win", chunk.len(), coalesced, &stream);
    }
    out
}

fn maybe_update(path: &str, content: &str) -> bool {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let full = format!("{}/tests/{path}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&full, content).expect("write golden file");
        eprintln!("rewrote {full}");
        true
    } else {
        false
    }
}

#[test]
fn windowed_stream_trace_matches_golden() {
    let trace = render_run();
    if maybe_update("golden/windowed_stream.txt", &trace) {
        return;
    }
    assert_eq!(
        trace, GOLDEN,
        "seeded windowed stream trace drifted from tests/golden/windowed_stream.txt \
         (UPDATE_GOLDEN=1 regenerates if the change is intentional)"
    );
}
