//! The paper's cross-cutting claims, verified on all four (simulated)
//! datasets at integration scale.

use social_event_scheduling::algorithms::SchedulerKind;
use social_event_scheduling::core::scoring::utility::total_utility;
use social_event_scheduling::datasets::Dataset;

const USERS: usize = 120;

/// Proposition 3 + Proposition 6 on every dataset, both k ≤ |T| and
/// k > |T| regimes.
#[test]
fn pairwise_equivalences_all_datasets() {
    for dataset in Dataset::ALL {
        for (k, events, intervals) in [(12usize, 60usize, 20usize), (25, 80, 8)] {
            let inst = dataset.build(USERS, events, intervals, 0xC1A1);
            let alg = SchedulerKind::Alg.run(&inst, k);
            let inc = SchedulerKind::Inc.run(&inst, k);
            let hor = SchedulerKind::Hor.run(&inst, k);
            let hor_i = SchedulerKind::HorI.run(&inst, k);
            assert_eq!(
                alg.schedule.assignments(),
                inc.schedule.assignments(),
                "Prop 3 on {} (k={k})",
                dataset.name()
            );
            assert_eq!(
                hor.schedule.assignments(),
                hor_i.schedule.assignments(),
                "Prop 6 on {} (k={k})",
                dataset.name()
            );
        }
    }
}

/// §1/§4: the proposed methods perform roughly half of ALG's computations
/// or less in bound-friendly settings — verified loosely: INC, HOR, HOR-I
/// all strictly below ALG, and HOR-I ≤ 75% of ALG on the skewed dataset.
#[test]
fn computation_reduction_claim() {
    let inst = Dataset::Zip.build(USERS, 150, 20, 0xFEE1);
    let k = 40; // k > |T|: updates happen for every method
    let alg = SchedulerKind::Alg.run(&inst, k);
    for kind in [SchedulerKind::Inc, SchedulerKind::Hor, SchedulerKind::HorI] {
        let res = kind.run(&inst, k);
        assert!(
            res.stats.user_ops < alg.stats.user_ops,
            "{} must beat ALG: {} vs {}",
            kind.name(),
            res.stats.user_ops,
            alg.stats.user_ops
        );
    }
    let hor_i = SchedulerKind::HorI.run(&inst, k);
    let ratio = hor_i.stats.user_ops as f64 / alg.stats.user_ops as f64;
    assert!(ratio < 0.75, "HOR-I/ALG computation ratio {ratio:.2} not < 0.75");
}

/// §4.2.1: TOP reports considerably lower utility than the greedy methods
/// because it piles events into few intervals.
#[test]
fn top_quality_is_poor() {
    for dataset in Dataset::ALL {
        let inst = dataset.build(USERS, 100, 12, 0x70F);
        let k = 24;
        let alg = SchedulerKind::Alg.run(&inst, k);
        let top = SchedulerKind::Top.run(&inst, k);
        assert!(
            top.utility < 0.95 * alg.utility,
            "{}: TOP {} suspiciously close to ALG {}",
            dataset.name(),
            top.utility,
            alg.utility
        );
        // TOP's defining behaviour: it concentrates events in few intervals.
        let top_used: std::collections::HashSet<_> =
            top.schedule.assignments().iter().map(|a| a.interval).collect();
        let alg_used: std::collections::HashSet<_> =
            alg.schedule.assignments().iter().map(|a| a.interval).collect();
        assert!(top_used.len() <= alg_used.len(), "{}: TOP spread wider than ALG", dataset.name());
    }
}

/// Every method's reported utility equals the from-scratch Eq. 1–3
/// evaluation — across datasets, including the sparse (Meetup) layout.
#[test]
fn reported_utilities_are_exact() {
    for dataset in Dataset::ALL {
        let inst = dataset.build(USERS, 80, 10, 0xACC);
        for kind in SchedulerKind::paper_lineup() {
            let res = kind.run(&inst, 16);
            let omega = total_utility(&inst, &res.schedule);
            assert!(
                (res.utility - omega).abs() < 1e-9,
                "{} on {}: {} vs {}",
                kind.name(),
                dataset.name(),
                res.utility,
                omega
            );
        }
    }
}

/// Determinism: every scheduler is reproducible run-to-run (same seed for
/// RAND), which is what makes the whole experiment suite reproducible.
#[test]
fn schedulers_are_deterministic() {
    let inst = Dataset::Concerts.build(USERS, 60, 8, 0xD7);
    for kind in SchedulerKind::paper_lineup() {
        let a = kind.run(&inst, 10);
        let b = kind.run(&inst, 10);
        assert_eq!(a.schedule, b.schedule, "{}", kind.name());
        assert_eq!(a.stats, b.stats, "{} stats drifted", kind.name());
    }
}

/// Regression pin for the EXPERIMENTS.md §4.2.8 open item: at laptop scale
/// HOR's horizontal policy costs real utility versus INC (measured ratio
/// 0.9121 on this seeded 400-user Unf instance — far from the paper's
/// 0.008% mean gap at 100K users). Until that investigation lands, this
/// test freezes the gap: HOR must stay within the recorded ratio of INC,
/// and must never exceed it (INC is exact greedy). If this fails after an
/// algorithm change, the known quality gap has silently widened — do not
/// loosen the floor without updating the EXPERIMENTS.md open item.
#[test]
fn hor_quality_gap_does_not_widen() {
    let inst = Dataset::Unf.build(400, 100, 30, 0x5E5);
    let k = 20;
    let inc = SchedulerKind::Inc.run(&inst, k);
    let hor = SchedulerKind::Hor.run(&inst, k);
    let ratio = hor.utility / inc.utility;
    assert!(ratio <= 1.0 + 1e-9, "HOR beat exact greedy: ratio {ratio:.6}");
    assert!(
        ratio >= 0.90,
        "HOR/INC utility ratio {ratio:.6} fell below the recorded 0.9121 floor \
         (the §4.2.8 quality gap widened)"
    );
}

/// Utility monotonicity in k: asking for more events never lowers the
/// greedy utility (each added assignment has non-negative marginal gain).
#[test]
fn utility_monotone_in_k() {
    let inst = Dataset::Zip.build(USERS, 60, 10, 0x111);
    let mut last = 0.0;
    for k in [2usize, 5, 10, 20, 40] {
        let res = SchedulerKind::Alg.run(&inst, k);
        assert!(
            res.utility >= last - 1e-9,
            "utility dropped going to k = {k}: {last} -> {}",
            res.utility
        );
        last = res.utility;
    }
}
