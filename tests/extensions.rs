//! End-to-end tests of the §2.1 extensions ("trivial modifications" per the
//! paper) through the full algorithm stack: event durations, user weights,
//! and the profit-oriented objective.

use social_event_scheduling::algorithms::prelude::*;
use social_event_scheduling::core::model::running_example;
use social_event_scheduling::core::scoring::utility::{total_profit, total_utility};
use social_event_scheduling::datasets::Dataset;
use social_event_scheduling::{EventId, IntervalId};

/// Durations: a 2-slot headliner must occupy consecutive slots everywhere it
/// is scheduled, every algorithm keeps Prop-3/6 equivalence, and scores stay
/// consistent with the evaluator.
#[test]
fn durations_through_all_algorithms() {
    let mut inst = Dataset::Zip.build(80, 30, 6, 0xD0);
    inst.events[0].duration = 2; // headliner spans two slots
    inst.events[1].duration = 3;

    for k in [3usize, 6, 12] {
        let alg = Alg.run(&inst, k);
        let inc = Inc.run(&inst, k);
        let lazy = LazyGreedy.run(&inst, k);
        let hor = Hor.run(&inst, k);
        let hor_i = HorI.run(&inst, k);

        assert_eq!(alg.schedule.assignments(), inc.schedule.assignments(), "k={k}");
        assert_eq!(alg.schedule.assignments(), lazy.schedule.assignments(), "k={k}");
        assert_eq!(hor.schedule.assignments(), hor_i.schedule.assignments(), "k={k}");

        for res in [&alg, &hor] {
            assert!(res.schedule.verify_feasible(&inst).is_ok());
            let omega = total_utility(&inst, &res.schedule);
            assert!((res.utility - omega).abs() < 1e-9, "{} k={k}", res.algorithm);
            // Spanning events occupy every slot of their span.
            for &(e, d) in &[(0usize, 2usize), (1, 3)] {
                if let Some(t) = res.schedule.interval_of(EventId::new(e)) {
                    assert!(t.index() + d <= inst.num_intervals(), "span off calendar");
                    for ti in t.index()..t.index() + d {
                        assert!(
                            res.schedule.events_at(IntervalId::new(ti)).contains(&EventId::new(e)),
                            "event {e} missing from spanned slot {ti}"
                        );
                    }
                }
            }
        }
    }
}

/// A duration longer than the calendar makes the event unschedulable without
/// breaking anything else.
#[test]
fn oversized_duration_is_just_skipped() {
    let mut inst = running_example();
    inst.events[3].duration = 5; // only 2 intervals exist
    let res = Alg.run(&inst, 4);
    assert!(!res.schedule.is_scheduled(EventId::new(3)));
    assert_eq!(res.schedule.len(), 3); // the other three still fit
    assert!(res.schedule.verify_feasible(&inst).is_ok());
}

/// User weights: boosting a user's weight pulls the schedule toward the
/// events that user likes.
#[test]
fn weights_steer_the_schedule() {
    let inst = running_example();
    // Baseline with k = 2: e4@t2 and e1@t1 (highest scores).
    let base = Alg.run(&inst, 2);
    assert!(base.schedule.is_scheduled(EventId::new(0)));

    // Make user u2 (who loves e2 with 0.6 but e1 with only 0.2) dominate.
    let mut weighted = inst.clone();
    weighted.user_weights = Some(vec![0.1, 10.0]);
    let steered = Alg.run(&weighted, 2);
    assert!(
        steered.schedule.is_scheduled(EventId::new(1)),
        "u2's weight should drag e2 into the schedule: {:?}",
        steered.schedule.assignments()
    );
}

/// Profit objective interacts with durations and weights: the full extension
/// stack composes.
#[test]
fn profit_composes_with_other_extensions() {
    let mut inst = Dataset::Concerts.build(60, 20, 5, 0xF00D);
    inst.user_weights = Some(vec![1.0; 60]);
    inst.events[2].duration = 2;
    for e in &mut inst.events {
        e.cost = 0.5;
    }
    let res =
        ProfitGreedy { revenue_per_attendee: 1.0, stop_when_unprofitable: true }.run(&inst, 8);
    assert!(res.schedule.verify_feasible(&inst).is_ok());
    let profit = total_profit(&inst, &res.schedule, 1.0);
    // Every selected event cleared its marginal cost at selection time, so
    // total profit is positive (margins only shrink via later co-selections
    // in *other* intervals, which don't affect these).
    assert!(profit > 0.0, "profit {profit}");
}

/// Local search respects durations: refined schedules stay feasible and not
/// worse.
#[test]
fn refinement_respects_durations() {
    let mut inst = Dataset::Unf.build(60, 24, 6, 0xD2);
    inst.events[0].duration = 2;
    inst.events[5].duration = 2;
    let base = Hor.run(&inst, 8);
    let mut schedule = base.schedule.clone();
    let (gain, _) = LocalSearch::default().refine(&inst, &mut schedule);
    assert!(gain >= -1e-9);
    assert!(schedule.verify_feasible(&inst).is_ok());
    assert!(total_utility(&inst, &schedule) >= base.utility - 1e-9);
}
