//! Golden snapshot of one seeded `stream` run: the per-op trace of a
//! 40-op churn stream — op kinds, shapes, repair work, schedules, and
//! utilities — is byte-compared against a committed golden file. The
//! trace excludes wall-clock, so it is fully deterministic; CI's
//! `SES_THREADS` matrix makes the same bytes double as a differential
//! proof that thread count changes nothing in the repair path.
//!
//! To regenerate after an intentional change:
//! `UPDATE_GOLDEN=1 cargo test --test golden_stream` — then commit the
//! rewritten `tests/golden/stream_smoke.txt` and re-run without the
//! variable.

use social_event_scheduling::algorithms::stream::StreamScheduler;
use social_event_scheduling::core::parallel::Threads;
use social_event_scheduling::datasets::ops::{self, OpStreamParams};
use social_event_scheduling::datasets::Dataset;
use std::fmt::Write as _;

const GOLDEN: &str = include_str!("golden/stream_smoke.txt");

fn render_run() -> String {
    let base = Dataset::Unf.build(60, 16, 5, 0xD15);
    let params =
        OpStreamParams::default().with_ops(40).with_churn(0.5).with_user_churn(0.4).with_seed(7);
    let stream_ops = ops::generate(&base, &params);
    // Threads::default() resolves SES_THREADS: under CI's thread matrix the
    // identical golden bytes prove the repair path is thread-invariant.
    let mut stream = StreamScheduler::new(base, 6, Threads::default());
    let mut out = String::new();
    let mut line = |tag: &str, s: &StreamScheduler| {
        let rep = s.last_repair();
        let sched: Vec<String> = s
            .schedule()
            .assignments()
            .iter()
            .map(|a| format!("{}@{}", a.event, a.interval))
            .collect();
        let _ = writeln!(
            out,
            "{tag:<14} |E|={:<3} |U|={:<3} rescored={:<3} scores={:<5} updates={:<4} \
             examined={:<5} utility={:.12} S=[{}]",
            s.instance().num_events(),
            s.instance().num_users(),
            rep.rescored,
            rep.stats.score_computations,
            rep.stats.score_updates,
            rep.stats.assignments_examined,
            s.utility(),
            sched.join(" "),
        );
    };
    line("cold", &stream);
    for op in &stream_ops {
        stream.apply(op).expect("generated ops are valid");
        line(op.kind(), &stream);
    }
    out
}

fn maybe_update(path: &str, content: &str) -> bool {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let full = format!("{}/tests/{path}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&full, content).expect("write golden file");
        eprintln!("rewrote {full}");
        true
    } else {
        false
    }
}

#[test]
fn stream_trace_matches_golden() {
    let trace = render_run();
    if maybe_update("golden/stream_smoke.txt", &trace) {
        return;
    }
    assert_eq!(
        trace, GOLDEN,
        "seeded stream trace drifted from tests/golden/stream_smoke.txt \
         (UPDATE_GOLDEN=1 regenerates if the change is intentional)"
    );
}
