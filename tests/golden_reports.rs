//! Golden-file snapshots of `ses-experiments` report rendering, and the
//! proof that **runner parallelism never reorders or perturbs a report**:
//! the CSV/JSON of a seeded smoke-scale Figure-5 run is byte-compared
//! against a committed golden file, and the same run at fan-out widths 4
//! and 8 must render byte-identically to the sequential one.
//!
//! Wall-clock is the single nondeterministic column, so `time_ms` is
//! zeroed before rendering; everything else (row order, utilities down to
//! their printed digits, counters, shapes) is pinned.
//!
//! To regenerate after an intentional change:
//! `UPDATE_GOLDEN=1 cargo test --test golden_reports` — then commit the
//! rewritten files under `tests/golden/` and re-run without the variable.

use social_event_scheduling::experiments::figures::fig5;
use social_event_scheduling::experiments::{ExperimentConfig, FigureReport};

const GOLDEN_CSV: &str = include_str!("golden/fig5_smoke.csv");
const GOLDEN_JSON: &str = include_str!("golden/fig5_smoke.json");

/// The pinned run: smoke scale (60 users, dimensions at one tenth), the
/// default experiment seed, `threads` sweep-row fan-out.
fn fig5_smoke(threads: usize) -> FigureReport {
    let config = ExperimentConfig::smoke().with_threads(threads);
    let mut report = fig5::run(&config);
    for r in &mut report.records {
        r.time_ms = 0.0;
    }
    report
}

fn maybe_update(path: &str, content: &str) -> bool {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let full = format!("{}/tests/{path}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&full, content).expect("write golden file");
        eprintln!("rewrote {full}");
        true
    } else {
        false
    }
}

#[test]
fn fig5_csv_matches_golden() {
    let csv = fig5_smoke(1).to_csv();
    if maybe_update("golden/fig5_smoke.csv", &csv) {
        return;
    }
    assert_eq!(
        csv, GOLDEN_CSV,
        "fig5 smoke CSV drifted from tests/golden/fig5_smoke.csv \
         (UPDATE_GOLDEN=1 regenerates if the change is intentional)"
    );
}

#[test]
fn fig5_json_matches_golden() {
    let json = fig5_smoke(1).to_json();
    if maybe_update("golden/fig5_smoke.json", &json) {
        return;
    }
    assert_eq!(
        json, GOLDEN_JSON,
        "fig5 smoke JSON drifted from tests/golden/fig5_smoke.json \
         (UPDATE_GOLDEN=1 regenerates if the change is intentional)"
    );
}

/// Parallel sweeps must emit byte-identical reports: same rows, same
/// order, same rendered digits — at every fan-out width.
#[test]
fn parallel_sweep_renders_byte_identical_reports() {
    let seq = fig5_smoke(1);
    for width in [4usize, 8] {
        let par = fig5_smoke(width);
        assert_eq!(seq.to_csv(), par.to_csv(), "CSV differs at fan-out {width}");
        assert_eq!(seq.to_json(), par.to_json(), "JSON differs at fan-out {width}");
        assert_eq!(seq.render(), par.render(), "text tables differ at fan-out {width}");
    }
}
