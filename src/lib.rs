//! # social-event-scheduling — facade crate
//!
//! One-stop re-export of the SES reproduction workspace:
//!
//! * [`core`](ses_core) — problem model, schedules, scoring (Eq. 1–4);
//! * [`algorithms`](ses_algorithms) — ALG, INC, HOR, HOR-I, TOP, RAND, exact;
//! * [`datasets`](ses_datasets) — synthetic + simulated Meetup/Concerts
//!   generators over the paper's Table-1 parameter space;
//! * [`experiments`](ses_experiments) — harness regenerating every figure.
//!
//! The embeddable entry point is [`SesService`] (also served over stdio by
//! `ses serve`): a long-lived session owning a live instance, the
//! scheduler registry, and all warm state, answering the typed
//! [`Request`]/[`Response`] protocol.
//!
//! See `examples/quickstart.rs` for a guided tour, and DESIGN.md /
//! EXPERIMENTS.md at the repository root for the system inventory and the
//! paper-vs-measured record.

#![warn(missing_docs)]

pub use ses_algorithms as algorithms;
pub use ses_core as core;
pub use ses_datasets as datasets;
pub use ses_experiments as experiments;

pub use ses_algorithms::prelude::*;
pub use ses_core::{
    Assignment, EventId, Instance, IntervalId, LocationId, Schedule, ServiceError, Stats,
};
