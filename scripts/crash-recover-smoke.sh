#!/usr/bin/env bash
# crash-recover-smoke.sh — kill-and-recover smoke for `ses serve --state-dir`.
#
# Drives the committed durable request script against a fresh state
# directory, SIGKILLs the server mid-transcript (after its responses for
# the first half have been flushed), restarts it on the same directory,
# feeds the remaining requests, and byte-compares the stitched response
# log against the committed uninterrupted golden. Any divergence — a lost
# acknowledged mutation, a replayed duplicate, a silent fresh start — is a
# diff failure.
#
# Usage: scripts/crash-recover-smoke.sh [path-to-ses-binary]
# (defaults to target/release/ses; run `cargo build --release -p ses-cli`
# first). Honors SES_THREADS like every other entry point.
set -euo pipefail

SES="${1:-target/release/ses}"
SCRIPT="scripts/serve-durable-smoke.jsonl"
GOLDEN="tests/golden/serve_durable.jsonl"
SHAPE=(--dataset unf --users 40 --events 12 --intervals 6 --seed 1509)

WORK="$(mktemp -d)"
STATE="$WORK/state"
trap 'kill -9 "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Split the transcript at a request boundary past the first Persist, so
# the kill exercises snapshot + WAL-tail recovery, not just the WAL.
grep -v '^\s*#' "$SCRIPT" | grep -v '^\s*$' > "$WORK/requests.jsonl"
TOTAL=$(wc -l < "$WORK/requests.jsonl")
CUT=$((TOTAL / 2))
head -n "$CUT" "$WORK/requests.jsonl" > "$WORK/part1.jsonl"
tail -n +"$((CUT + 1))" "$WORK/requests.jsonl" > "$WORK/part2.jsonl"

# Phase 1: serve from a FIFO so stdin stays open after part1 is written —
# the server must die from SIGKILL, not a clean EOF.
mkfifo "$WORK/in"
"$SES" serve "${SHAPE[@]}" --state-dir "$STATE" \
  < "$WORK/in" > "$WORK/out1.jsonl" 2> "$WORK/serve1.log" &
SERVE_PID=$!
disown "$SERVE_PID" 2>/dev/null || true
exec 3> "$WORK/in"
cat "$WORK/part1.jsonl" >&3

# Wait until every part-1 request is answered (responses are flushed per
# line), then kill without ceremony.
for _ in $(seq 1 600); do
  [ "$(wc -l < "$WORK/out1.jsonl")" -ge "$CUT" ] && break
  sleep 0.1
done
[ "$(wc -l < "$WORK/out1.jsonl")" -ge "$CUT" ] || {
  echo "crash-recover-smoke: server answered $(wc -l < "$WORK/out1.jsonl")/$CUT before timeout" >&2
  exit 1
}
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
exec 3>&-

# Phase 2: restart on the same state directory; recovery must pick up
# exactly where the acknowledged transcript left off.
"$SES" serve "${SHAPE[@]}" --state-dir "$STATE" \
  < "$WORK/part2.jsonl" > "$WORK/out2.jsonl" 2> "$WORK/serve2.log"
grep -q "recovered generation" "$WORK/serve2.log" || {
  echo "crash-recover-smoke: restart did not report a recovery" >&2
  cat "$WORK/serve2.log" >&2
  exit 1
}

# The stitched transcript must be byte-identical to the uninterrupted run.
cat "$WORK/out1.jsonl" "$WORK/out2.jsonl" | diff - "$GOLDEN" || {
  echo "crash-recover-smoke: stitched transcript diverged from $GOLDEN" >&2
  exit 1
}
echo "crash-recover-smoke: OK (killed after $CUT/$TOTAL requests, recovery byte-identical)"
