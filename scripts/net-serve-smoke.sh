#!/usr/bin/env bash
# net-serve-smoke.sh — TCP multi-session smoke for `ses serve --listen`.
#
# Boots one durable server on an ephemeral port and proves the three
# wire-level contracts the network layer makes, end to end:
#
#   1. Transcript fidelity under concurrency: three clients connect at
#      once — one speaks the committed stdio request script verbatim
#      (routing to the `default` session), two open their own named
#      sessions and replay the same script session-addressed. Every
#      client's response log must be byte-identical to the committed
#      stdio golden (responses never echo the session key, so one golden
#      covers all three).
#   2. Session multiplexing: the named sessions are opened over the wire
#      (OpenSession) and answer independently on the same process.
#   3. Crash durability per session: a mutation is acknowledged on a
#      named durable session, the server is SIGKILLed, and a restart on
#      the same state dir must recover that session by name and answer a
#      Snapshot with bytes identical to the pre-kill answer.
#
# Clients are plain bash /dev/tcp — no netcat dependency. One response
# line arrives per request line, so each client reads exactly as many
# lines as it wrote.
#
# Usage: scripts/net-serve-smoke.sh [path-to-ses-binary]
# (defaults to target/release/ses; run `cargo build --release -p ses-cli`
# first). Honors SES_THREADS like every other entry point.
set -euo pipefail

SES="${1:-target/release/ses}"
SCRIPT="scripts/serve-smoke.jsonl"
GOLDEN="tests/golden/serve_smoke.jsonl"
SHAPE=(--dataset unf --users 40 --events 12 --intervals 6 --seed 1509)

WORK="$(mktemp -d)"
STATE="$WORK/state"
SERVE_PID=""
trap 'kill -9 "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

grep -v '^\s*#' "$SCRIPT" | grep -v '^\s*$' > "$WORK/requests.jsonl"
NREQ=$(wc -l < "$WORK/requests.jsonl")

# Boots the server with stderr to $1, parses the ephemeral port off the
# "listening on" banner into $PORT.
start_server() {
  "$SES" serve "${SHAPE[@]}" --state-dir "$STATE" --listen 127.0.0.1:0 \
    > /dev/null 2> "$1" &
  SERVE_PID=$!
  disown "$SERVE_PID" 2>/dev/null || true
  PORT=""
  for _ in $(seq 1 300); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$1")"
    [ -n "$PORT" ] && return 0
    sleep 0.1
  done
  echo "net-serve-smoke: server did not print its listening banner" >&2
  cat "$1" >&2
  exit 1
}

# client NAME OUT — one TCP connection: if NAME is non-empty, opens that
# session and replays the request script session-addressed; if empty,
# replays it verbatim (default-session routing). Writes the responses to
# OUT — for named sessions, minus the leading SessionOpened ack (checked
# here instead), so OUT always diffs against the stdio golden.
client() {
  local session="$1" out="$2" fd
  exec {fd}<>"/dev/tcp/127.0.0.1/$PORT"
  if [ -n "$session" ]; then
    printf '{"v":1,"req":{"OpenSession":{"session":"%s"}}}\n' "$session" >&"$fd"
    sed "s/^{\"v\":1,/{\"v\":1,\"session\":\"$session\",/" \
      "$WORK/requests.jsonl" >&"$fd"
    IFS= read -r ack <&"$fd"
    case "$ack" in
      *SessionOpened*) ;;
      *) echo "net-serve-smoke: [$session] OpenSession answered: $ack" >&2
         exit 1 ;;
    esac
  else
    cat "$WORK/requests.jsonl" >&"$fd"
  fi
  head -n "$NREQ" <&"$fd" > "$out"
  exec {fd}>&-
}

echo "net-serve-smoke: booting durable server on an ephemeral port"
start_server "$WORK/serve1.log"

# --- 1+2: three concurrent clients, one golden ------------------------
client ""   "$WORK/out-default.jsonl" &
C1=$!
client "s1" "$WORK/out-s1.jsonl" &
C2=$!
client "s2" "$WORK/out-s2.jsonl" &
C3=$!
wait "$C1" "$C2" "$C3"

for name in default s1 s2; do
  diff "$WORK/out-$name.jsonl" "$GOLDEN" || {
    echo "net-serve-smoke: [$name] transcript diverged from $GOLDEN" >&2
    exit 1
  }
done
echo "net-serve-smoke: 3 concurrent clients byte-identical to the stdio golden"

# --- 3: SIGKILL + named-session recovery ------------------------------
# Acknowledge a mutation on a fresh durable session, capture its
# Snapshot bytes, then pull the plug.
exec {fd}<>"/dev/tcp/127.0.0.1/$PORT"
{
  printf '{"v":1,"req":{"OpenSession":{"session":"crash"}}}\n'
  printf '{"v":1,"session":"crash","req":{"Schedule":{"algorithm":"INC","k":4}}}\n'
  printf '{"v":1,"session":"crash","req":"Snapshot"}\n'
} >&"$fd"
head -n 3 <&"$fd" > "$WORK/crash-pre.jsonl"
exec {fd}>&-
grep -q SessionOpened "$WORK/crash-pre.jsonl" || {
  echo "net-serve-smoke: crash session did not open" >&2
  exit 1
}
tail -n 1 "$WORK/crash-pre.jsonl" > "$WORK/snap-pre.jsonl"

kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

start_server "$WORK/serve2.log"
grep -q '\[session:crash\].*recovered generation' "$WORK/serve2.log" || {
  echo "net-serve-smoke: restart did not recover session 'crash'" >&2
  cat "$WORK/serve2.log" >&2
  exit 1
}

exec {fd}<>"/dev/tcp/127.0.0.1/$PORT"
printf '{"v":1,"session":"crash","req":"Snapshot"}\n' >&"$fd"
head -n 1 <&"$fd" > "$WORK/snap-post.jsonl"
exec {fd}>&-
diff "$WORK/snap-pre.jsonl" "$WORK/snap-post.jsonl" || {
  echo "net-serve-smoke: recovered snapshot diverged from the acknowledged pre-kill state" >&2
  exit 1
}

kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "net-serve-smoke: OK ($NREQ requests x 3 concurrent clients; SIGKILL + by-name recovery byte-identical)"
