#!/usr/bin/env bash
# Record (or check) the benchmark trajectory in BENCH_BASELINE.json.
#
#   scripts/bench-baseline.sh --label "post-kernel-fusion"
#   scripts/bench-baseline.sh --targets micro_scoring --check 2.0
#   scripts/bench-baseline.sh --targets windowed_stream --label "windowed ops/sec"
#   scripts/bench-baseline.sh --targets scale_100k,scale_1m --label "scale axis"
#
# Thin wrapper around `ses bench-baseline` (crates/ses-cli); all flags are
# forwarded. Run from the repository root so the baseline file and the
# bench targets resolve. The default target set is all fourteen bench
# targets; note scale_100k/scale_1m build 100k- and 1M-user instances and
# take minutes, so CI's perf-smoke gate lists its targets explicitly
# (micro_scoring,windowed_stream,scale_100k) instead of using the default.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -p ses-cli -- bench-baseline "$@"
