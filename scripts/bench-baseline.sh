#!/usr/bin/env bash
# Record (or check) the benchmark trajectory in BENCH_BASELINE.json.
#
#   scripts/bench-baseline.sh --label "post-kernel-fusion"
#   scripts/bench-baseline.sh --targets micro_scoring --check 2.0
#   scripts/bench-baseline.sh --targets windowed_stream --label "windowed ops/sec"
#
# Thin wrapper around `ses bench-baseline` (crates/ses-cli); all flags are
# forwarded. Run from the repository root so the baseline file and the
# bench targets resolve.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -p ses-cli -- bench-baseline "$@"
