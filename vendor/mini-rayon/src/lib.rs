//! Offline stand-in for the `rayon` crate's fork–join core.
//!
//! Real rayon is a work-stealing deque scheduler; this stand-in keeps only
//! the subset the workspace needs — a **fixed-size pool** of persistent
//! workers executing one *chunked job* at a time:
//!
//! * [`ThreadPool::run`] — fork–join over `n_chunks` indexed chunks. The
//!   calling thread participates, workers claim chunk indices from a shared
//!   atomic counter, and the call returns only when every chunk has run
//!   (rayon's `scope` + `par_iter` collapsed into one primitive).
//! * [`ThreadPool::for_each_chunk_mut`] — rayon's `par_chunks_mut`: apply a
//!   function to disjoint `&mut [T]` windows of a slice, one window per
//!   chunk index.
//! * [`pool`] — process-wide pools cached per thread count, so repeated
//!   parallel sections reuse warm workers instead of spawning threads.
//!
//! **Determinism contract.** The pool assigns *which thread* runs a chunk
//! nondeterministically, but chunk boundaries and indices are fixed by the
//! caller — callers that make each chunk's result independent of its
//! executing thread (as the `ses-core` scoring engine does with its
//! fixed-block reductions) get bit-identical results for every pool size.
//!
//! **Nesting is not supported**: calling [`ThreadPool::run`] on a pool from
//! inside one of that pool's own chunks would deadlock on the job lock, as
//! would any cyclic wait between pools. Callers keep one level of
//! parallelism at a time (see DESIGN.md §7).
//!
//! Panics inside a chunk are caught, the remaining chunks still run, and
//! the join point re-raises a summary panic on the calling thread — the
//! same observable behaviour as rayon's panic propagation.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Locks ignoring poison: a panicking chunk must not brick the pool, and
/// every protocol invariant is maintained by atomics, not by the absence of
/// unwinds while a lock is held.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `Condvar::wait` ignoring poison (see [`lock`]).
fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Number of hardware threads available to this process (1 if detection
/// fails) — the default pool size, mirroring `rayon`'s.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The job closure with its borrow lifetime erased.
///
/// Soundness rests on the join protocol: [`ThreadPool::run`] does not
/// return before `pending` hits zero, every dereference of this pointer is
/// bracketed by a successful chunk claim and the matching `pending`
/// decrement, and workers that lose the claim race never dereference it.
#[derive(Clone, Copy)]
struct JobFn(*const (dyn Fn(usize) + Sync + 'static));

// The pointee is `Sync` (shared, never mutated); the pointer only crosses
// threads under the claim/join protocol documented on `JobFn`.
unsafe impl Send for JobFn {}
unsafe impl Sync for JobFn {}

/// Per-job control block. Owning it through an `Arc` lets a worker that
/// wakes up late drain the (already exhausted) claim counter of an old job
/// without ever touching a newer job's state.
struct JobCtl {
    func: JobFn,
    n_chunks: usize,
    /// Next unclaimed chunk index; grows past `n_chunks`, never resets.
    next: AtomicUsize,
    /// Chunks claimed or unclaimed but not yet finished.
    pending: AtomicUsize,
    /// Set when any chunk panicked; re-raised at the join point.
    panicked: AtomicBool,
}

struct PoolState {
    /// Bumped once per published job so sleeping workers can tell a new job
    /// from a spurious wakeup.
    epoch: u64,
    job: Option<Arc<JobCtl>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers sleep here between jobs.
    work_cv: Condvar,
    /// The caller sleeps here waiting for the join point.
    done_cv: Condvar,
}

/// A fixed-size fork–join pool: `threads - 1` persistent workers plus the
/// calling thread. `ThreadPool::new(1)` has no workers and runs everything
/// inline, so "sequential" needs no special casing at call sites.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes jobs: one chunked job at a time per pool. Concurrent
    /// callers queue here rather than interleaving claim counters.
    job_lock: Mutex<()>,
    threads: usize,
}

impl ThreadPool {
    /// Builds a pool of `threads` total participants (minimum 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState { epoch: 0, job: None, shutdown: false }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        Self { shared, workers, job_lock: Mutex::new(()), threads }
    }

    /// Total participants (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0)`, `f(1)`, …, `f(n_chunks - 1)` across the pool and
    /// returns once **all** chunks have finished (fork–join). The calling
    /// thread claims chunks alongside the workers.
    ///
    /// # Panics
    /// Re-raises on the calling thread if any chunk panicked.
    pub fn run<F>(&self, n_chunks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n_chunks == 0 {
            return;
        }
        if self.workers.is_empty() || n_chunks == 1 {
            for i in 0..n_chunks {
                f(i);
            }
            return;
        }
        let _serial = lock(&self.job_lock);

        // Erase the closure's borrow lifetime for storage in the shared
        // job slot. Safety: this function only returns after `pending`
        // reaches zero, i.e. after the last dereference of the pointer.
        let func_ref: &(dyn Fn(usize) + Sync) = &f;
        let func = JobFn(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                func_ref,
            )
        });
        let ctl = Arc::new(JobCtl {
            func,
            n_chunks,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(n_chunks),
            panicked: AtomicBool::new(false),
        });

        {
            let mut st = lock(&self.shared.state);
            st.epoch += 1;
            st.job = Some(Arc::clone(&ctl));
            self.shared.work_cv.notify_all();
        }

        // The caller is a full participant.
        execute_chunks(&ctl, &self.shared);

        // Join: wait until workers finish the chunks they claimed.
        {
            let mut st = lock(&self.shared.state);
            while ctl.pending.load(Ordering::Acquire) > 0 {
                st = wait(&self.shared.done_cv, st);
            }
            st.job = None;
        }

        if ctl.panicked.load(Ordering::Acquire) {
            panic!("mini-rayon: a parallel chunk panicked (see worker output above)");
        }
    }

    /// rayon's `par_chunks_mut`: splits `data` into consecutive windows of
    /// `chunk_size` elements (the last may be shorter) and runs
    /// `f(chunk_index, window)` for each across the pool.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`, or re-raises a chunk panic.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        if data.is_empty() {
            return;
        }
        let len = data.len();
        let n_chunks = len.div_ceil(chunk_size);
        let base = SendPtr(data.as_mut_ptr());
        let f = &f;
        self.run(n_chunks, move |i| {
            // Capture the whole `SendPtr` wrapper (2021 closures would
            // otherwise capture the bare `*mut T` field, which is !Sync).
            let base = base;
            let start = i * chunk_size;
            let end = (start + chunk_size).min(len);
            // Safety: windows [start, end) are pairwise disjoint across
            // chunk indices, each index runs exactly once, and `data`
            // outlives `run` (which joins before returning). `base` is
            // captured by value (the closure is `move`) so only the Send +
            // Sync wrapper crosses threads, never a `&*mut T`.
            let window = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
            f(i, window);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish()
    }
}

/// Raw base pointer of a slice being chunked; `Send + Sync` because each
/// chunk index derives a disjoint window from it exactly once. `Copy` is
/// implemented manually so it holds for every `T` (derives would demand
/// `T: Copy`).
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let ctl = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if let Some(ctl) = &st.job {
                        break Arc::clone(ctl);
                    }
                    // Epoch advanced but the job already completed — a
                    // very late wakeup. Keep waiting for the next one.
                }
                st = wait(&shared.work_cv, st);
            }
        };
        execute_chunks(&ctl, shared);
    }
}

/// Claims and runs chunks until the claim counter is exhausted. Shared by
/// workers and the calling thread.
fn execute_chunks(ctl: &JobCtl, shared: &Shared) {
    loop {
        let i = ctl.next.fetch_add(1, Ordering::AcqRel);
        if i >= ctl.n_chunks {
            break;
        }
        // Safety: we hold the claim on chunk `i`; the join point cannot
        // pass until the decrement below, so the closure is still alive.
        let f = unsafe { &*ctl.func.0 };
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            ctl.panicked.store(true, Ordering::Release);
        }
        if ctl.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last chunk finished. Taking the state lock before notifying
            // guarantees the caller is either before its `pending` check or
            // parked in `done_cv` — both observe completion.
            drop(lock(&shared.state));
            shared.done_cv.notify_all();
        }
    }
}

/// Process-wide pools, cached per thread count (pool sizes in practice are
/// a handful of distinct values: 1, 2, 4, 8, the machine width).
static POOLS: OnceLock<Mutex<BTreeMap<usize, Arc<ThreadPool>>>> = OnceLock::new();

/// A process-wide pool with `threads` participants (`0` = machine width),
/// created on first use and kept warm for the life of the process.
pub fn pool(threads: usize) -> Arc<ThreadPool> {
    let threads = if threads == 0 { available_parallelism() } else { threads };
    let registry = POOLS.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut registry = lock(registry);
    Arc::clone(registry.entry(threads).or_insert_with(|| Arc::new(ThreadPool::new(threads))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_covers_every_chunk_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i}");
        }
    }

    #[test]
    fn run_joins_before_returning() {
        let pool = ThreadPool::new(3);
        let sum = AtomicU64::new(0);
        pool.run(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = ThreadPool::new(2);
        for round in 0..50 {
            let count = AtomicUsize::new(0);
            pool.run(8, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 8, "round {round}");
        }
    }

    #[test]
    fn for_each_chunk_mut_writes_disjoint_windows() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 103];
        pool.for_each_chunk_mut(&mut data, 10, |i, window| {
            for x in window.iter_mut() {
                *x = i + 1;
            }
        });
        for (pos, &x) in data.iter().enumerate() {
            assert_eq!(x, pos / 10 + 1, "position {pos}");
        }
        // Last window is the 3-element remainder.
        assert_eq!(data[100..].iter().filter(|&&x| x == 11).count(), 3);
    }

    #[test]
    fn single_thread_pool_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let order = Mutex::new(Vec::new());
        pool.run(5, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_chunks_is_a_no_op() {
        let pool = ThreadPool::new(2);
        pool.run(0, |_| panic!("must not run"));
        pool.for_each_chunk_mut::<u8, _>(&mut [], 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn chunk_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "the join point must re-raise the chunk panic");
        // The pool still works afterwards.
        let count = AtomicUsize::new(0);
        pool.run(4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn cached_pools_are_shared_per_size() {
        let a = pool(2);
        let b = pool(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool(0).threads(), available_parallelism());
    }

    #[test]
    fn concurrent_callers_serialize_without_deadlock() {
        let pool = Arc::new(ThreadPool::new(3));
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (p, t) = (Arc::clone(&pool), Arc::clone(&total));
                std::thread::spawn(move || {
                    p.run(32, |i| {
                        t.fetch_add(i as u64, Ordering::Relaxed);
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * (31 * 32 / 2));
    }
}
