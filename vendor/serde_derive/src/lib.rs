//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace uses, by hand-parsing the input token stream
//! (neither `syn` nor `quote` is available offline):
//!
//! * structs with named fields, honouring `#[serde(default)]`,
//!   `#[serde(default = "path")]` and `#[serde(skip_serializing_if = "path")]`;
//! * tuple structs, including `#[serde(transparent)]` newtypes;
//! * enums with unit, newtype-tuple and struct variants, using serde's
//!   externally-tagged representation (`"Variant"`,
//!   `{"Variant": value}`, `{"Variant": {fields...}}`).
//!
//! Generics are intentionally unsupported — no serialized type in the
//! workspace is generic, and rejecting them loudly beats silently emitting
//! broken impls.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour; see the vendored crate).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` (value-tree flavour; see the vendored crate).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    match Input::parse(input) {
        Ok(parsed) => {
            let code = if ser { parsed.gen_serialize() } else { parsed.gen_deserialize() };
            code.parse().expect("serde_derive generated invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct FieldAttrs {
    /// `None`: field required. `Some(None)`: `Default::default()`.
    /// `Some(Some(path))`: call `path()`.
    default: Option<Option<String>>,
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    transparent: bool,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

/// Scans one `#[...]` attribute group; records serde attrs into `attrs` and
/// `transparent`, and reports unsupported serde keys into `errors` (silently
/// dropping e.g. `rename` would emit wrong serialization with no diagnostic).
fn absorb_attr(
    group: &proc_macro::Group,
    attrs: &mut FieldAttrs,
    transparent: &mut bool,
    errors: &mut Vec<String>,
) {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = it.next() else { return };
    // Parse `key`, `key = "value"` pairs separated by commas.
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let TokenTree::Ident(key) = &toks[i] else {
            i += 1;
            continue;
        };
        let key = key.to_string();
        let mut value = None;
        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
            (toks.get(i + 1), toks.get(i + 2))
        {
            if eq.as_char() == '=' {
                let raw = lit.to_string();
                value = Some(raw.trim_matches('"').to_string());
                i += 2;
            }
        }
        match key.as_str() {
            "default" => attrs.default = Some(value),
            "skip_serializing_if" => attrs.skip_serializing_if = value,
            "transparent" => *transparent = true,
            other => errors.push(format!(
                "serde_derive (vendored): unsupported serde attribute `{other}` — supported: default, skip_serializing_if, transparent"
            )),
        }
        i += 1;
        // Skip the comma, if any.
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

/// Splits the tokens of a brace/paren group into comma-separated pieces,
/// treating commas inside `<...>` as part of the piece (token groups do not
/// nest angle brackets, so the depth must be tracked manually).
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut pieces = Vec::new();
    let mut current = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    pieces.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t);
    }
    if !current.is_empty() {
        pieces.push(current);
    }
    pieces
}

/// Parses one named field: `[#[attr]]* [pub[(..)]] name : Type`.
fn parse_field(
    tokens: Vec<TokenTree>,
    transparent: &mut bool,
    errors: &mut Vec<String>,
) -> Option<Field> {
    let mut attrs = FieldAttrs::default();
    let mut it = tokens.into_iter().peekable();
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.next() {
                    absorb_attr(&g, &mut attrs, transparent, errors);
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                // Skip a possible `(crate)`-style restriction.
                if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    it.next();
                }
            }
            Some(TokenTree::Ident(_)) => {
                let TokenTree::Ident(name) = it.next().unwrap() else { unreachable!() };
                return Some(Field { name: name.to_string(), attrs });
            }
            _ => return None,
        }
    }
}

/// Errors on serde keys this derive only honours on fields when they appear
/// at container or variant level (real serde's container-level `default`
/// means "all fields default" — silently dropping it would compile a wrong
/// impl).
fn reject_field_only_keys(attrs: &FieldAttrs, position: &str, errors: &mut Vec<String>) {
    if attrs.default.is_some() {
        errors.push(format!(
            "serde_derive (vendored): `default` is only supported on fields, not at {position} level"
        ));
    }
    if attrs.skip_serializing_if.is_some() {
        errors.push(format!(
            "serde_derive (vendored): `skip_serializing_if` is only supported on fields, not at {position} level"
        ));
    }
}

fn parse_named_fields(
    group: &proc_macro::Group,
    transparent: &mut bool,
    errors: &mut Vec<String>,
) -> Vec<Field> {
    split_top_level(group.stream().into_iter().collect())
        .into_iter()
        .filter_map(|piece| parse_field(piece, transparent, errors))
        .collect()
}

impl Input {
    fn parse(input: TokenStream) -> Result<Input, String> {
        let mut transparent = false;
        let mut errors: Vec<String> = Vec::new();
        let mut it = input.into_iter().peekable();

        // Container prelude: attributes and visibility, then `struct`/`enum`.
        let kind = loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = it.next() {
                        let mut misplaced = FieldAttrs::default();
                        absorb_attr(&g, &mut misplaced, &mut transparent, &mut errors);
                        reject_field_only_keys(&misplaced, "container", &mut errors);
                    }
                }
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s == "struct" || s == "enum" {
                        break s;
                    }
                    // `pub`, `pub(crate)` etc. — skip.
                }
                Some(_) => {}
                None => return Err("serde_derive: no struct/enum found".into()),
            }
        };

        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde_derive: missing type name".into()),
        };

        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return Err(format!("serde_derive (vendored): generic type `{name}` is unsupported"));
        }

        let body = match it.next() {
            Some(TokenTree::Group(g)) => g,
            other => {
                return Err(format!("serde_derive: unexpected token after `{name}`: {other:?}"))
            }
        };

        let shape = if kind == "struct" {
            match body.delimiter() {
                Delimiter::Brace => {
                    Shape::NamedStruct(parse_named_fields(&body, &mut transparent, &mut errors))
                }
                Delimiter::Parenthesis => {
                    Shape::TupleStruct(split_top_level(body.stream().into_iter().collect()).len())
                }
                _ => return Err("serde_derive: unsupported struct body".into()),
            }
        } else {
            let mut variants = Vec::new();
            for piece in split_top_level(body.stream().into_iter().collect()) {
                let mut vit = piece.into_iter().peekable();
                // Inspect attributes on the variant (unsupported serde keys
                // must error rather than be skipped).
                let vname = loop {
                    match vit.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                            if let Some(TokenTree::Group(g)) = vit.next() {
                                let mut misplaced = FieldAttrs::default();
                                absorb_attr(&g, &mut misplaced, &mut transparent, &mut errors);
                                reject_field_only_keys(&misplaced, "variant", &mut errors);
                            }
                        }
                        Some(TokenTree::Ident(id)) => break id.to_string(),
                        Some(_) => {}
                        None => break String::new(),
                    }
                };
                if vname.is_empty() {
                    continue;
                }
                let shape = match vit.next() {
                    None => VariantShape::Unit,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        VariantShape::Tuple(split_top_level(g.stream().into_iter().collect()).len())
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        VariantShape::Struct(parse_named_fields(&g, &mut transparent, &mut errors))
                    }
                    Some(other) => {
                        return Err(format!(
                            "serde_derive: unsupported tokens in variant `{vname}`: {other:?}"
                        ))
                    }
                };
                variants.push(Variant { name: vname, shape });
            }
            Shape::Enum(variants)
        };

        if let Some(e) = errors.into_iter().next() {
            return Err(e);
        }
        Ok(Input { name, transparent, shape })
    }

    // -----------------------------------------------------------------------
    // Code generation
    // -----------------------------------------------------------------------

    fn gen_serialize(&self) -> String {
        let name = &self.name;
        let body = match &self.shape {
            Shape::NamedStruct(fields) => {
                let mut s = String::from(
                    "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    let push = format!(
                        "__obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));",
                        f = f.name
                    );
                    if let Some(pred) = &f.attrs.skip_serializing_if {
                        s.push_str(&format!("if !({pred}(&self.{})) {{ {push} }}\n", f.name));
                    } else {
                        s.push_str(&push);
                        s.push('\n');
                    }
                }
                s.push_str("::serde::Value::Object(__obj)");
                s
            }
            Shape::TupleStruct(1) if self.transparent => {
                "::serde::Serialize::to_value(&self.0)".to_string()
            }
            Shape::TupleStruct(n) => {
                let items: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
            Shape::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            arms.push_str(&format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),\n",
                                binds = binds.join(", ")
                            ));
                        }
                        VariantShape::Struct(fields) => {
                            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                            // Same shape as the named-struct arm: build the
                            // field object incrementally so per-field
                            // `skip_serializing_if` predicates apply here too
                            // (the bindings are already references).
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let push = format!(
                                        "__vobj.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));",
                                        f = f.name
                                    );
                                    match &f.attrs.skip_serializing_if {
                                        Some(pred) => {
                                            format!("if !({pred}({f})) {{ {push} }}", f = f.name)
                                        }
                                        None => push,
                                    }
                                })
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                 let mut __vobj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 {pushes}\n\
                                 ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(__vobj))])\n}},\n",
                                binds = binds.join(", "),
                                pushes = pushes.join("\n")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        };
        format!(
            "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
        )
    }

    fn gen_deserialize(&self) -> String {
        let name = &self.name;
        let body = match &self.shape {
            Shape::NamedStruct(fields) => {
                let inits = named_field_inits(name, fields, "__obj");
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::Error::expected(\"object\", \"{name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{ {inits} }})"
                )
            }
            Shape::TupleStruct(1) if self.transparent => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Shape::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__xs[{i}])?"))
                    .collect();
                format!(
                    "match __v {{\n\
                     ::serde::Value::Array(__xs) if __xs.len() == {n} => \
                     ::std::result::Result::Ok({name}({items})),\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\"array of {n}\", \"{name}\")),\n}}",
                    items = items.join(", ")
                )
            }
            Shape::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut tagged_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        )),
                        VariantShape::Tuple(1) => tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__val)?)),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__xs[{i}])?"))
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{vn}\" => match __val {{\n\
                                 ::serde::Value::Array(__xs) if __xs.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vn}({items})),\n\
                                 _ => ::std::result::Result::Err(::serde::Error::expected(\"array of {n}\", \"{name}::{vn}\")),\n}},\n",
                                items = items.join(", ")
                            ));
                        }
                        VariantShape::Struct(fields) => {
                            let inits =
                                named_field_inits(&format!("{name}::{vn}"), fields, "__fobj");
                            tagged_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let __fobj = __val.as_object().ok_or_else(|| \
                                 ::serde::Error::expected(\"object\", \"{name}::{vn}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n}},\n"
                            ));
                        }
                    }
                }
                format!(
                    "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                     __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n}},\n\
                     ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                     let (__k, __val) = &__o[0];\n\
                     match __k.as_str() {{\n{tagged_arms}\
                     __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n}}\n}},\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\"string or single-key object\", \"{name}\")),\n}}"
                )
            }
        };
        format!(
            "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
        )
    }
}

/// `field: <lookup-or-default>` initializers for a named-field composite.
fn named_field_inits(ty_label: &str, fields: &[Field], obj: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            let fallback = match &f.attrs.default {
                None => format!(
                    "return ::std::result::Result::Err(::serde::Error::missing_field(\"{fname}\", \"{ty_label}\"))"
                ),
                Some(None) => "::std::default::Default::default()".to_string(),
                Some(Some(path)) => format!("{path}()"),
            };
            format!(
                "{fname}: match ::serde::__get({obj}, \"{fname}\") {{\n\
                 ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                 ::std::option::Option::None => {fallback},\n}}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}
