//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible subset of the serde
//! surface the codebase actually uses: the [`Serialize`] / [`Deserialize`]
//! traits, derive macros supporting the `#[serde(...)]` attributes found in
//! the tree (`default`, `default = "path"`, `skip_serializing_if = "path"`,
//! `transparent`), and impls for the primitives and std containers that
//! appear in serialized types.
//!
//! Unlike real serde's zero-copy visitor architecture, this stand-in uses a
//! simple owned [`Value`] tree as its data model. `serde_json` (also
//! vendored) parses/prints that tree. The externally-tagged enum
//! representation and field-skipping semantics match real serde for the
//! subset used, so swapping the real crates back in later is a
//! manifest-only change.

#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model: a JSON-shaped value tree.
///
/// Object keys keep insertion order (serde_json's `preserve_order`
/// behaviour), which keeps serialized output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (always < 0; non-negatives normalize to `UInt`).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Non-negative integer contents.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Signed integer contents.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Int(n) => Some(n),
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization/deserialization error carrying a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, when: &str) -> Self {
        Error(format!("expected {what} while deserializing {when}"))
    }

    /// A missing-field error.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An unknown-enum-variant error.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error(format!("unknown variant `{variant}` for enum {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Ordered-object key lookup used by derive-generated code.
#[doc(hidden)]
pub fn __get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::expected("number", "f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", "char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(xs) if xs.len() == LEN => {
                        Ok(($($name::from_value(&xs[$idx])?,)+))
                    }
                    _ => Err(Error::expected("fixed-length array", "tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Real serde's representation: `{"secs": u64, "nanos": u32}`.
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", "Duration"))?;
        let secs = __get(obj, "secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("secs", "Duration"))?;
        let nanos = __get(obj, "nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("nanos", "Duration"))?;
        let nanos =
            u32::try_from(nanos).map_err(|_| Error::expected("nanos in u32 range", "Duration"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(o) => o.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect(),
            _ => Err(Error::expected("object", "BTreeMap")),
        }
    }
}
