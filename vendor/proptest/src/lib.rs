//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, strategies for
//! numeric ranges, tuples, [`Just`] and [`collection::vec`], plus the
//! [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case panics with the generated inputs'
//!   assertion message rather than a minimized counterexample;
//! * **deterministic seeding** — each test function derives its RNG seed
//!   from its own name, so failures reproduce across runs without a
//!   persistence file.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (the `cases` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a test, seeding from its name.
#[doc(hidden)]
pub fn new_rng(name: &str) -> TestRng {
    // FNV-1a over the fully-qualified test name.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::seed_from_u64(h)
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($($name:ident),+;)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    A;
    A, B;
    A, B, C;
    A, B, C, D;
    A, B, C, D, E;
    A, B, C, D, E, F;
    A, B, C, D, E, F, G;
    A, B, C, D, E, F, G, H;
    A, B, C, D, E, F, G, H, I;
    A, B, C, D, E, F, G, H, I, J;
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `len`-element vectors from an element strategy.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            @expand ($cfg)
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
    (
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            @expand ($crate::ProptestConfig::default())
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
    (
        @expand ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::new_rng(concat!(module_path!(), "::", stringify!($name)));
                for _ in 0..__cfg.cases {
                    $(let $arg = ($strat).generate(&mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}
