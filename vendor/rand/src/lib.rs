//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Provides the subset this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open and
//! inclusive ranges of the common numeric types, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded
//! through SplitMix64 — deterministic per seed and statistically strong
//! enough for the workspace's distribution tests (uniformity/Zipf
//! histograms over tens of thousands of samples).
//!
//! Not cryptographically secure; this repository only uses randomness for
//! synthetic dataset generation and randomized baselines.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, span)` by widening multiply (unbiased enough for
/// simulation workloads; avoids the modulo hot spot).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                let x = self.start + u * (self.end - self.start);
                // Keep the half-open contract: when the span is small
                // relative to `start`'s magnitude, rounding can land exactly
                // on `end`.
                if x >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    x
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Scale a closed unit sample so `hi` is attainable.
                let u = ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** with SplitMix64 seeding.
    ///
    /// Deterministic per seed (the property every dataset generator and the
    /// RAND baseline rely on), but not the same stream as upstream rand's
    /// `StdRng` — all seeds in this workspace are internal, so only
    /// self-consistency matters.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{below, RngCore};

    /// Slice extensions (the `shuffle` subset).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn half_open_float_excludes_end_at_large_offsets() {
        // Rounding can land on `end` when the span is tiny relative to the
        // bounds' magnitude; the contract is [lo, hi).
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100_000 {
            let x = r.gen_range(1e16f64..1e16 + 2.0);
            assert!(x < 1e16 + 2.0, "sample {x} reached the excluded bound");
        }
    }

    #[test]
    fn unit_interval_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }
}
