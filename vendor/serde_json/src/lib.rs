//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes the vendored [`serde::Value`] tree to JSON text and parses
//! JSON text back, covering the subset of the real crate's API the
//! workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`Value`] and [`Error`]. Output is deterministic (object key order is
//! preserved) and floats round-trip via Rust's shortest-representation
//! formatting.

#![warn(missing_docs)]

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent NaN or infinity"));
            }
            let s = f.to_string();
            out.push_str(&s);
            // serde_json prints integral floats with a trailing `.0` so the
            // number re-parses as a float.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(x, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, x)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(x, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                loop {
                    xs.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(xs));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if len == 0 || end > self.bytes.len() {
                        return Err(self.err("invalid UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                // Normalize non-negatives (e.g. `-0`) so `Value::Int` keeps
                // its documented always-negative invariant.
                return Ok(if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) });
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::UInt(1), Value::Float(2.5), Value::Null])),
            ("b".into(), Value::String("hi \"there\"\n".into())),
            ("c".into(), Value::Bool(true)),
            ("d".into(), Value::Int(-3)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_keep_float_shape() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let v: Value = from_str("1.0").unwrap();
        assert_eq!(v, Value::Float(1.0));
    }

    #[test]
    fn negative_zero_normalizes_to_uint() {
        let v: Value = from_str("-0").unwrap();
        assert_eq!(v, Value::UInt(0));
        assert_eq!(from_str::<usize>("-0").unwrap(), 0);
    }

    #[test]
    fn duration_rejects_out_of_range_nanos() {
        use std::time::Duration;
        assert!(from_str::<Duration>("{\"secs\":1,\"nanos\":4294967297}").is_err());
        assert_eq!(from_str::<Duration>("{\"secs\":1,\"nanos\":5}").unwrap(), Duration::new(1, 5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
