//! Offline stand-in for the `criterion` crate.
//!
//! Compiles the workspace's ten `harness = false` bench targets unchanged
//! and gives them a useful (if statistically modest) runtime: each
//! `Bencher::iter` call is warmed up once, then timed over `sample_size`
//! batches with `std::time::Instant`, and the per-iteration median, mean,
//! and min are printed as plain text. No plots, no HTML report, no outlier
//! analysis — swapping real criterion back in later is a manifest-only
//! change because the bench sources only use the stable subset
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`).
//!
//! ## Machine-readable output
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! benchmark additionally appends one JSON line to it:
//! `{"id": ..., "median_ns": ..., "mean_ns": ..., "min_ns": ...,
//! "samples": ...}`. This is what `ses bench-baseline` (and the CI
//! perf-smoke job) consume to build `BENCH_BASELINE.json` — the recorded
//! performance trajectory at the repository root.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 10, f);
        self
    }
}

/// A named benchmark group (mirrors criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with an input value (criterion's parameterized form).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, self.sample_size, &mut wrapped);
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// An id from just a parameter (matches criterion's API).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing context passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after one warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("{label:<56} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let median = median_of(&b.samples);
    eprintln!(
        "{label:<56} median {:>12} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        b.samples.len()
    );
    append_json_line(label, median, mean, min, b.samples.len());
}

/// Median sample duration (lower-middle for even counts — deterministic and
/// robust against the single slow outlier a noisy runner produces).
fn median_of(samples: &[Duration]) -> Duration {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) / 2]
}

/// Appends one `{"id", "median_ns", "mean_ns", "min_ns", "samples"}` line to
/// the file named by `CRITERION_JSON`, if set. Failures are reported but
/// never fail the bench run.
fn append_json_line(label: &str, median: Duration, mean: Duration, min: Duration, samples: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\":\"{escaped}\",\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"samples\":{samples}}}\n",
        median.as_nanos(),
        mean.as_nanos(),
        min.as_nanos(),
    );
    use std::io::Write as _;
    let res = std::fs::OpenOptions::new().create(true).append(true).open(&path);
    match res.and_then(|mut f| f.write_all(line.as_bytes())) {
        Ok(()) => {}
        Err(e) => eprintln!("criterion: cannot append to CRITERION_JSON={path}: {e}"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Re-export for bench sources that import `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles bench functions into a callable group (mirrors criterion).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups (mirrors criterion).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
