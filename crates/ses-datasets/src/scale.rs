//! Block-streaming generation for the 100k–1M user axis.
//!
//! [`crate::synthetic::generate_with_storage`] already streams one column at
//! a time, but its sequential RNG forces the whole matrix to be drawn in one
//! fixed order. This module instead derives every cell from a counter-based
//! hash of `(seed, domain, user, item)`, which makes generation
//! **order-invariant**: the same instance can be produced row-block by
//! row-block ([`for_each_user_block`], e.g. to feed an external store or a
//! sharded loader) or column by column ([`build`], feeding
//! [`InterestMatrix::push_item`]) — and every block size yields bit-identical
//! values. The only per-call allocation is one scratch column (or one user
//! block), so a 1M-user compressed instance builds without ever holding a
//! dense `|E| × |U|` matrix.
//!
//! Structural scaffolding (events, competing events, the Zipf popularity
//! permutation) still comes from the seeded sequential RNG — it is `O(|E|)`,
//! drawn once up front, and shared verbatim by both emission orders.

use crate::params::{quantize, ActivityModel, InterestModel, SyntheticParams};
use crate::scaffold::{random_competing, random_events};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ses_core::model::{ActivityMatrix, Instance, InstanceBuilder, InterestMatrix, StorageKind};

/// Default user-block granularity for [`for_each_user_block`]. The value is
/// cosmetic — any block size produces bit-identical output — and merely
/// balances scratch size against callback overhead.
pub const DEFAULT_USER_BLOCK: usize = 4096;

/// Domain separators so event interest, competing interest, and activity
/// draw independent hash streams from one seed.
const DOMAIN_EVENT: u64 = 0x5345_5f45; // "SE_E"
const DOMAIN_COMPETING: u64 = 0x5345_5f43; // "SE_C"
const DOMAIN_ACTIVITY: u64 = 0x5345_5f41; // "SE_A"
/// Second stream for the Normal model's Box–Muller pair.
const DOMAIN_AUX: u64 = 0x5345_5f58; // "SE_X"

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless per-cell hash: every `(seed, domain, user, item)` tuple maps to
/// one 64-bit word, independent of evaluation order.
#[inline]
fn cell_hash(seed: u64, domain: u64, user: u64, item: u64) -> u64 {
    let mut h = seed.wrapping_add(domain.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h = splitmix64(h.wrapping_add(user.wrapping_mul(0xD1B5_4A32_D192_ED03)));
    h = splitmix64(h ^ item.wrapping_mul(0xA24B_AED4_963E_E407));
    splitmix64(h)
}

/// Maps a hash to `U[0, 1)` using the top 53 bits.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Normal(0.5, 0.25) clamped to `[0, 1]` from two independent hash words
/// (Box–Muller; `u1` is shifted into `(0, 1]` so the log is finite).
#[inline]
fn clamped_normal(h1: u64, h2: u64) -> f64 {
    let u1 = 1.0 - unit(h1);
    let u2 = unit(h2);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (0.5 + 0.25 * z).clamp(0.0, 1.0)
}

/// One interest cell under the configured model (quantized if requested).
#[inline]
fn interest_cell(
    params: &SyntheticParams,
    domain: u64,
    pops: Option<&[f64]>,
    item: usize,
    user: usize,
) -> f64 {
    let h = cell_hash(params.seed, domain, user as u64, item as u64);
    let raw = match params.interest {
        InterestModel::Uniform => unit(h),
        InterestModel::Normal => {
            clamped_normal(h, cell_hash(params.seed, domain ^ DOMAIN_AUX, user as u64, item as u64))
        }
        InterestModel::Zipf { .. } => {
            pops.expect("zipf popularity table must be precomputed")[item] * unit(h)
        }
    };
    quantize(raw, params.interest_levels)
}

/// One activity cell under the configured model.
#[inline]
fn activity_cell(params: &SyntheticParams, user: usize, interval: usize) -> f64 {
    let h = cell_hash(params.seed, DOMAIN_ACTIVITY, user as u64, interval as u64);
    match params.activity {
        ActivityModel::Uniform => unit(h),
        ActivityModel::Normal => clamped_normal(
            h,
            cell_hash(params.seed, DOMAIN_ACTIVITY ^ DOMAIN_AUX, user as u64, interval as u64),
        ),
    }
}

/// Zipf popularity: a seeded random permutation of ranks, normalized so the
/// most popular item has weight 1 (same construction as the sequential
/// generator).
fn zipf_pops(rng: &mut StdRng, n: usize, s: f64) -> Vec<f64> {
    let mut ranks: Vec<usize> = (1..=n.max(1)).collect();
    ranks.shuffle(rng);
    ranks.iter().map(|&r| (r as f64).powf(-s)).collect()
}

/// The `O(|E|)` structural scaffold both emission orders share: an
/// [`InstanceBuilder`] loaded with events/intervals/competing, the competing
/// count, and the Zipf popularity tables (when the model needs them).
#[allow(clippy::type_complexity)]
fn skeleton(
    params: &SyntheticParams,
) -> (InstanceBuilder, usize, Option<Vec<f64>>, Option<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut builder = InstanceBuilder::new();
    for e in random_events(
        &mut rng,
        params.num_events,
        params.num_locations,
        params.max_required_resources,
    ) {
        builder.add_event(e);
    }
    builder.add_intervals(params.num_intervals);
    let competing = random_competing(&mut rng, params.num_intervals, params.competing_per_interval);
    let num_competing = competing.len();
    for c in competing {
        builder.add_competing(c);
    }
    let (ev_pops, comp_pops) = match params.interest {
        InterestModel::Zipf { s } => (
            Some(zipf_pops(&mut rng, params.num_events, s)),
            Some(zipf_pops(&mut rng, num_competing, s)),
        ),
        _ => (None, None),
    };
    (builder, num_competing, ev_pops, comp_pops)
}

/// One contiguous run of users, emitted user-major. Slices are reused scratch
/// owned by the iteration — copy out anything that must outlive the callback.
#[derive(Debug)]
pub struct UserBlock<'a> {
    /// Index of the first user in the block.
    pub first_user: usize,
    /// Number of users in the block (equals the requested block size except
    /// possibly for the final block).
    pub len: usize,
    /// Events per user row.
    pub num_events: usize,
    /// Competing events per user row.
    pub num_competing: usize,
    /// Intervals per user row.
    pub num_intervals: usize,
    /// `len × num_events` event interest values, user-major:
    /// `event_interest[i * num_events + e]` is user `first_user + i`'s
    /// interest in event `e`.
    pub event_interest: &'a [f64],
    /// `len × num_competing` competing-interest values, user-major.
    pub competing_interest: &'a [f64],
    /// `len × num_intervals` activity probabilities, user-major.
    pub activity: &'a [f64],
}

/// Streams the instance's per-user data in blocks of `block_size` users.
/// Every block size produces bit-identical values (the cells are
/// counter-based), so callers can pick whatever granularity their sink
/// favors. Scratch is `O(block_size × (|E| + competing + |T|))`.
///
/// # Panics
/// Panics if `block_size` is zero.
pub fn for_each_user_block(
    params: &SyntheticParams,
    block_size: usize,
    mut f: impl FnMut(&UserBlock<'_>),
) {
    assert!(block_size > 0, "block size must be positive");
    let (_, num_competing, ev_pops, comp_pops) = skeleton(params);
    let ne = params.num_events;
    let nt = params.num_intervals;
    let mut ev = vec![0.0f64; block_size * ne];
    let mut comp = vec![0.0f64; block_size * num_competing];
    let mut act = vec![0.0f64; block_size * nt];
    let mut first_user = 0;
    while first_user < params.num_users {
        let len = block_size.min(params.num_users - first_user);
        for i in 0..len {
            let user = first_user + i;
            for item in 0..ne {
                ev[i * ne + item] =
                    interest_cell(params, DOMAIN_EVENT, ev_pops.as_deref(), item, user);
            }
            for item in 0..num_competing {
                comp[i * num_competing + item] =
                    interest_cell(params, DOMAIN_COMPETING, comp_pops.as_deref(), item, user);
            }
            for t in 0..nt {
                act[i * nt + t] = activity_cell(params, user, t);
            }
        }
        f(&UserBlock {
            first_user,
            len,
            num_events: ne,
            num_competing,
            num_intervals: nt,
            event_interest: &ev[..len * ne],
            competing_interest: &comp[..len * num_competing],
            activity: &act[..len * nt],
        });
        first_user += len;
    }
}

/// Builds the full [`Instance`] in the requested interest layout by
/// streaming columns straight into the backend (one `|U|`-long scratch
/// column is the only dense interest allocation). Values are identical,
/// bit for bit, to what [`for_each_user_block`] emits for the same
/// parameters.
///
/// # Panics
/// Panics on degenerate parameters (zero events/intervals/users), matching
/// the instance validator's requirements.
pub fn build(params: &SyntheticParams, storage: StorageKind) -> Instance {
    let (builder, num_competing, ev_pops, comp_pops) = skeleton(params);

    let mut col = vec![0.0f64; params.num_users];
    let stream = |domain: u64, pops: Option<&[f64]>, items: usize, col: &mut [f64]| {
        let mut m = InterestMatrix::empty(storage, params.num_users);
        for item in 0..items {
            for (user, v) in col.iter_mut().enumerate() {
                *v = interest_cell(params, domain, pops, item, user);
            }
            m.push_item(col);
        }
        m
    };
    let event_interest = stream(DOMAIN_EVENT, ev_pops.as_deref(), params.num_events, &mut col);
    let competing_interest =
        stream(DOMAIN_COMPETING, comp_pops.as_deref(), num_competing, &mut col);
    let activity = ActivityMatrix::from_fn(params.num_users, params.num_intervals, |u, t| {
        activity_cell(params, u, t)
    });

    builder
        .event_interest(event_interest)
        .competing_interest(competing_interest)
        .activity(activity)
        .resources(params.resources)
        .build()
        .expect("scale parameters must produce a valid instance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::model::SparseInterestBuilder;

    fn tiny(interest: InterestModel) -> SyntheticParams {
        SyntheticParams {
            k: 5,
            num_events: 9,
            num_intervals: 5,
            num_users: 700,
            competing_per_interval: (1, 3),
            num_locations: 4,
            resources: 10.0,
            max_required_resources: 5.0,
            interest,
            activity: ActivityModel::Uniform,
            seed: 11,
            interest_levels: 32,
        }
    }

    #[test]
    fn build_is_deterministic_and_valid() {
        for model in [InterestModel::Uniform, InterestModel::Normal, InterestModel::Zipf { s: 2.0 }]
        {
            let a = build(&tiny(model), StorageKind::Compressed);
            let b = build(&tiny(model), StorageKind::Compressed);
            assert!(a.validate().is_ok(), "{model:?}");
            assert_eq!(a, b);
            assert_eq!(a.event_interest.storage_kind(), StorageKind::Compressed);
            let c = build(&tiny(model).with_seed(12), StorageKind::Compressed);
            assert_ne!(a, c);
        }
    }

    #[test]
    fn backends_hold_identical_values() {
        let p = tiny(InterestModel::Zipf { s: 2.0 });
        let dense = build(&p, StorageKind::Dense);
        for kind in [StorageKind::Sparse, StorageKind::Compressed] {
            let other = build(&p, kind);
            let mut converted = dense.clone();
            converted.event_interest = dense.event_interest.convert_to(kind);
            converted.competing_interest = dense.competing_interest.convert_to(kind);
            assert_eq!(other, converted, "{kind}");
        }
    }

    #[test]
    fn block_emission_is_block_size_invariant_and_matches_build() {
        for model in [InterestModel::Uniform, InterestModel::Normal, InterestModel::Zipf { s: 2.0 }]
        {
            let p = tiny(model);
            let direct = build(&p, StorageKind::Sparse);
            for block_size in [1usize, 7, 512, DEFAULT_USER_BLOCK] {
                let mut ev = None;
                let mut comp = None;
                let mut act = Vec::new();
                let mut seen_users = 0;
                for_each_user_block(&p, block_size, |blk| {
                    assert_eq!(blk.first_user, seen_users);
                    assert_eq!(blk.num_competing, direct.competing_interest.num_items());
                    let evb = ev.get_or_insert_with(|| {
                        SparseInterestBuilder::new(blk.num_events, p.num_users)
                    });
                    let compb = comp.get_or_insert_with(|| {
                        SparseInterestBuilder::new(blk.num_competing, p.num_users)
                    });
                    for i in 0..blk.len {
                        let user = blk.first_user + i;
                        for e in 0..blk.num_events {
                            evb.push(e, user, blk.event_interest[i * blk.num_events + e]);
                        }
                        for c in 0..blk.num_competing {
                            compb.push(c, user, blk.competing_interest[i * blk.num_competing + c]);
                        }
                    }
                    act.extend_from_slice(blk.activity);
                    seen_users += blk.len;
                });
                assert_eq!(seen_users, p.num_users);
                let ev: InterestMatrix = ev.unwrap().build().into();
                let comp: InterestMatrix = comp.unwrap().build().into();
                assert_eq!(ev, direct.event_interest, "{model:?} bs={block_size}");
                assert_eq!(comp, direct.competing_interest, "{model:?} bs={block_size}");
                let act =
                    ActivityMatrix::from_raw(p.num_users, p.num_intervals, act.clone()).unwrap();
                assert_eq!(&act, &direct.activity, "{model:?} bs={block_size}");
            }
        }
    }

    #[test]
    fn quantization_caps_the_compressed_dictionary() {
        let p = tiny(InterestModel::Zipf { s: 2.0 }).with_interest_levels(32);
        let inst = build(&p, StorageKind::Compressed);
        match &inst.event_interest {
            InterestMatrix::Compressed(c) => assert!(c.dict_len() <= 32, "{}", c.dict_len()),
            other => panic!("expected compressed storage, got {}", other.storage_kind()),
        }
    }

    #[test]
    fn compressed_is_at_most_a_third_of_sparse_on_quantized_zipf() {
        // Scale-invariant per-entry ratio: u16 codes (2 B/entry, full blocks
        // carry no user offsets) versus sparse 12 B/entry — the acceptance
        // bar the 100k bench workload is held to, checked here at 20k users
        // so it runs in the tier-1 suite.
        let p = SyntheticParams {
            num_users: 20_000,
            num_events: 12,
            num_intervals: 4,
            competing_per_interval: (1, 2),
            interest: InterestModel::Zipf { s: 2.0 },
            interest_levels: 256,
            seed: 0x5CA1E,
            ..SyntheticParams::default()
        };
        let sparse = build(&p, StorageKind::Sparse);
        let comp = build(&p, StorageKind::Compressed);
        let (sb, cb) = (sparse.event_interest.heap_bytes(), comp.event_interest.heap_bytes());
        assert!(cb * 3 <= sb, "compressed {cb} B vs sparse {sb} B");
        assert_eq!(comp.event_interest.convert_to(StorageKind::Sparse), sparse.event_interest);
    }

    #[test]
    #[ignore = "million-user build; run explicitly or via the scale_1m bench"]
    fn one_million_users_build_compressed() {
        let p = SyntheticParams {
            num_users: 1_000_000,
            num_events: 48,
            num_intervals: 8,
            competing_per_interval: (1, 4),
            interest: InterestModel::Uniform,
            interest_levels: 256,
            seed: 0x1_000_000,
            ..SyntheticParams::default()
        };
        let inst = build(&p, StorageKind::Compressed);
        assert!(inst.validate().is_ok());
        assert_eq!(inst.num_users(), 1_000_000);
        // ~2 B/entry (u16 codes) plus block metadata — far below the 384 MB
        // the dense layout would need for 48M entries.
        assert!(inst.event_interest.heap_bytes() < 150 * 1024 * 1024);
    }
}
