//! Constrained instance families for the differential test matrix: seeded,
//! valid-by-construction [`ConstraintSet`]s derived from an instance's
//! shape, one preset per stress axis.
//!
//! * **capacity-tight** — every venue hosting two or more events gets a
//!   slot budget around half its total demand (never below its largest
//!   single event), so capacity pruning fires on every multi-event venue;
//! * **conflict-clique** — about half the events are partitioned into
//!   mutual-exclusion cliques of 3–4, so conflict pruning dominates;
//! * **precedence-chain** — chains of 3–4 events over strictly increasing
//!   ids (acyclic by construction), so ordering rules dominate;
//! * **mixed** — all three at reduced intensity.
//!
//! Families are deterministic per `(instance shape, seed)` and always pass
//! [`ConstraintSet::validate`]: capacities are positive and unique per
//! location, clique members are distinct in-range ids, and precedence
//! edges only ever point from a lower id to a higher one, which rules out
//! cycles without a reachability check.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_core::constraints::ConstraintSet;
use ses_core::model::Instance;
use ses_core::{EventId, LocationId};

/// A named constrained family; parsed from `--constraints <preset>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ConstraintFamily {
    /// Tight per-venue slot budgets on every multi-event location.
    CapacityTight,
    /// Mutual-exclusion cliques over about half the events.
    ConflictClique,
    /// Precedence chains over strictly increasing event ids.
    PrecedenceChain,
    /// All three axes at reduced intensity.
    Mixed,
}

impl ConstraintFamily {
    /// All presets, in documentation order.
    pub const ALL: [ConstraintFamily; 4] = [
        ConstraintFamily::CapacityTight,
        ConstraintFamily::ConflictClique,
        ConstraintFamily::PrecedenceChain,
        ConstraintFamily::Mixed,
    ];

    /// The CLI-facing preset name.
    pub fn name(self) -> &'static str {
        match self {
            ConstraintFamily::CapacityTight => "capacity-tight",
            ConstraintFamily::ConflictClique => "conflict-clique",
            ConstraintFamily::PrecedenceChain => "precedence-chain",
            ConstraintFamily::Mixed => "mixed",
        }
    }

    /// Parses a (case-insensitive) preset name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "capacity-tight" | "capacity" => Some(ConstraintFamily::CapacityTight),
            "conflict-clique" | "conflict" => Some(ConstraintFamily::ConflictClique),
            "precedence-chain" | "precedence" => Some(ConstraintFamily::PrecedenceChain),
            "mixed" => Some(ConstraintFamily::Mixed),
            _ => None,
        }
    }

    /// Generates this family's constraint set for `inst`'s shape.
    /// Deterministic per `(shape, seed)`; the result always validates
    /// against `inst.num_events()`.
    pub fn generate(self, inst: &Instance, seed: u64) -> ConstraintSet {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC025);
        let mut cs = ConstraintSet::new();
        match self {
            ConstraintFamily::CapacityTight => capacities(&mut cs, inst, &mut rng, true),
            ConstraintFamily::ConflictClique => cliques(&mut cs, inst.num_events(), &mut rng, 2),
            ConstraintFamily::PrecedenceChain => {
                chains(&mut cs, inst.num_events(), &mut rng, inst.num_events().div_ceil(6))
            }
            ConstraintFamily::Mixed => {
                capacities(&mut cs, inst, &mut rng, false);
                cliques(&mut cs, inst.num_events(), &mut rng, 4);
                chains(&mut cs, inst.num_events(), &mut rng, inst.num_events().div_ceil(12));
            }
        }
        debug_assert!(cs.validate(inst.num_events()).is_ok());
        cs
    }

    /// Installs this family on `inst` (replacing any existing constraints).
    pub fn apply(self, inst: &mut Instance, seed: u64) {
        inst.constraints = self.generate(inst, seed);
    }
}

/// Budgets every location hosting ≥ 2 events. `tight` caps near half the
/// total slot demand; loose caps near two-thirds. Never below the largest
/// single event, so every venue can still host *something*.
fn capacities(cs: &mut ConstraintSet, inst: &Instance, rng: &mut StdRng, tight: bool) {
    let num_locations = inst.events.iter().map(|e| e.location.index() + 1).max().unwrap_or(0);
    for loc in 0..num_locations {
        let location = LocationId::new(loc);
        let here: Vec<u64> = inst
            .events
            .iter()
            .filter(|e| e.location == location)
            .map(|e| u64::from(e.duration))
            .collect();
        if here.len() < 2 {
            continue;
        }
        let total: u64 = here.iter().sum();
        let largest = *here.iter().max().expect("non-empty");
        let target = if tight { total.div_ceil(2) } else { (2 * total).div_ceil(3) };
        // Jitter by one slot so equal shapes at different seeds differ.
        let cap = (target + rng.gen_range(0..2u64)).max(largest);
        cs.set_venue_capacity(location, u32::try_from(cap).unwrap_or(u32::MAX));
    }
}

/// Partitions `num_events / denom` shuffled events into cliques of 3–4
/// (`denom = 2` covers about half the events). Needs ≥ 2 ids to form a
/// pair; smaller instances get no conflicts.
fn cliques(cs: &mut ConstraintSet, num_events: usize, rng: &mut StdRng, denom: usize) {
    let mut ids: Vec<usize> = (0..num_events).collect();
    // Fisher–Yates with the family's own RNG (no SliceRandom dependency).
    for i in (1..ids.len()).rev() {
        ids.swap(i, rng.gen_range(0..=i));
    }
    let take = (num_events / denom.max(1)).min(num_events);
    let mut pool = &ids[..take];
    while pool.len() >= 2 {
        let size = rng.gen_range(3..=4usize).min(pool.len());
        let members: Vec<EventId> = pool[..size].iter().map(|&i| EventId::new(i)).collect();
        cs.add_conflict_clique(&members);
        pool = &pool[size..];
    }
}

/// Adds `num_chains` precedence chains, each over 3–4 *strictly
/// increasing* event ids — the low-to-high discipline that keeps the
/// relation acyclic by construction.
fn chains(cs: &mut ConstraintSet, num_events: usize, rng: &mut StdRng, num_chains: usize) {
    if num_events < 2 {
        return;
    }
    for _ in 0..num_chains {
        let len = rng.gen_range(3..=4usize).min(num_events);
        // Sample `len` distinct ids and sort them into an increasing chain.
        let mut picked = std::collections::BTreeSet::new();
        while picked.len() < len {
            picked.insert(rng.gen_range(0..num_events));
        }
        let chain: Vec<usize> = picked.into_iter().collect();
        for pair in chain.windows(2) {
            cs.add_precedence(EventId::new(pair[0]), EventId::new(pair[1]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    fn base() -> Instance {
        Dataset::Unf.build(40, 18, 6, 0xC0)
    }

    #[test]
    fn parse_and_name_roundtrip() {
        for f in ConstraintFamily::ALL {
            assert_eq!(ConstraintFamily::parse(f.name()), Some(f));
        }
        assert_eq!(ConstraintFamily::parse("CAPACITY"), Some(ConstraintFamily::CapacityTight));
        assert_eq!(ConstraintFamily::parse("nope"), None);
    }

    #[test]
    fn families_are_deterministic_and_valid() {
        let inst = base();
        for f in ConstraintFamily::ALL {
            let cs = f.generate(&inst, 7);
            assert_eq!(cs, f.generate(&inst, 7), "{}", f.name());
            assert_ne!(cs, f.generate(&inst, 8), "{}: seed must matter", f.name());
            assert!(cs.validate(inst.num_events()).is_ok(), "{}", f.name());
            assert!(!cs.is_empty(), "{}: preset generated no rules", f.name());
        }
    }

    #[test]
    fn families_stress_their_own_axis() {
        let inst = base();
        let cap = ConstraintFamily::CapacityTight.generate(&inst, 3);
        assert!(!cap.venue_capacities().is_empty());
        assert!(cap.conflicts().is_empty() && cap.precedences().is_empty());

        let conf = ConstraintFamily::ConflictClique.generate(&inst, 3);
        assert!(conf.conflicts().len() >= 3, "cliques should cover ~half the events");
        assert!(conf.venue_capacities().is_empty() && conf.precedences().is_empty());

        let prec = ConstraintFamily::PrecedenceChain.generate(&inst, 3);
        assert!(prec.precedences().len() >= 2);
        for e in prec.precedences() {
            assert!(e.before < e.after, "chains must point low → high");
        }

        let mixed = ConstraintFamily::Mixed.generate(&inst, 3);
        assert!(!mixed.venue_capacities().is_empty());
        assert!(!mixed.conflicts().is_empty());
        assert!(!mixed.precedences().is_empty());
    }

    #[test]
    fn capacities_never_starve_a_venue() {
        let mut inst = base();
        inst.events[0].duration = 3; // one long event at its venue
        let cs = ConstraintFamily::CapacityTight.generate(&inst, 11);
        let loc = inst.events[0].location;
        if let Some(cap) = cs.venue_capacity(loc) {
            assert!(cap >= 3, "budget must admit the largest single event");
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_rule_sets() {
        // Seeded generation must actually respond to the seed — a family
        // that collapses to one rule set regardless of seed would quietly
        // shrink the differential matrix to a single column.
        let inst = base();
        for f in ConstraintFamily::ALL {
            let differs = (1..16u64).any(|s| f.generate(&inst, 0) != f.generate(&inst, s));
            assert!(differs, "{}: 16 seeds produced identical sets", f.name());
        }
    }

    #[test]
    fn apply_installs_a_validating_instance() {
        for f in ConstraintFamily::ALL {
            let mut inst = base();
            f.apply(&mut inst, 5);
            assert!(inst.validate().is_ok(), "{}", f.name());
            assert_eq!(inst.constraints, f.generate(&base(), 5));
        }
    }
}
