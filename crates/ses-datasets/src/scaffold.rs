//! Structural scaffolding shared by every generator: event
//! locations/resources and competing-event placement.

use crate::distributions::{UniformInt, UniformRange};
use rand::Rng;
use ses_core::model::{CompetingEvent, Event};
use ses_core::{IntervalId, LocationId};

/// Generates `n` candidate events with uniformly random locations in
/// `0..num_locations` and required resources `ξ ~ U[1, max_xi]`.
pub fn random_events(
    rng: &mut impl Rng,
    n: usize,
    num_locations: usize,
    max_xi: f64,
) -> Vec<Event> {
    assert!(num_locations > 0, "need at least one location");
    let xi = UniformRange::new(1.0, max_xi.max(1.0));
    (0..n)
        .map(|_| {
            let loc = LocationId::new(rng.gen_range(0..num_locations));
            let req = crate::distributions::Sampler::sample(&xi, rng);
            Event::new(loc, req)
        })
        .collect()
}

/// Places competing events: each interval receives a count drawn from
/// `U[lo, hi]`. Returns one [`CompetingEvent`] per placement, grouped by
/// interval in ascending order.
pub fn random_competing(
    rng: &mut impl Rng,
    num_intervals: usize,
    per_interval: (u64, u64),
) -> Vec<CompetingEvent> {
    let dist = UniformInt::new(per_interval.0, per_interval.1);
    let mut competing = Vec::new();
    for t in 0..num_intervals {
        let count = dist.sample(rng);
        for _ in 0..count {
            competing.push(CompetingEvent::new(IntervalId::new(t)));
        }
    }
    competing
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn events_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let events = random_events(&mut rng, 200, 10, 15.0);
        assert_eq!(events.len(), 200);
        for e in &events {
            assert!(e.location.index() < 10);
            assert!(e.required_resources >= 1.0 && e.required_resources <= 15.0);
        }
        // All 10 locations should be used with 200 draws.
        let used: std::collections::HashSet<_> = events.iter().map(|e| e.location).collect();
        assert_eq!(used.len(), 10);
    }

    #[test]
    fn competing_counts_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let comp = random_competing(&mut rng, 50, (1, 16));
        let mut per_interval = vec![0usize; 50];
        for c in &comp {
            per_interval[c.interval.index()] += 1;
        }
        for &n in &per_interval {
            assert!((1..=16).contains(&n));
        }
        // Mean should be near 8.5.
        let mean = comp.len() as f64 / 50.0;
        assert!((mean - 8.5).abs() < 2.5, "mean {mean}");
    }

    #[test]
    fn degenerate_xi_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let events = random_events(&mut rng, 5, 2, 1.0); // ξ ∈ [1, 1]
        for e in &events {
            assert_eq!(e.required_resources, 1.0);
        }
    }
}
