//! The Theorem-1 hardness reduction (§2.2), executable.
//!
//! The paper proves SES is NP-hard to approximate within `1 − ε` by reducing
//! **3-Bounded 3-Dimensional Matching** (3DM-3) to a restricted SES
//! instance. This module implements that reduction so the construction can
//! be tested instead of just read:
//!
//! * 3DM-3 edges `д_t ∈ X × Y × Z` become time intervals;
//! * the `3n` elements become candidate events `E₁` with `ξ = 1`, plus
//!   `m − n` filler events `E₂` with `ξ = 3`; resources `θ = 3`;
//! * one competing event per interval; activity `σ ≡ 1`; no location
//!   constraints (every event gets its own location);
//! * each element-user `u_p` likes only their element-event (`µ = 0.25`),
//!   and likes interval `t`'s competing event with
//!   `0.25·(0.75 − δ)/(0.25 + δ)` when `p ∈ д_t` and `0.75` otherwise;
//! * each filler-user likes only their filler event (`µ = 0.75`) and no
//!   competing event.
//!
//! With `k = 2n + m` (all events) the correspondence is: scheduling a
//! triple's three elements **into their own edge's interval** yields
//! `3(0.25 + δ)`; into any other interval, `3 · 0.25`; each filler alone in
//! an interval yields `1`. Hence a perfect matching of size `n` exists iff
//! the optimal utility is `3n(0.25 + δ) + (m − n)` — verified against the
//! exact solver in the tests.

use serde::{Deserialize, Serialize};
use ses_core::error::BuildError;
use ses_core::ids::{IntervalId, LocationId};
use ses_core::model::{
    ActivityMatrix, CompetingEvent, Event, Instance, InstanceBuilder, SparseInterestBuilder,
};

/// A 3-bounded 3-dimensional matching instance: `|X| = |Y| = |Z| = n`,
/// `m = |triples|`, every element occurring in at most three triples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreeDm {
    /// Elements per dimension.
    pub n: usize,
    /// Edges `(x, y, z)` with each coordinate in `0..n`.
    pub triples: Vec<(usize, usize, usize)>,
}

impl ThreeDm {
    /// Validates dimension bounds and the 3-bounded occurrence property.
    ///
    /// # Errors
    /// Returns a message naming the violated property.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("n must be positive".into());
        }
        if self.triples.len() < self.n {
            return Err(format!(
                "need m ≥ n for the reduction (m = {}, n = {})",
                self.triples.len(),
                self.n
            ));
        }
        let mut occur = vec![0usize; 3 * self.n];
        for &(x, y, z) in &self.triples {
            if x >= self.n || y >= self.n || z >= self.n {
                return Err(format!("triple ({x}, {y}, {z}) out of range for n = {}", self.n));
            }
            occur[x] += 1;
            occur[self.n + y] += 1;
            occur[2 * self.n + z] += 1;
        }
        if let Some((el, &c)) = occur.iter().enumerate().find(|&(_, &c)| c > 3) {
            return Err(format!("element {el} occurs {c} times (3-bounded violated)"));
        }
        Ok(())
    }

    /// The global element id of a triple coordinate
    /// (X: `0..n`, Y: `n..2n`, Z: `2n..3n`).
    fn elements(&self, t: usize) -> [usize; 3] {
        let (x, y, z) = self.triples[t];
        [x, self.n + y, 2 * self.n + z]
    }

    /// Whether `matching` (triple indices) is a valid matching: no two
    /// selected triples agree in any coordinate.
    pub fn is_matching(&self, matching: &[usize]) -> bool {
        let mut used = vec![false; 3 * self.n];
        for &t in matching {
            if t >= self.triples.len() {
                return false;
            }
            for el in self.elements(t) {
                if used[el] {
                    return false;
                }
                used[el] = true;
            }
        }
        true
    }

    /// Maximum matching size by exhaustive search — usable only for tiny
    /// instances (the point of 3DM-3's hardness!). Test oracle.
    pub fn max_matching_size(&self) -> usize {
        fn rec(dm: &ThreeDm, from: usize, used: &mut [bool]) -> usize {
            let mut best = 0;
            for t in from..dm.triples.len() {
                let els = dm.elements(t);
                if els.iter().any(|&e| used[e]) {
                    continue;
                }
                for &e in &els {
                    used[e] = true;
                }
                best = best.max(1 + rec(dm, t + 1, used));
                for &e in &els {
                    used[e] = false;
                }
            }
            best
        }
        rec(self, 0, &mut vec![false; 3 * self.n])
    }
}

/// Output of [`reduce`]: the SES instance plus the quantities the proof
/// reasons about.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The restricted SES instance.
    pub instance: Instance,
    /// The `k` to schedule (`2n + m`: every event).
    pub k: usize,
    /// The δ used (must satisfy `0 < δ < 1/12`).
    pub delta: f64,
    /// The utility a perfect matching certifies: `3n(0.25 + δ) + (m − n)`.
    pub perfect_matching_utility: f64,
}

/// Builds the §2.2 reduction from a 3DM-3 instance.
///
/// # Errors
/// Propagates [`ThreeDm::validate`] failures (as a `BuildError`-compatible
/// message) and instance-construction errors.
///
/// # Panics
/// Panics if `delta` is outside `(0, 1/12)`.
pub fn reduce(dm: &ThreeDm, delta: f64) -> Result<Reduction, BuildError> {
    assert!(delta > 0.0 && delta < 1.0 / 12.0, "the proof fixes 0 < δ < 1/12");
    dm.validate().map_err(|m| BuildError::InterestOutOfRange { value: f64::NAN, context: m })?;

    let n = dm.n;
    let m = dm.triples.len();
    let e1 = 3 * n; // element events
    let e2 = m - n; // filler events
    let num_events = e1 + e2;
    let num_users = e1 + e2; // one user per event
    let reduced_interest = 0.25 * (0.75 - delta) / (0.25 + delta);

    let mut b = InstanceBuilder::new();
    // Every event has a private location — "no location constraints" (§2.2).
    for i in 0..e1 {
        b.add_event(Event::new(LocationId::new(i), 1.0).with_label(format!("element-{i}")));
    }
    for j in 0..e2 {
        b.add_event(Event::new(LocationId::new(e1 + j), 3.0).with_label(format!("filler-{j}")));
    }
    b.add_intervals(m);
    for t in 0..m {
        b.add_competing(CompetingEvent::new(IntervalId::new(t)));
    }

    // Candidate-event interest: user i likes exactly event i.
    let mut ev = SparseInterestBuilder::new(num_events, num_users);
    for i in 0..e1 {
        ev.push(i, i, 0.25); // (7a)
    }
    for j in 0..e2 {
        ev.push(e1 + j, e1 + j, 0.75); // (7c)
    }

    // Competing interest (7b)/(7d): element-user p over interval t's
    // competing event. Filler-users have zero competing interest.
    let mut cv = SparseInterestBuilder::new(m, num_users);
    for t in 0..m {
        let members = dm.elements(t);
        for p in 0..e1 {
            let mu = if members.contains(&p) { reduced_interest } else { 0.75 };
            cv.push(t, p, mu);
        }
    }

    let instance = b
        .event_interest(ev.build())
        .competing_interest(cv.build())
        .activity(ActivityMatrix::constant(num_users, m, 1.0)) // (4): σ ≡ 1
        .resources(3.0) // (1): θ = 3
        .build()?;

    Ok(Reduction {
        instance,
        k: 2 * n + m,
        delta,
        perfect_matching_utility: 3.0 * n as f64 * (0.25 + delta) + e2 as f64,
    })
}

/// Converts a matching into the corresponding SES schedule: each matched
/// triple's three element-events go to the triple's interval; fillers (and
/// unmatched elements, packed 3 per slot) fill the remaining intervals.
/// Returns `None` if `matching` is not a valid matching.
pub fn matching_to_schedule(
    dm: &ThreeDm,
    red: &Reduction,
    matching: &[usize],
) -> Option<ses_core::Schedule> {
    use ses_core::EventId;
    if !dm.is_matching(matching) {
        return None;
    }
    let inst = &red.instance;
    let mut s = ses_core::Schedule::new(inst);
    let mut interval_used = vec![false; inst.num_intervals()];
    let mut element_placed = vec![false; 3 * dm.n];

    for &t in matching {
        for el in dm.elements(t) {
            s.assign(inst, EventId::new(el), IntervalId::new(t)).ok()?;
            element_placed[el] = true;
        }
        interval_used[t] = true;
    }
    // Remaining intervals host fillers (one each), then leftover elements.
    let free_intervals: Vec<usize> =
        (0..inst.num_intervals()).filter(|&t| !interval_used[t]).collect();
    let mut free_iter = free_intervals.iter();
    for j in 0..(dm.triples.len() - dm.n) {
        let &t = free_iter.next()?;
        s.assign(inst, EventId::new(3 * dm.n + j), IntervalId::new(t)).ok()?;
    }
    // Leftover elements: pack 3 per remaining interval.
    let leftovers: Vec<usize> = (0..3 * dm.n).filter(|&e| !element_placed[e]).collect();
    for chunk in leftovers.chunks(3) {
        let &t = free_iter.next()?;
        for &el in chunk {
            s.assign(inst, EventId::new(el), IntervalId::new(t)).ok()?;
        }
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::scoring::utility::total_utility;

    const DELTA: f64 = 0.05;

    /// n = 2, m = 3 with a perfect matching {0, 1}.
    fn with_perfect_matching() -> ThreeDm {
        ThreeDm { n: 2, triples: vec![(0, 0, 0), (1, 1, 1), (0, 1, 1)] }
    }

    /// n = 2, m = 3 where every pair of triples collides in x:
    /// max matching 1.
    fn without_perfect_matching() -> ThreeDm {
        ThreeDm { n: 2, triples: vec![(0, 0, 0), (0, 1, 1), (0, 1, 0)] }
    }

    #[test]
    fn validation() {
        assert!(with_perfect_matching().validate().is_ok());
        assert!(ThreeDm { n: 0, triples: vec![] }.validate().is_err());
        assert!(ThreeDm { n: 2, triples: vec![(0, 0, 2)] }.validate().is_err());
        // Element x = 0 four times: 3-boundedness violated.
        let dm = ThreeDm { n: 4, triples: vec![(0, 0, 0), (0, 1, 1), (0, 2, 2), (0, 3, 3)] };
        assert!(dm.validate().is_err());
    }

    #[test]
    fn matching_oracle() {
        let dm = with_perfect_matching();
        assert!(dm.is_matching(&[0, 1]));
        assert!(!dm.is_matching(&[0, 2])); // share y=... (0,0,0) vs (0,1,1) share x=0
        assert_eq!(dm.max_matching_size(), 2);
        assert_eq!(without_perfect_matching().max_matching_size(), 1);
    }

    #[test]
    fn reduction_shape() {
        let dm = with_perfect_matching();
        let red = reduce(&dm, DELTA).unwrap();
        let inst = &red.instance;
        assert_eq!(inst.num_events(), 3 * 2 + 1); // 3n element + (m−n) filler
        assert_eq!(inst.num_intervals(), 3);
        assert_eq!(inst.num_users(), 7);
        assert_eq!(inst.num_competing(), 3);
        assert_eq!(inst.resources, 3.0);
        assert_eq!(red.k, 2 * 2 + 3);
        assert!(inst.validate().is_ok());
    }

    /// The forward direction of the proof: a perfect matching's schedule
    /// achieves exactly `3n(0.25 + δ) + (m − n)`.
    #[test]
    fn perfect_matching_certifies_utility() {
        let dm = with_perfect_matching();
        let red = reduce(&dm, DELTA).unwrap();
        let s = matching_to_schedule(&dm, &red, &[0, 1]).expect("valid matching");
        let omega = total_utility(&red.instance, &s);
        assert!(
            (omega - red.perfect_matching_utility).abs() < 1e-9,
            "Ω = {omega}, proof says {}",
            red.perfect_matching_utility
        );
    }

    #[test]
    #[should_panic(expected = "δ < 1/12")]
    fn delta_bounds_enforced() {
        let _ = reduce(&with_perfect_matching(), 0.2);
    }
}
