//! Seeded op-stream generator for dynamic-workload experiments: a churning
//! sequence of [`DeltaOp`]s against a base [`Instance`], with knobs for how
//! much of the stream is structural churn (events and users arriving and
//! departing) versus plain interest drift.
//!
//! The generator tracks the evolving shape (`|E|`, `|U|`) as it emits ops,
//! so every op in the stream is valid when applied in order. Structural
//! churn is *mean-reverting* — the grow/shrink coin is biased toward the
//! base shape — so long streams hover around the seed sizes, and hard
//! floors keep removals from draining a dimension outright. Streams are
//! deterministic per seed.
//!
//! With [`OpStreamParams::constraint_churn`] above zero, a slice of the
//! stream edits the instance's [`ConstraintSet`] (conflict pairs,
//! precedence edges, venue capacities). The generator mirrors the live
//! set — including [`ConstraintSet::remove_event`] shifts when an event
//! departs — so every emitted op is valid, and precedence edges only ever
//! point from a lower event id to a higher one, which keeps the relation
//! acyclic under arbitrary churn (removals preserve relative id order and
//! new events append at the tail). At the default `0.0` the knob draws no
//! RNG values at all, so pre-existing streams are byte-stable per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_core::constraints::ConstraintSet;
use ses_core::delta::{DeltaOp, NewUser};
use ses_core::model::{Event, Instance};
use ses_core::{EventId, LocationId};

/// Never remove events below this count.
pub const MIN_EVENTS: usize = 2;
/// Never retire users below this count.
pub const MIN_USERS: usize = 8;

/// Knobs of a generated op stream.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OpStreamParams {
    /// Number of ops to generate.
    pub num_ops: usize,
    /// Probability an op is *structural* (add/remove events, add/retire
    /// users) rather than a [`DeltaOp::ShiftInterest`] drift.
    pub churn: f64,
    /// Among structural ops, the probability the op targets users rather
    /// than events.
    pub user_churn: f64,
    /// Users per [`DeltaOp::AddUsers`] / [`DeltaOp::RetireUsers`] batch.
    pub users_per_batch: usize,
    /// Probability a generated interest value is non-zero (1.0 = dense;
    /// lower values imitate sparse EBSN interest).
    pub interest_density: f64,
    /// Probability an op edits the constraint set (conflicts, precedences,
    /// venue capacities) instead of anything else. Checked *before* the
    /// structural coin; `0.0` (the default) draws no RNG values, so
    /// streams generated without the knob are byte-stable per seed.
    #[serde(default)]
    pub constraint_churn: f64,
    /// RNG seed; streams are deterministic per (base, params).
    pub seed: u64,
}

impl Default for OpStreamParams {
    fn default() -> Self {
        Self {
            num_ops: 100,
            churn: 0.3,
            user_churn: 0.3,
            users_per_batch: 4,
            interest_density: 1.0,
            constraint_churn: 0.0,
            seed: 0x0D5,
        }
    }
}

impl OpStreamParams {
    /// Overrides the op count.
    #[must_use]
    pub fn with_ops(mut self, n: usize) -> Self {
        self.num_ops = n;
        self
    }

    /// Overrides the structural-churn probability.
    #[must_use]
    pub fn with_churn(mut self, churn: f64) -> Self {
        self.churn = churn;
        self
    }

    /// Overrides the user-vs-event structural split.
    #[must_use]
    pub fn with_user_churn(mut self, user_churn: f64) -> Self {
        self.user_churn = user_churn;
        self
    }

    /// Overrides the interest density of generated values.
    #[must_use]
    pub fn with_interest_density(mut self, density: f64) -> Self {
        self.interest_density = density;
        self
    }

    /// Overrides the constraint-churn probability.
    #[must_use]
    pub fn with_constraint_churn(mut self, constraint_churn: f64) -> Self {
        self.constraint_churn = constraint_churn;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a valid op stream against `base`: applying the returned ops in
/// order with `ses_core::delta::apply` never errors.
///
/// # Panics
/// Panics if `base` has no events or users (an invalid instance).
pub fn generate(base: &Instance, params: &OpStreamParams) -> Vec<DeltaOp> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut num_events = base.num_events();
    let mut num_users = base.num_users();
    assert!(num_events > 0 && num_users > 0, "base instance must be populated");
    let num_intervals = base.num_intervals();
    let num_competing = base.num_competing();
    let weighted = base.user_weights.is_some();
    let num_locations = base.events.iter().map(|e| e.location.index() + 1).max().unwrap_or(1);
    let max_req = if base.resources.is_finite() { (base.resources / 2.0).max(0.0) } else { 1.0 };

    let mut constraints = base.constraints.clone();

    let mut ops = Vec::with_capacity(params.num_ops);
    for _ in 0..params.num_ops {
        // Constraint coin first, gated on the knob so the default 0.0
        // draws nothing and leaves pre-existing streams byte-stable.
        if params.constraint_churn > 0.0 && rng.gen_range(0.0..1.0) < params.constraint_churn {
            ops.push(constraint_op(&mut rng, &mut constraints, num_events, num_locations));
            continue;
        }
        let structural = rng.gen_range(0.0..1.0) < params.churn;
        let op = if !structural {
            DeltaOp::ShiftInterest {
                event: EventId::new(rng.gen_range(0..num_events)),
                user: rng.gen_range(0..num_users),
                interest: interest_value(&mut rng, params),
            }
        } else if rng.gen_range(0.0..1.0) < params.user_churn {
            // User churn; grow when at the floor, otherwise mean-revert.
            let batch = params.users_per_batch.max(1);
            let can_retire = num_users >= MIN_USERS + batch;
            if !can_retire || mean_revert_grow(&mut rng, num_users, base.num_users()) {
                let users: Vec<NewUser> = (0..batch)
                    .map(|_| NewUser {
                        event_interest: (0..num_events)
                            .map(|_| interest_value(&mut rng, params))
                            .collect(),
                        competing_interest: (0..num_competing)
                            .map(|_| interest_value(&mut rng, params))
                            .collect(),
                        activity: (0..num_intervals).map(|_| rng.gen_range(0.0..1.0)).collect(),
                        weight: weighted.then(|| rng.gen_range(0.0..1.0)),
                    })
                    .collect();
                num_users += batch;
                DeltaOp::AddUsers { users }
            } else {
                let users = draw_retirees(&mut rng, num_users, batch);
                num_users -= batch;
                DeltaOp::RetireUsers { users }
            }
        } else {
            // Event churn; grow when at the floor, otherwise mean-revert.
            if num_events <= MIN_EVENTS || mean_revert_grow(&mut rng, num_events, base.num_events())
            {
                let location = LocationId::new(rng.gen_range(0..num_locations));
                let required = if max_req > 0.0 { rng.gen_range(0.0..max_req) } else { 0.0 };
                let interest = (0..num_users).map(|_| interest_value(&mut rng, params)).collect();
                num_events += 1;
                DeltaOp::AddEvent { event: Event::new(location, required), interest }
            } else {
                let victim = rng.gen_range(0..num_events);
                num_events -= 1;
                // Keep the constraint mirror in lock-step with the dense-id
                // shift `delta::apply` performs on removal.
                constraints.remove_event(EventId::new(victim));
                DeltaOp::RemoveEvent { event: EventId::new(victim) }
            }
        };
        ops.push(op);
    }
    ops
}

/// Draws `batch` distinct retiree ids from `0..num_users`, ascending.
///
/// The sparse regime (`batch * 2 <= num_users`, which covers every seeded
/// default — `users_per_batch` is 4 against a retire floor of
/// [`MIN_USERS`]` + batch`) keeps the original rejection-sampling loop so
/// pre-existing streams stay byte-stable per seed. Rejection sampling has
/// no termination bound once the draw is dense relative to the pool — the
/// last ids each take Θ(`num_users`) retries in expectation and the loop
/// can stall arbitrarily long on an unlucky seed — so the dense regime
/// switches to a partial Fisher–Yates shuffle, which is exactly `batch`
/// draws regardless of density.
fn draw_retirees(rng: &mut StdRng, num_users: usize, batch: usize) -> Vec<usize> {
    debug_assert!(batch < num_users, "retire must leave at least one user");
    if batch * 2 <= num_users {
        let mut gone = std::collections::BTreeSet::new();
        while gone.len() < batch {
            gone.insert(rng.gen_range(0..num_users));
        }
        gone.into_iter().collect()
    } else {
        let mut pool: Vec<usize> = (0..num_users).collect();
        for i in 0..batch {
            let j = rng.gen_range(i..num_users);
            pool.swap(i, j);
        }
        let mut gone = pool[..batch].to_vec();
        gone.sort_unstable();
        gone
    }
}

/// Whether a structural op should grow (vs shrink) a dimension: the grow
/// probability pulls the dimension back toward its base size, so long
/// streams hover around the seed shape instead of random-walking into
/// degenerate floors.
fn mean_revert_grow(rng: &mut StdRng, current: usize, base: usize) -> bool {
    let bias = (base as f64 - current as f64) / (2.0 * base.max(1) as f64);
    rng.gen_range(0.0..1.0) < (0.5 + bias).clamp(0.1, 0.9)
}

/// Emits one valid constraint edit against the mirrored live set,
/// mutating the mirror to match. Precedence edges only ever point from a
/// lower id to a higher one (acyclic under churn — see the module docs);
/// a cycle probe still guards against a base set that already carries
/// high-to-low edges. Saturated kinds (nothing left to remove, every pair
/// already conflicting) retry a few times, then fall back to a capacity
/// write, which is always valid because `SetVenueCapacity` overwrites.
fn constraint_op(
    rng: &mut StdRng,
    cs: &mut ConstraintSet,
    num_events: usize,
    num_locations: usize,
) -> DeltaOp {
    for _ in 0..16 {
        match rng.gen_range(0..6) {
            // Biased toward adds so streams grow rule mass to churn over.
            0 | 1 => {
                let a = EventId::new(rng.gen_range(0..num_events));
                let b = EventId::new(rng.gen_range(0..num_events));
                if a != b && !cs.has_conflict(a, b) {
                    cs.add_conflict(a, b);
                    return DeltaOp::AddConflict { a, b };
                }
            }
            2 => {
                if num_events < 2 {
                    continue;
                }
                let i = rng.gen_range(0..num_events - 1);
                let before = EventId::new(i);
                let after = EventId::new(rng.gen_range(i + 1..num_events));
                if !cs.has_precedence(before, after) && !cs.precedence_would_cycle(before, after) {
                    cs.add_precedence(before, after);
                    return DeltaOp::AddPrecedence { before, after };
                }
            }
            3 => {
                let location = LocationId::new(rng.gen_range(0..num_locations));
                let capacity = rng.gen_range(1..=4u32);
                cs.set_venue_capacity(location, capacity);
                return DeltaOp::SetVenueCapacity { location, capacity: Some(capacity) };
            }
            4 => {
                if !cs.conflicts().is_empty() {
                    let p = cs.conflicts()[rng.gen_range(0..cs.conflicts().len())];
                    cs.remove_conflict(p.a, p.b);
                    return DeltaOp::RemoveConflict { a: p.a, b: p.b };
                }
            }
            _ => {
                if !cs.precedences().is_empty() {
                    let e = cs.precedences()[rng.gen_range(0..cs.precedences().len())];
                    cs.remove_precedence(e.before, e.after);
                    return DeltaOp::RemovePrecedence { before: e.before, after: e.after };
                }
                if !cs.venue_capacities().is_empty() {
                    let v = cs.venue_capacities()[rng.gen_range(0..cs.venue_capacities().len())];
                    cs.clear_venue_capacity(v.location);
                    return DeltaOp::SetVenueCapacity { location: v.location, capacity: None };
                }
            }
        }
    }
    let location = LocationId::new(rng.gen_range(0..num_locations));
    cs.set_venue_capacity(location, 2);
    DeltaOp::SetVenueCapacity { location, capacity: Some(2) }
}

fn interest_value(rng: &mut StdRng, params: &OpStreamParams) -> f64 {
    if rng.gen_range(0.0..1.0) < params.interest_density {
        rng.gen_range(0.0..1.0)
    } else {
        0.0
    }
}

/// A [`DeltaOp`] stamped with its arrival time in a simulated feed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimedOp {
    /// Arrival offset from the start of the feed, in milliseconds.
    pub at_ms: u64,
    /// The op itself.
    pub op: DeltaOp,
}

/// Knobs of a bursty, redundancy-heavy arrival feed (see
/// [`generate_bursts`]).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BurstParams {
    /// Backbone stream: the churn mix, backbone op count, and seed — a
    /// feed with zero [`BurstParams::redundancy`] carries exactly
    /// `generate(base, &ops)` as its op sequence.
    pub ops: OpStreamParams,
    /// Mean ops per burst; actual burst lengths jitter within ±50%.
    pub burst_len: usize,
    /// Quiet gap between bursts, in milliseconds.
    pub gap_ms: u64,
    /// Spacing between consecutive arrivals inside a burst, in
    /// milliseconds.
    pub intra_ms: u64,
    /// Redundancy pressure: after each backbone op, follower drifts that
    /// re-touch recently drifted cells are emitted while a coin at this
    /// probability keeps landing (capped at 4 per backbone op). `0.0`
    /// emits the bare backbone.
    pub redundancy: f64,
}

impl Default for BurstParams {
    fn default() -> Self {
        Self {
            ops: OpStreamParams::default(),
            burst_len: 16,
            gap_ms: 250,
            intra_ms: 5,
            redundancy: 0.5,
        }
    }
}

impl BurstParams {
    /// Overrides the backbone stream parameters.
    #[must_use]
    pub fn with_ops(mut self, ops: OpStreamParams) -> Self {
        self.ops = ops;
        self
    }

    /// Overrides the mean burst length.
    #[must_use]
    pub fn with_burst_len(mut self, burst_len: usize) -> Self {
        self.burst_len = burst_len;
        self
    }

    /// Overrides the redundancy pressure.
    #[must_use]
    pub fn with_redundancy(mut self, redundancy: f64) -> Self {
        self.redundancy = redundancy;
        self
    }
}

/// How many recently drifted cells redundant followers re-target.
const RECENT_CELLS: usize = 8;
/// Cap on redundant followers per backbone op (keeps the geometric coin
/// from inflating the feed unboundedly at redundancy near 1).
const MAX_FOLLOWERS: usize = 4;

/// Generates a timestamped, bursty arrival feed against `base`: the
/// backbone op sequence of `generate(base, &params.ops)` interleaved with
/// redundant follower drifts that re-touch recently drifted cells, carved
/// into bursts separated by quiet gaps.
///
/// The feed is what a windowed ingestor wants to chew on: follower drifts
/// re-write cells the window already touched, so coalescing collapses them
/// (the whole point of `ses stream --window`). Ops are valid when applied
/// in order, arrival times are nondecreasing, and the feed is
/// deterministic per `(base, params)`. The burst/redundancy layer draws
/// from its own RNG, so the backbone stays byte-identical to
/// [`generate`] with the same [`OpStreamParams`] at any redundancy.
///
/// # Panics
/// Panics if `base` has no events or users (an invalid instance).
pub fn generate_bursts(base: &Instance, params: &BurstParams) -> Vec<TimedOp> {
    let backbone = generate(base, &params.ops);
    let mut rng = StdRng::seed_from_u64(params.ops.seed ^ 0x00B0_0575);
    let mut num_events = base.num_events();
    let mut num_users = base.num_users();
    // Recently drifted cells still valid under the current shape, newest
    // last, with the value last written to them.
    let mut recent: Vec<(usize, usize, f64)> = Vec::with_capacity(RECENT_CELLS);

    let burst_len = params.burst_len.max(1);
    let mut feed = Vec::with_capacity(backbone.len());
    let mut t: u64 = 0;
    let mut in_burst = 0usize;
    let mut target = jitter_burst_len(&mut rng, burst_len);
    let mut push = |rng: &mut StdRng, op: DeltaOp, feed: &mut Vec<TimedOp>| {
        if in_burst >= target {
            t += params.gap_ms;
            in_burst = 0;
            target = jitter_burst_len(rng, burst_len);
        } else if !feed.is_empty() {
            t += params.intra_ms;
        }
        in_burst += 1;
        feed.push(TimedOp { at_ms: t, op });
    };

    for op in backbone {
        // Track the evolving shape and keep `recent` valid under it, in
        // lock-step with the dense-id shifts `delta::apply` performs.
        match &op {
            DeltaOp::ShiftInterest { event, user, interest } => {
                remember(&mut recent, event.index(), *user, *interest);
            }
            DeltaOp::AddEvent { .. } => num_events += 1,
            DeltaOp::RemoveEvent { event } => {
                let e = event.index();
                recent.retain(|&(ce, _, _)| ce != e);
                for cell in &mut recent {
                    if cell.0 > e {
                        cell.0 -= 1;
                    }
                }
                num_events -= 1;
            }
            DeltaOp::AddUsers { users } => num_users += users.len(),
            DeltaOp::RetireUsers { users } => {
                recent.retain(|&(_, cu, _)| !users.contains(&cu));
                for cell in &mut recent {
                    cell.1 -= users.iter().filter(|&&u| u < cell.1).count();
                }
                num_users -= users.len();
            }
            _ => {}
        }
        push(&mut rng, op, &mut feed);

        let mut followers = 0;
        while followers < MAX_FOLLOWERS && rng.gen_range(0.0..1.0) < params.redundancy {
            followers += 1;
            let (event, user, prev) = match recent.last() {
                // Bias toward hammering the newest cell; otherwise any
                // recently drifted one.
                Some(_) if rng.gen_range(0.0..1.0) < 0.5 => *recent.last().unwrap(),
                Some(_) => recent[rng.gen_range(0..recent.len())],
                None => (rng.gen_range(0..num_events), rng.gen_range(0..num_users), f64::NAN),
            };
            // Half the followers re-send the previous value verbatim (a
            // pure duplicate), half drift the cell again.
            let interest = if prev.is_finite() && rng.gen_range(0.0..1.0) < 0.5 {
                prev
            } else {
                rng.gen_range(0.0..1.0)
            };
            remember(&mut recent, event, user, interest);
            push(
                &mut rng,
                DeltaOp::ShiftInterest { event: EventId::new(event), user, interest },
                &mut feed,
            );
        }
    }
    feed
}

/// Records a drifted cell as most-recent, deduplicating and bounding the
/// recency list at [`RECENT_CELLS`].
fn remember(recent: &mut Vec<(usize, usize, f64)>, event: usize, user: usize, value: f64) {
    recent.retain(|&(ce, cu, _)| (ce, cu) != (event, user));
    if recent.len() == RECENT_CELLS {
        recent.remove(0);
    }
    recent.push((event, user, value));
}

/// Draws an actual burst length around the mean, within ±50%.
fn jitter_burst_len(rng: &mut StdRng, mean: usize) -> usize {
    let lo = (mean - mean / 2).max(1);
    let hi = mean + mean / 2;
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;
    use ses_core::delta;

    fn base() -> Instance {
        Dataset::Unf.build(30, 12, 5, 0xB0)
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let inst = base();
        let p = OpStreamParams::default().with_ops(60).with_churn(0.5);
        assert_eq!(generate(&inst, &p), generate(&inst, &p));
        assert_ne!(generate(&inst, &p), generate(&inst, &p.with_seed(9)));
    }

    #[test]
    fn generated_streams_apply_cleanly() {
        let inst = base();
        for churn in [0.0, 0.4, 1.0] {
            for user_churn in [0.0, 0.5, 1.0] {
                let p = OpStreamParams::default()
                    .with_ops(200)
                    .with_churn(churn)
                    .with_user_churn(user_churn)
                    .with_seed(3);
                let ops = generate(&inst, &p);
                assert_eq!(ops.len(), 200);
                let materialized = delta::materialize(&inst, &ops)
                    .unwrap_or_else(|e| panic!("churn {churn}/{user_churn}: {e}"));
                assert!(materialized.validate().is_ok());
                assert!(materialized.num_events() >= MIN_EVENTS);
                assert!(materialized.num_users() >= MIN_USERS.min(inst.num_users()));
            }
        }
    }

    #[test]
    fn zero_churn_is_pure_drift() {
        let inst = base();
        let ops = generate(&inst, &OpStreamParams::default().with_ops(50).with_churn(0.0));
        assert!(ops.iter().all(|op| matches!(op, DeltaOp::ShiftInterest { .. })));
    }

    #[test]
    fn density_controls_zeros() {
        let inst = base();
        let p = OpStreamParams::default().with_ops(80).with_churn(0.0).with_interest_density(0.2);
        let ops = generate(&inst, &p);
        let zeros = ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::ShiftInterest { interest, .. } if *interest == 0.0))
            .count();
        assert!(zeros > ops.len() / 2, "density 0.2 should zero most drifts ({zeros}/80)");
    }

    fn is_constraint_op(op: &DeltaOp) -> bool {
        matches!(
            op,
            DeltaOp::AddConflict { .. }
                | DeltaOp::RemoveConflict { .. }
                | DeltaOp::AddPrecedence { .. }
                | DeltaOp::RemovePrecedence { .. }
                | DeltaOp::SetVenueCapacity { .. }
        )
    }

    #[test]
    fn zero_constraint_churn_emits_no_constraint_ops() {
        let inst = base();
        let p = OpStreamParams::default().with_ops(150).with_churn(0.6);
        assert!((p.constraint_churn - 0.0).abs() < f64::EPSILON, "knob must default off");
        assert!(!generate(&inst, &p).iter().any(is_constraint_op));
    }

    #[test]
    fn constraint_streams_apply_cleanly_under_event_churn() {
        // Start from an already-constrained base so removals and shifts
        // exercise the mirror, then churn both events and rules hard.
        let mut inst = base();
        crate::ConstraintFamily::Mixed.apply(&mut inst, 0x5EED);
        let p = OpStreamParams::default()
            .with_ops(300)
            .with_churn(0.5)
            .with_user_churn(0.0)
            .with_constraint_churn(0.4)
            .with_seed(4);
        let ops = generate(&inst, &p);
        let constraint_ops = ops.iter().filter(|op| is_constraint_op(op)).count();
        assert!(constraint_ops > 60, "expected a thick constraint slice, got {constraint_ops}");
        assert!(ops.iter().any(|op| matches!(op, DeltaOp::AddConflict { .. })));
        assert!(ops.iter().any(|op| matches!(op, DeltaOp::AddPrecedence { .. })));
        assert!(ops.iter().any(|op| matches!(op, DeltaOp::SetVenueCapacity { .. })));
        assert!(ops.iter().any(|op| matches!(op, DeltaOp::RemoveEvent { .. })));
        let materialized = delta::materialize(&inst, &ops).expect("stream must apply cleanly");
        assert!(materialized.validate().is_ok());
    }

    #[test]
    fn constraint_streams_are_deterministic_per_seed() {
        let inst = base();
        let p = OpStreamParams::default().with_ops(120).with_constraint_churn(0.5);
        assert_eq!(generate(&inst, &p), generate(&inst, &p));
        assert_ne!(generate(&inst, &p), generate(&inst, &p.with_seed(77)));
    }

    #[test]
    fn pure_constraint_churn_survives_saturation() {
        // Only two events: one possible conflict pair, one possible
        // precedence edge. A long pure-constraint stream saturates both
        // axes and must keep emitting valid ops (capacity fallback).
        let inst = Dataset::Unf.build(12, 2, 4, 0xB1);
        let p = OpStreamParams::default().with_ops(120).with_constraint_churn(1.0).with_seed(6);
        let ops = generate(&inst, &p);
        assert!(ops.iter().all(is_constraint_op));
        let materialized = delta::materialize(&inst, &ops).expect("saturated stream must apply");
        assert!(materialized.validate().is_ok());
    }

    #[test]
    fn dense_retire_draws_stay_bounded_and_valid() {
        // users_per_batch close to the pool size used to drive the
        // rejection-sampling draw into unbounded retry territory; the
        // Fisher–Yates regime must finish immediately and stay valid.
        let inst = Dataset::Unf.build(40, 12, 5, 0xB0);
        let mut p = OpStreamParams::default()
            .with_ops(120)
            .with_churn(1.0)
            .with_user_churn(1.0)
            .with_seed(11);
        p.users_per_batch = 30;
        let ops = generate(&inst, &p);
        let retire = ops
            .iter()
            .find_map(|op| match op {
                DeltaOp::RetireUsers { users } => Some(users.clone()),
                _ => None,
            })
            .expect("a 120-op pure-user-churn stream must retire at least once");
        assert_eq!(retire.len(), 30);
        assert!(retire.windows(2).all(|w| w[0] < w[1]), "ids must be strictly ascending");
        assert!(delta::materialize(&inst, &ops).is_ok());
    }

    #[test]
    fn sparse_retire_draws_match_the_historical_sampler() {
        // The sparse regime must reproduce the original rejection-sampling
        // draw bit-for-bit — every seeded default lives there, and the
        // stream goldens pin it.
        use rand::{Rng, SeedableRng};
        for seed in [0u64, 7, 0xD15] {
            let mut a = rand::rngs::StdRng::seed_from_u64(seed);
            let mut b = rand::rngs::StdRng::seed_from_u64(seed);
            let mut gone = std::collections::BTreeSet::new();
            while gone.len() < 4 {
                gone.insert(a.gen_range(0..40));
            }
            let old: Vec<usize> = gone.into_iter().collect();
            assert_eq!(super::draw_retirees(&mut b, 40, 4), old);
        }
    }

    #[test]
    fn burst_feeds_are_deterministic_and_apply_cleanly() {
        let inst = base();
        let p = BurstParams::default().with_ops(OpStreamParams::default().with_ops(80));
        let feed = generate_bursts(&inst, &p);
        assert_eq!(feed, generate_bursts(&inst, &p));
        assert!(feed.len() >= 80, "redundant followers only add ops");
        assert!(feed.windows(2).all(|w| w[0].at_ms <= w[1].at_ms), "arrivals nondecreasing");
        assert!(
            feed.windows(2).any(|w| w[1].at_ms - w[0].at_ms >= p.gap_ms),
            "a feed spanning several bursts must show a quiet gap"
        );
        let ops: Vec<DeltaOp> = feed.iter().map(|t| t.op.clone()).collect();
        assert!(delta::materialize(&inst, &ops).expect("feed must apply").validate().is_ok());
    }

    #[test]
    fn zero_redundancy_feed_is_the_backbone() {
        let inst = base();
        let p = BurstParams::default()
            .with_ops(OpStreamParams::default().with_ops(60).with_churn(0.5))
            .with_redundancy(0.0);
        let ops: Vec<DeltaOp> = generate_bursts(&inst, &p).into_iter().map(|t| t.op).collect();
        assert_eq!(ops, generate(&inst, &p.ops));
    }

    #[test]
    fn redundant_feeds_coalesce_well() {
        let inst = base();
        let p = BurstParams::default()
            .with_ops(OpStreamParams::default().with_ops(100))
            .with_redundancy(0.8);
        let feed = generate_bursts(&inst, &p);
        assert!(feed.len() > 130, "redundancy 0.8 should inflate the feed, got {}", feed.len());
        let mut cur = inst.clone();
        let (mut total, mut coalesced) = (0usize, 0usize);
        for window in feed.chunks(32) {
            let ops: Vec<DeltaOp> = window.iter().map(|t| t.op.clone()).collect();
            let batch = delta::coalesce::coalesce(&cur, &ops).expect("feed windows are valid");
            total += ops.len();
            coalesced += batch.len();
            cur = delta::materialize(&cur, &ops).unwrap();
        }
        assert!(
            coalesced * 4 <= total * 3,
            "redundant windows should shed at least a quarter of their ops \
             ({coalesced}/{total} survived)"
        );
    }

    #[test]
    fn weighted_bases_get_weighted_users() {
        let mut inst = base();
        inst.user_weights = Some(vec![1.0; inst.num_users()]);
        let p = OpStreamParams::default().with_ops(120).with_churn(1.0).with_user_churn(1.0);
        let ops = generate(&inst, &p);
        assert!(delta::materialize(&inst, &ops).is_ok());
        assert!(ops.iter().any(|op| matches!(op, DeltaOp::AddUsers { .. })));
    }
}
