//! Seeded op-stream generator for dynamic-workload experiments: a churning
//! sequence of [`DeltaOp`]s against a base [`Instance`], with knobs for how
//! much of the stream is structural churn (events and users arriving and
//! departing) versus plain interest drift.
//!
//! The generator tracks the evolving shape (`|E|`, `|U|`) as it emits ops,
//! so every op in the stream is valid when applied in order. Structural
//! churn is *mean-reverting* — the grow/shrink coin is biased toward the
//! base shape — so long streams hover around the seed sizes, and hard
//! floors keep removals from draining a dimension outright. Streams are
//! deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_core::delta::{DeltaOp, NewUser};
use ses_core::model::{Event, Instance};
use ses_core::{EventId, LocationId};

/// Never remove events below this count.
pub const MIN_EVENTS: usize = 2;
/// Never retire users below this count.
pub const MIN_USERS: usize = 8;

/// Knobs of a generated op stream.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OpStreamParams {
    /// Number of ops to generate.
    pub num_ops: usize,
    /// Probability an op is *structural* (add/remove events, add/retire
    /// users) rather than a [`DeltaOp::ShiftInterest`] drift.
    pub churn: f64,
    /// Among structural ops, the probability the op targets users rather
    /// than events.
    pub user_churn: f64,
    /// Users per [`DeltaOp::AddUsers`] / [`DeltaOp::RetireUsers`] batch.
    pub users_per_batch: usize,
    /// Probability a generated interest value is non-zero (1.0 = dense;
    /// lower values imitate sparse EBSN interest).
    pub interest_density: f64,
    /// RNG seed; streams are deterministic per (base, params).
    pub seed: u64,
}

impl Default for OpStreamParams {
    fn default() -> Self {
        Self {
            num_ops: 100,
            churn: 0.3,
            user_churn: 0.3,
            users_per_batch: 4,
            interest_density: 1.0,
            seed: 0x0D5,
        }
    }
}

impl OpStreamParams {
    /// Overrides the op count.
    #[must_use]
    pub fn with_ops(mut self, n: usize) -> Self {
        self.num_ops = n;
        self
    }

    /// Overrides the structural-churn probability.
    #[must_use]
    pub fn with_churn(mut self, churn: f64) -> Self {
        self.churn = churn;
        self
    }

    /// Overrides the user-vs-event structural split.
    #[must_use]
    pub fn with_user_churn(mut self, user_churn: f64) -> Self {
        self.user_churn = user_churn;
        self
    }

    /// Overrides the interest density of generated values.
    #[must_use]
    pub fn with_interest_density(mut self, density: f64) -> Self {
        self.interest_density = density;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a valid op stream against `base`: applying the returned ops in
/// order with `ses_core::delta::apply` never errors.
///
/// # Panics
/// Panics if `base` has no events or users (an invalid instance).
pub fn generate(base: &Instance, params: &OpStreamParams) -> Vec<DeltaOp> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut num_events = base.num_events();
    let mut num_users = base.num_users();
    assert!(num_events > 0 && num_users > 0, "base instance must be populated");
    let num_intervals = base.num_intervals();
    let num_competing = base.num_competing();
    let weighted = base.user_weights.is_some();
    let num_locations = base.events.iter().map(|e| e.location.index() + 1).max().unwrap_or(1);
    let max_req = if base.resources.is_finite() { (base.resources / 2.0).max(0.0) } else { 1.0 };

    let mut ops = Vec::with_capacity(params.num_ops);
    for _ in 0..params.num_ops {
        let structural = rng.gen_range(0.0..1.0) < params.churn;
        let op = if !structural {
            DeltaOp::ShiftInterest {
                event: EventId::new(rng.gen_range(0..num_events)),
                user: rng.gen_range(0..num_users),
                interest: interest_value(&mut rng, params),
            }
        } else if rng.gen_range(0.0..1.0) < params.user_churn {
            // User churn; grow when at the floor, otherwise mean-revert.
            let batch = params.users_per_batch.max(1);
            let can_retire = num_users >= MIN_USERS + batch;
            if !can_retire || mean_revert_grow(&mut rng, num_users, base.num_users()) {
                let users: Vec<NewUser> = (0..batch)
                    .map(|_| NewUser {
                        event_interest: (0..num_events)
                            .map(|_| interest_value(&mut rng, params))
                            .collect(),
                        competing_interest: (0..num_competing)
                            .map(|_| interest_value(&mut rng, params))
                            .collect(),
                        activity: (0..num_intervals).map(|_| rng.gen_range(0.0..1.0)).collect(),
                        weight: weighted.then(|| rng.gen_range(0.0..1.0)),
                    })
                    .collect();
                num_users += batch;
                DeltaOp::AddUsers { users }
            } else {
                let mut gone = std::collections::BTreeSet::new();
                while gone.len() < batch {
                    gone.insert(rng.gen_range(0..num_users));
                }
                num_users -= batch;
                DeltaOp::RetireUsers { users: gone.into_iter().collect() }
            }
        } else {
            // Event churn; grow when at the floor, otherwise mean-revert.
            if num_events <= MIN_EVENTS || mean_revert_grow(&mut rng, num_events, base.num_events())
            {
                let location = LocationId::new(rng.gen_range(0..num_locations));
                let required = if max_req > 0.0 { rng.gen_range(0.0..max_req) } else { 0.0 };
                let interest = (0..num_users).map(|_| interest_value(&mut rng, params)).collect();
                num_events += 1;
                DeltaOp::AddEvent { event: Event::new(location, required), interest }
            } else {
                let victim = rng.gen_range(0..num_events);
                num_events -= 1;
                DeltaOp::RemoveEvent { event: EventId::new(victim) }
            }
        };
        ops.push(op);
    }
    ops
}

/// Whether a structural op should grow (vs shrink) a dimension: the grow
/// probability pulls the dimension back toward its base size, so long
/// streams hover around the seed shape instead of random-walking into
/// degenerate floors.
fn mean_revert_grow(rng: &mut StdRng, current: usize, base: usize) -> bool {
    let bias = (base as f64 - current as f64) / (2.0 * base.max(1) as f64);
    rng.gen_range(0.0..1.0) < (0.5 + bias).clamp(0.1, 0.9)
}

fn interest_value(rng: &mut StdRng, params: &OpStreamParams) -> f64 {
    if rng.gen_range(0.0..1.0) < params.interest_density {
        rng.gen_range(0.0..1.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;
    use ses_core::delta;

    fn base() -> Instance {
        Dataset::Unf.build(30, 12, 5, 0xB0)
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let inst = base();
        let p = OpStreamParams::default().with_ops(60).with_churn(0.5);
        assert_eq!(generate(&inst, &p), generate(&inst, &p));
        assert_ne!(generate(&inst, &p), generate(&inst, &p.with_seed(9)));
    }

    #[test]
    fn generated_streams_apply_cleanly() {
        let inst = base();
        for churn in [0.0, 0.4, 1.0] {
            for user_churn in [0.0, 0.5, 1.0] {
                let p = OpStreamParams::default()
                    .with_ops(200)
                    .with_churn(churn)
                    .with_user_churn(user_churn)
                    .with_seed(3);
                let ops = generate(&inst, &p);
                assert_eq!(ops.len(), 200);
                let materialized = delta::materialize(&inst, &ops)
                    .unwrap_or_else(|e| panic!("churn {churn}/{user_churn}: {e}"));
                assert!(materialized.validate().is_ok());
                assert!(materialized.num_events() >= MIN_EVENTS);
                assert!(materialized.num_users() >= MIN_USERS.min(inst.num_users()));
            }
        }
    }

    #[test]
    fn zero_churn_is_pure_drift() {
        let inst = base();
        let ops = generate(&inst, &OpStreamParams::default().with_ops(50).with_churn(0.0));
        assert!(ops.iter().all(|op| matches!(op, DeltaOp::ShiftInterest { .. })));
    }

    #[test]
    fn density_controls_zeros() {
        let inst = base();
        let p = OpStreamParams::default().with_ops(80).with_churn(0.0).with_interest_density(0.2);
        let ops = generate(&inst, &p);
        let zeros = ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::ShiftInterest { interest, .. } if *interest == 0.0))
            .count();
        assert!(zeros > ops.len() / 2, "density 0.2 should zero most drifts ({zeros}/80)");
    }

    #[test]
    fn weighted_bases_get_weighted_users() {
        let mut inst = base();
        inst.user_weights = Some(vec![1.0; inst.num_users()]);
        let p = OpStreamParams::default().with_ops(120).with_churn(1.0).with_user_churn(1.0);
        let ops = generate(&inst, &p);
        assert!(delta::materialize(&inst, &ops).is_ok());
        assert!(ops.iter().any(|op| matches!(op, DeltaOp::AddUsers { .. })));
    }
}
