//! Seeded op-stream generator for dynamic-workload experiments: a churning
//! sequence of [`DeltaOp`]s against a base [`Instance`], with knobs for how
//! much of the stream is structural churn (events and users arriving and
//! departing) versus plain interest drift.
//!
//! The generator tracks the evolving shape (`|E|`, `|U|`) as it emits ops,
//! so every op in the stream is valid when applied in order. Structural
//! churn is *mean-reverting* — the grow/shrink coin is biased toward the
//! base shape — so long streams hover around the seed sizes, and hard
//! floors keep removals from draining a dimension outright. Streams are
//! deterministic per seed.
//!
//! With [`OpStreamParams::constraint_churn`] above zero, a slice of the
//! stream edits the instance's [`ConstraintSet`] (conflict pairs,
//! precedence edges, venue capacities). The generator mirrors the live
//! set — including [`ConstraintSet::remove_event`] shifts when an event
//! departs — so every emitted op is valid, and precedence edges only ever
//! point from a lower event id to a higher one, which keeps the relation
//! acyclic under arbitrary churn (removals preserve relative id order and
//! new events append at the tail). At the default `0.0` the knob draws no
//! RNG values at all, so pre-existing streams are byte-stable per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_core::constraints::ConstraintSet;
use ses_core::delta::{DeltaOp, NewUser};
use ses_core::model::{Event, Instance};
use ses_core::{EventId, LocationId};

/// Never remove events below this count.
pub const MIN_EVENTS: usize = 2;
/// Never retire users below this count.
pub const MIN_USERS: usize = 8;

/// Knobs of a generated op stream.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OpStreamParams {
    /// Number of ops to generate.
    pub num_ops: usize,
    /// Probability an op is *structural* (add/remove events, add/retire
    /// users) rather than a [`DeltaOp::ShiftInterest`] drift.
    pub churn: f64,
    /// Among structural ops, the probability the op targets users rather
    /// than events.
    pub user_churn: f64,
    /// Users per [`DeltaOp::AddUsers`] / [`DeltaOp::RetireUsers`] batch.
    pub users_per_batch: usize,
    /// Probability a generated interest value is non-zero (1.0 = dense;
    /// lower values imitate sparse EBSN interest).
    pub interest_density: f64,
    /// Probability an op edits the constraint set (conflicts, precedences,
    /// venue capacities) instead of anything else. Checked *before* the
    /// structural coin; `0.0` (the default) draws no RNG values, so
    /// streams generated without the knob are byte-stable per seed.
    #[serde(default)]
    pub constraint_churn: f64,
    /// RNG seed; streams are deterministic per (base, params).
    pub seed: u64,
}

impl Default for OpStreamParams {
    fn default() -> Self {
        Self {
            num_ops: 100,
            churn: 0.3,
            user_churn: 0.3,
            users_per_batch: 4,
            interest_density: 1.0,
            constraint_churn: 0.0,
            seed: 0x0D5,
        }
    }
}

impl OpStreamParams {
    /// Overrides the op count.
    #[must_use]
    pub fn with_ops(mut self, n: usize) -> Self {
        self.num_ops = n;
        self
    }

    /// Overrides the structural-churn probability.
    #[must_use]
    pub fn with_churn(mut self, churn: f64) -> Self {
        self.churn = churn;
        self
    }

    /// Overrides the user-vs-event structural split.
    #[must_use]
    pub fn with_user_churn(mut self, user_churn: f64) -> Self {
        self.user_churn = user_churn;
        self
    }

    /// Overrides the interest density of generated values.
    #[must_use]
    pub fn with_interest_density(mut self, density: f64) -> Self {
        self.interest_density = density;
        self
    }

    /// Overrides the constraint-churn probability.
    #[must_use]
    pub fn with_constraint_churn(mut self, constraint_churn: f64) -> Self {
        self.constraint_churn = constraint_churn;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a valid op stream against `base`: applying the returned ops in
/// order with `ses_core::delta::apply` never errors.
///
/// # Panics
/// Panics if `base` has no events or users (an invalid instance).
pub fn generate(base: &Instance, params: &OpStreamParams) -> Vec<DeltaOp> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut num_events = base.num_events();
    let mut num_users = base.num_users();
    assert!(num_events > 0 && num_users > 0, "base instance must be populated");
    let num_intervals = base.num_intervals();
    let num_competing = base.num_competing();
    let weighted = base.user_weights.is_some();
    let num_locations = base.events.iter().map(|e| e.location.index() + 1).max().unwrap_or(1);
    let max_req = if base.resources.is_finite() { (base.resources / 2.0).max(0.0) } else { 1.0 };

    let mut constraints = base.constraints.clone();

    let mut ops = Vec::with_capacity(params.num_ops);
    for _ in 0..params.num_ops {
        // Constraint coin first, gated on the knob so the default 0.0
        // draws nothing and leaves pre-existing streams byte-stable.
        if params.constraint_churn > 0.0 && rng.gen_range(0.0..1.0) < params.constraint_churn {
            ops.push(constraint_op(&mut rng, &mut constraints, num_events, num_locations));
            continue;
        }
        let structural = rng.gen_range(0.0..1.0) < params.churn;
        let op = if !structural {
            DeltaOp::ShiftInterest {
                event: EventId::new(rng.gen_range(0..num_events)),
                user: rng.gen_range(0..num_users),
                interest: interest_value(&mut rng, params),
            }
        } else if rng.gen_range(0.0..1.0) < params.user_churn {
            // User churn; grow when at the floor, otherwise mean-revert.
            let batch = params.users_per_batch.max(1);
            let can_retire = num_users >= MIN_USERS + batch;
            if !can_retire || mean_revert_grow(&mut rng, num_users, base.num_users()) {
                let users: Vec<NewUser> = (0..batch)
                    .map(|_| NewUser {
                        event_interest: (0..num_events)
                            .map(|_| interest_value(&mut rng, params))
                            .collect(),
                        competing_interest: (0..num_competing)
                            .map(|_| interest_value(&mut rng, params))
                            .collect(),
                        activity: (0..num_intervals).map(|_| rng.gen_range(0.0..1.0)).collect(),
                        weight: weighted.then(|| rng.gen_range(0.0..1.0)),
                    })
                    .collect();
                num_users += batch;
                DeltaOp::AddUsers { users }
            } else {
                let mut gone = std::collections::BTreeSet::new();
                while gone.len() < batch {
                    gone.insert(rng.gen_range(0..num_users));
                }
                num_users -= batch;
                DeltaOp::RetireUsers { users: gone.into_iter().collect() }
            }
        } else {
            // Event churn; grow when at the floor, otherwise mean-revert.
            if num_events <= MIN_EVENTS || mean_revert_grow(&mut rng, num_events, base.num_events())
            {
                let location = LocationId::new(rng.gen_range(0..num_locations));
                let required = if max_req > 0.0 { rng.gen_range(0.0..max_req) } else { 0.0 };
                let interest = (0..num_users).map(|_| interest_value(&mut rng, params)).collect();
                num_events += 1;
                DeltaOp::AddEvent { event: Event::new(location, required), interest }
            } else {
                let victim = rng.gen_range(0..num_events);
                num_events -= 1;
                // Keep the constraint mirror in lock-step with the dense-id
                // shift `delta::apply` performs on removal.
                constraints.remove_event(EventId::new(victim));
                DeltaOp::RemoveEvent { event: EventId::new(victim) }
            }
        };
        ops.push(op);
    }
    ops
}

/// Whether a structural op should grow (vs shrink) a dimension: the grow
/// probability pulls the dimension back toward its base size, so long
/// streams hover around the seed shape instead of random-walking into
/// degenerate floors.
fn mean_revert_grow(rng: &mut StdRng, current: usize, base: usize) -> bool {
    let bias = (base as f64 - current as f64) / (2.0 * base.max(1) as f64);
    rng.gen_range(0.0..1.0) < (0.5 + bias).clamp(0.1, 0.9)
}

/// Emits one valid constraint edit against the mirrored live set,
/// mutating the mirror to match. Precedence edges only ever point from a
/// lower id to a higher one (acyclic under churn — see the module docs);
/// a cycle probe still guards against a base set that already carries
/// high-to-low edges. Saturated kinds (nothing left to remove, every pair
/// already conflicting) retry a few times, then fall back to a capacity
/// write, which is always valid because `SetVenueCapacity` overwrites.
fn constraint_op(
    rng: &mut StdRng,
    cs: &mut ConstraintSet,
    num_events: usize,
    num_locations: usize,
) -> DeltaOp {
    for _ in 0..16 {
        match rng.gen_range(0..6) {
            // Biased toward adds so streams grow rule mass to churn over.
            0 | 1 => {
                let a = EventId::new(rng.gen_range(0..num_events));
                let b = EventId::new(rng.gen_range(0..num_events));
                if a != b && !cs.has_conflict(a, b) {
                    cs.add_conflict(a, b);
                    return DeltaOp::AddConflict { a, b };
                }
            }
            2 => {
                if num_events < 2 {
                    continue;
                }
                let i = rng.gen_range(0..num_events - 1);
                let before = EventId::new(i);
                let after = EventId::new(rng.gen_range(i + 1..num_events));
                if !cs.has_precedence(before, after) && !cs.precedence_would_cycle(before, after) {
                    cs.add_precedence(before, after);
                    return DeltaOp::AddPrecedence { before, after };
                }
            }
            3 => {
                let location = LocationId::new(rng.gen_range(0..num_locations));
                let capacity = rng.gen_range(1..=4u32);
                cs.set_venue_capacity(location, capacity);
                return DeltaOp::SetVenueCapacity { location, capacity: Some(capacity) };
            }
            4 => {
                if !cs.conflicts().is_empty() {
                    let p = cs.conflicts()[rng.gen_range(0..cs.conflicts().len())];
                    cs.remove_conflict(p.a, p.b);
                    return DeltaOp::RemoveConflict { a: p.a, b: p.b };
                }
            }
            _ => {
                if !cs.precedences().is_empty() {
                    let e = cs.precedences()[rng.gen_range(0..cs.precedences().len())];
                    cs.remove_precedence(e.before, e.after);
                    return DeltaOp::RemovePrecedence { before: e.before, after: e.after };
                }
                if !cs.venue_capacities().is_empty() {
                    let v = cs.venue_capacities()[rng.gen_range(0..cs.venue_capacities().len())];
                    cs.clear_venue_capacity(v.location);
                    return DeltaOp::SetVenueCapacity { location: v.location, capacity: None };
                }
            }
        }
    }
    let location = LocationId::new(rng.gen_range(0..num_locations));
    cs.set_venue_capacity(location, 2);
    DeltaOp::SetVenueCapacity { location, capacity: Some(2) }
}

fn interest_value(rng: &mut StdRng, params: &OpStreamParams) -> f64 {
    if rng.gen_range(0.0..1.0) < params.interest_density {
        rng.gen_range(0.0..1.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;
    use ses_core::delta;

    fn base() -> Instance {
        Dataset::Unf.build(30, 12, 5, 0xB0)
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let inst = base();
        let p = OpStreamParams::default().with_ops(60).with_churn(0.5);
        assert_eq!(generate(&inst, &p), generate(&inst, &p));
        assert_ne!(generate(&inst, &p), generate(&inst, &p.with_seed(9)));
    }

    #[test]
    fn generated_streams_apply_cleanly() {
        let inst = base();
        for churn in [0.0, 0.4, 1.0] {
            for user_churn in [0.0, 0.5, 1.0] {
                let p = OpStreamParams::default()
                    .with_ops(200)
                    .with_churn(churn)
                    .with_user_churn(user_churn)
                    .with_seed(3);
                let ops = generate(&inst, &p);
                assert_eq!(ops.len(), 200);
                let materialized = delta::materialize(&inst, &ops)
                    .unwrap_or_else(|e| panic!("churn {churn}/{user_churn}: {e}"));
                assert!(materialized.validate().is_ok());
                assert!(materialized.num_events() >= MIN_EVENTS);
                assert!(materialized.num_users() >= MIN_USERS.min(inst.num_users()));
            }
        }
    }

    #[test]
    fn zero_churn_is_pure_drift() {
        let inst = base();
        let ops = generate(&inst, &OpStreamParams::default().with_ops(50).with_churn(0.0));
        assert!(ops.iter().all(|op| matches!(op, DeltaOp::ShiftInterest { .. })));
    }

    #[test]
    fn density_controls_zeros() {
        let inst = base();
        let p = OpStreamParams::default().with_ops(80).with_churn(0.0).with_interest_density(0.2);
        let ops = generate(&inst, &p);
        let zeros = ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::ShiftInterest { interest, .. } if *interest == 0.0))
            .count();
        assert!(zeros > ops.len() / 2, "density 0.2 should zero most drifts ({zeros}/80)");
    }

    fn is_constraint_op(op: &DeltaOp) -> bool {
        matches!(
            op,
            DeltaOp::AddConflict { .. }
                | DeltaOp::RemoveConflict { .. }
                | DeltaOp::AddPrecedence { .. }
                | DeltaOp::RemovePrecedence { .. }
                | DeltaOp::SetVenueCapacity { .. }
        )
    }

    #[test]
    fn zero_constraint_churn_emits_no_constraint_ops() {
        let inst = base();
        let p = OpStreamParams::default().with_ops(150).with_churn(0.6);
        assert!((p.constraint_churn - 0.0).abs() < f64::EPSILON, "knob must default off");
        assert!(!generate(&inst, &p).iter().any(is_constraint_op));
    }

    #[test]
    fn constraint_streams_apply_cleanly_under_event_churn() {
        // Start from an already-constrained base so removals and shifts
        // exercise the mirror, then churn both events and rules hard.
        let mut inst = base();
        crate::ConstraintFamily::Mixed.apply(&mut inst, 0x5EED);
        let p = OpStreamParams::default()
            .with_ops(300)
            .with_churn(0.5)
            .with_user_churn(0.0)
            .with_constraint_churn(0.4)
            .with_seed(4);
        let ops = generate(&inst, &p);
        let constraint_ops = ops.iter().filter(|op| is_constraint_op(op)).count();
        assert!(constraint_ops > 60, "expected a thick constraint slice, got {constraint_ops}");
        assert!(ops.iter().any(|op| matches!(op, DeltaOp::AddConflict { .. })));
        assert!(ops.iter().any(|op| matches!(op, DeltaOp::AddPrecedence { .. })));
        assert!(ops.iter().any(|op| matches!(op, DeltaOp::SetVenueCapacity { .. })));
        assert!(ops.iter().any(|op| matches!(op, DeltaOp::RemoveEvent { .. })));
        let materialized = delta::materialize(&inst, &ops).expect("stream must apply cleanly");
        assert!(materialized.validate().is_ok());
    }

    #[test]
    fn constraint_streams_are_deterministic_per_seed() {
        let inst = base();
        let p = OpStreamParams::default().with_ops(120).with_constraint_churn(0.5);
        assert_eq!(generate(&inst, &p), generate(&inst, &p));
        assert_ne!(generate(&inst, &p), generate(&inst, &p.with_seed(77)));
    }

    #[test]
    fn pure_constraint_churn_survives_saturation() {
        // Only two events: one possible conflict pair, one possible
        // precedence edge. A long pure-constraint stream saturates both
        // axes and must keep emitting valid ops (capacity fallback).
        let inst = Dataset::Unf.build(12, 2, 4, 0xB1);
        let p = OpStreamParams::default().with_ops(120).with_constraint_churn(1.0).with_seed(6);
        let ops = generate(&inst, &p);
        assert!(ops.iter().all(is_constraint_op));
        let materialized = delta::materialize(&inst, &ops).expect("saturated stream must apply");
        assert!(materialized.validate().is_ok());
    }

    #[test]
    fn weighted_bases_get_weighted_users() {
        let mut inst = base();
        inst.user_weights = Some(vec![1.0; inst.num_users()]);
        let p = OpStreamParams::default().with_ops(120).with_churn(1.0).with_user_churn(1.0);
        let ops = generate(&inst, &p);
        assert!(delta::materialize(&inst, &ops).is_ok());
        assert!(ops.iter().any(|op| matches!(op, DeltaOp::AddUsers { .. })));
    }
}
