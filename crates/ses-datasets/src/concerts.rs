//! Simulated **Concerts** dataset (Yahoo! Music).
//!
//! The paper's largest dataset derives from Yahoo!'s "Music user ratings of
//! musical tracks, albums, artists and genres": albums act as candidate
//! concerts, and interest is computed from the user's *genre* ratings —
//! §4.1's exact formula:
//!
//! > `interest(u, album a) = (Σ_{g ∈ G_a} r_g) / |G_a|`, where `r_g = 1` if
//! > genre `g` is not rated by `u`.
//!
//! The "unrated ⇒ 1.0" default makes Concerts interest **dense and
//! high-valued** — the distinguishing property of this dataset in Figs 5–7
//! (largest utilities, every event broadly attractive). This module
//! reproduces the derivation pipeline on synthetic ratings:
//!
//! * genres have Zipf popularity (both for album tagging and user rating);
//! * each album links to `1..=3` genres;
//! * each user rates at least `min_rated` genres (the paper filters users
//!   with ≥ 10 rated genres), ratings `U[0, 1)`.

use crate::distributions::Zipf;
use crate::params::quantize;
use crate::scaffold::{random_competing, random_events};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ses_core::model::{ActivityMatrix, Instance, InstanceBuilder, InterestMatrix, StorageKind};

/// Parameters of the Concerts-like generator. Defaults are scaled down from
/// the real 379K-user corpus for laptop runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConcertsParams {
    /// Number of users (paper: 379,391).
    pub num_users: usize,
    /// Number of candidate albums/concerts (paper: 89K albums, 500 used
    /// as candidates per the |E| default).
    pub num_events: usize,
    /// Number of candidate intervals.
    pub num_intervals: usize,
    /// Genre vocabulary size.
    pub num_genres: usize,
    /// Genres per album (inclusive range; paper's albums have ≥ 1).
    pub genres_per_album: (usize, usize),
    /// Minimum genres rated per user (paper filters at 10).
    pub min_rated_genres: usize,
    /// Maximum genres rated per user.
    pub max_rated_genres: usize,
    /// Zipf exponent of genre popularity.
    pub genre_skew: f64,
    /// Competing events per interval (inclusive uniform range).
    pub competing_per_interval: (u64, u64),
    /// Number of locations (stages).
    pub num_locations: usize,
    /// Organizer resources θ.
    pub resources: f64,
    /// Max required resources (ξ ~ U[1, max]).
    pub max_required_resources: f64,
    /// RNG seed.
    pub seed: u64,
    /// Interest quantization levels (0 = continuous; see
    /// [`crate::params::quantize`]). Concerts interest is dense, so this is
    /// what makes the compressed backend's dictionary small.
    #[serde(default)]
    pub interest_levels: usize,
}

impl Default for ConcertsParams {
    fn default() -> Self {
        Self {
            num_users: 4_000,
            num_events: 500,
            num_intervals: 150,
            num_genres: 30,
            genres_per_album: (1, 3),
            min_rated_genres: 10,
            max_rated_genres: 25,
            genre_skew: 1.0,
            competing_per_interval: (1, 16),
            num_locations: 25,
            resources: 30.0,
            max_required_resources: 15.0,
            seed: 0x59414845, // "YAHE"
            interest_levels: 0,
        }
    }
}

impl ConcertsParams {
    /// Overrides the user count.
    #[must_use]
    pub fn with_users(mut self, n: usize) -> Self {
        self.num_users = n;
        self
    }

    /// Overrides the event count.
    #[must_use]
    pub fn with_events(mut self, n: usize) -> Self {
        self.num_events = n;
        self
    }

    /// Overrides the interval count.
    #[must_use]
    pub fn with_intervals(mut self, n: usize) -> Self {
        self.num_intervals = n;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the interest quantization level count (0 = continuous).
    #[must_use]
    pub fn with_interest_levels(mut self, interest_levels: usize) -> Self {
        self.interest_levels = interest_levels;
        self
    }
}

/// One user's genre ratings: `None` = unrated (defaults to 1.0 in the
/// interest formula).
type Ratings = Vec<Option<f64>>;

fn draw_album_genres(rng: &mut StdRng, zipf: &Zipf, range: (usize, usize)) -> Vec<usize> {
    let want = rng.gen_range(range.0..=range.1).min(zipf.n).max(1);
    let mut set = Vec::with_capacity(want);
    let mut guard = 0;
    while set.len() < want && guard < 100 * want {
        let g = zipf.sample_rank(rng) - 1;
        if !set.contains(&g) {
            set.push(g);
        }
        guard += 1;
    }
    set
}

fn draw_user_ratings(
    rng: &mut StdRng,
    zipf: &Zipf,
    num_genres: usize,
    min_rated: usize,
    max_rated: usize,
) -> Ratings {
    let mut ratings: Ratings = vec![None; num_genres];
    let want = rng.gen_range(min_rated..=max_rated.min(num_genres));
    let mut rated = 0;
    let mut guard = 0;
    while rated < want && guard < 1000 * want {
        let g = zipf.sample_rank(rng) - 1;
        if ratings[g].is_none() {
            ratings[g] = Some(rng.gen_range(0.0..1.0));
            rated += 1;
        }
        guard += 1;
    }
    ratings
}

/// The paper's interest formula: mean of the album's genre ratings, with
/// unrated genres counting as 1.0.
fn album_interest(ratings: &Ratings, genres: &[usize]) -> f64 {
    if genres.is_empty() {
        return 0.0;
    }
    let sum: f64 = genres.iter().map(|&g| ratings[g].unwrap_or(1.0)).sum();
    sum / genres.len() as f64
}

/// Generates a Concerts-like [`Instance`] with dense interest storage.
/// Deterministic per parameters.
pub fn generate(params: &ConcertsParams) -> Instance {
    generate_with_storage(params, StorageKind::Dense)
}

/// Generates a Concerts-like [`Instance`] with the interest matrices in the
/// requested layout. The genre-derived interest formula draws no randomness
/// of its own (all RNG happens while drawing genre sets and ratings), so the
/// matrices are streamed column-by-column into the target layout — no dense
/// intermediate — and the drawn values are layout-invariant.
pub fn generate_with_storage(params: &ConcertsParams, storage: StorageKind) -> Instance {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let zipf = Zipf::new(params.num_genres, params.genre_skew);

    let mut builder = InstanceBuilder::new();
    for e in random_events(
        &mut rng,
        params.num_events,
        params.num_locations,
        params.max_required_resources,
    ) {
        builder.add_event(e);
    }
    builder.add_intervals(params.num_intervals);
    let competing = random_competing(&mut rng, params.num_intervals, params.competing_per_interval);
    let num_competing = competing.len();
    for c in competing {
        builder.add_competing(c);
    }

    let album_genres: Vec<Vec<usize>> = (0..params.num_events)
        .map(|_| draw_album_genres(&mut rng, &zipf, params.genres_per_album))
        .collect();
    let competing_genres: Vec<Vec<usize>> = (0..num_competing)
        .map(|_| draw_album_genres(&mut rng, &zipf, params.genres_per_album))
        .collect();
    let user_ratings: Vec<Ratings> = (0..params.num_users)
        .map(|_| {
            draw_user_ratings(
                &mut rng,
                &zipf,
                params.num_genres,
                params.min_rated_genres,
                params.max_rated_genres,
            )
        })
        .collect();

    let levels = params.interest_levels;
    let stream_interest = |genres: &[Vec<usize>]| {
        let mut m = InterestMatrix::empty(storage, params.num_users);
        let mut col = vec![0.0f64; params.num_users];
        for gs in genres {
            for (u, v) in col.iter_mut().enumerate() {
                *v = quantize(album_interest(&user_ratings[u], gs), levels);
            }
            m.push_item(&col);
        }
        m
    };
    let event_interest = stream_interest(&album_genres);
    let competing_interest = stream_interest(&competing_genres);
    let activity = ActivityMatrix::from_fn(params.num_users, params.num_intervals, |_, _| {
        rng.gen_range(0.0..1.0)
    });

    builder
        .event_interest(event_interest)
        .competing_interest(competing_interest)
        .activity(activity)
        .resources(params.resources)
        .build()
        .expect("concerts parameters must produce a valid instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ConcertsParams {
        ConcertsParams {
            num_users: 100,
            num_events: 40,
            num_intervals: 10,
            ..ConcertsParams::default()
        }
    }

    #[test]
    fn generates_valid_instance() {
        let inst = generate(&tiny());
        assert!(inst.validate().is_ok());
        assert_eq!(inst.num_events(), 40);
        assert_eq!(inst.num_users(), 100);
    }

    #[test]
    fn interest_is_dense_and_high() {
        let inst = generate(&tiny());
        let mut total = 0.0;
        let mut n = 0usize;
        for e in 0..inst.num_events() {
            for (_, v) in inst.event_interest.column(e) {
                total += v;
                n += 1;
            }
        }
        let mean = total / n as f64;
        // Unrated-defaults-to-1.0 pushes mean interest well above 0.5
        // (uniform ratings average 0.5; unrated genres contribute 1.0).
        assert!(mean > 0.55, "mean interest {mean}");
        assert_eq!(n, inst.num_events() * inst.num_users());
    }

    #[test]
    fn album_interest_formula() {
        // Genres 0 rated 0.4, genre 1 unrated (counts as 1.0).
        let ratings: Ratings = vec![Some(0.4), None];
        assert!((album_interest(&ratings, &[0, 1]) - 0.7).abs() < 1e-12);
        assert!((album_interest(&ratings, &[0]) - 0.4).abs() < 1e-12);
        assert_eq!(album_interest(&ratings, &[1]), 1.0);
        assert_eq!(album_interest(&ratings, &[]), 0.0);
    }

    #[test]
    fn every_user_rates_at_least_min() {
        let params = tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let zipf = Zipf::new(params.num_genres, params.genre_skew);
        for _ in 0..50 {
            let r = draw_user_ratings(&mut rng, &zipf, params.num_genres, 10, 15);
            let rated = r.iter().filter(|x| x.is_some()).count();
            assert!(rated >= 10);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&tiny()), generate(&tiny()));
        assert_ne!(generate(&tiny()), generate(&tiny().with_seed(123)));
    }
}
