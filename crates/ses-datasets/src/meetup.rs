//! Simulated **Meetup** dataset.
//!
//! The paper's first real dataset is the California Meetup dump of [21]
//! (42,444 users, ~16K events), with user→event interest derived the same
//! way as [4, 26–28, 31] — essentially topic/tag affinity. That dump is not
//! redistributable, so this module builds a *Meetup-like* instance from a
//! topic model that reproduces the properties the algorithms are sensitive
//! to:
//!
//! * **sparsity** — a user cares about a small subset of events (their
//!   topic neighborhoods); all other interests are exactly zero, stored
//!   sparsely;
//! * **topic skew** — topic popularity is Zipfian (a few huge topics, a
//!   long tail), so events overlapping popular topics draw interest from
//!   many more users;
//! * **conflict density** — competing events per interval follow
//!   `U[1, 16]` (mean 8.5), matching the 8.1 events-in-overlapping-intervals
//!   the paper measured on Meetup.
//!
//! Interest is the Jaccard-style overlap between the user's and the event's
//! topic sets, scaled by a per-user enthusiasm draw.

use crate::distributions::Zipf;
use crate::params::quantize;
use crate::scaffold::{random_competing, random_events};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ses_core::model::{
    ActivityMatrix, Instance, InstanceBuilder, SparseInterestBuilder, StorageKind,
};

/// Parameters of the Meetup-like generator. Defaults are scaled ~20× down
/// from the real dump (2,000 users, 800 events) so the default experiment
/// suite runs on a laptop; set `num_users`/`num_events` up for fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeetupParams {
    /// Number of users.
    pub num_users: usize,
    /// Number of candidate events.
    pub num_events: usize,
    /// Number of candidate intervals.
    pub num_intervals: usize,
    /// Topic vocabulary size.
    pub num_topics: usize,
    /// Topics per event (inclusive range).
    pub topics_per_event: (usize, usize),
    /// Topics per user (inclusive range).
    pub topics_per_user: (usize, usize),
    /// Zipf exponent of topic popularity.
    pub topic_skew: f64,
    /// Competing events per interval (inclusive uniform range).
    pub competing_per_interval: (u64, u64),
    /// Number of locations.
    pub num_locations: usize,
    /// Organizer resources θ.
    pub resources: f64,
    /// Max required resources (ξ ~ U[1, max]).
    pub max_required_resources: f64,
    /// RNG seed.
    pub seed: u64,
    /// Interest quantization levels (0 = continuous; see
    /// [`crate::params::quantize`]). Zero overlaps stay zero, so sparsity is
    /// unchanged; non-zero levels cap the value alphabet for the compressed
    /// backend's dictionary.
    #[serde(default)]
    pub interest_levels: usize,
}

impl Default for MeetupParams {
    fn default() -> Self {
        Self {
            num_users: 2_000,
            num_events: 800,
            num_intervals: 150,
            num_topics: 200,
            topics_per_event: (1, 5),
            topics_per_user: (3, 10),
            topic_skew: 0.8,
            competing_per_interval: (1, 16),
            num_locations: 25,
            resources: 30.0,
            max_required_resources: 15.0,
            seed: 0x4D454554, // "MEET"
            interest_levels: 0,
        }
    }
}

impl MeetupParams {
    /// Overrides the user count.
    #[must_use]
    pub fn with_users(mut self, n: usize) -> Self {
        self.num_users = n;
        self
    }

    /// Overrides the event count.
    #[must_use]
    pub fn with_events(mut self, n: usize) -> Self {
        self.num_events = n;
        self
    }

    /// Overrides the interval count.
    #[must_use]
    pub fn with_intervals(mut self, n: usize) -> Self {
        self.num_intervals = n;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the interest quantization level count (0 = continuous).
    #[must_use]
    pub fn with_interest_levels(mut self, interest_levels: usize) -> Self {
        self.interest_levels = interest_levels;
        self
    }
}

/// Draws a topic set of the given size range, Zipf-weighted without
/// replacement.
fn topic_set(rng: &mut StdRng, zipf: &Zipf, range: (usize, usize)) -> Vec<usize> {
    let want = rng.gen_range(range.0..=range.1).min(zipf.n);
    let mut set = Vec::with_capacity(want);
    let mut guard = 0;
    while set.len() < want && guard < 100 * want {
        let t = zipf.sample_rank(rng) - 1;
        if !set.contains(&t) {
            set.push(t);
        }
        guard += 1;
    }
    set.sort_unstable();
    set
}

/// Overlap-based interest: `|A ∩ B| / |B|` (fraction of the event's topics
/// the user follows), scaled by enthusiasm.
fn overlap_interest(user_topics: &[usize], event_topics: &[usize], enthusiasm: f64) -> f64 {
    if event_topics.is_empty() {
        return 0.0;
    }
    let hits = event_topics.iter().filter(|t| user_topics.binary_search(t).is_ok()).count();
    enthusiasm * hits as f64 / event_topics.len() as f64
}

/// Generates a Meetup-like [`Instance`]. Deterministic per parameters.
pub fn generate(params: &MeetupParams) -> Instance {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let zipf = Zipf::new(params.num_topics, params.topic_skew);

    let mut builder = InstanceBuilder::new();
    for e in random_events(
        &mut rng,
        params.num_events,
        params.num_locations,
        params.max_required_resources,
    ) {
        builder.add_event(e);
    }
    builder.add_intervals(params.num_intervals);
    let competing = random_competing(&mut rng, params.num_intervals, params.competing_per_interval);
    let num_competing = competing.len();
    for c in competing {
        builder.add_competing(c);
    }

    // Topic sets.
    let event_topics: Vec<Vec<usize>> = (0..params.num_events)
        .map(|_| topic_set(&mut rng, &zipf, params.topics_per_event))
        .collect();
    let competing_topics: Vec<Vec<usize>> =
        (0..num_competing).map(|_| topic_set(&mut rng, &zipf, params.topics_per_event)).collect();
    let user_topics: Vec<Vec<usize>> =
        (0..params.num_users).map(|_| topic_set(&mut rng, &zipf, params.topics_per_user)).collect();
    let enthusiasm: Vec<f64> = (0..params.num_users).map(|_| rng.gen_range(0.5..1.0)).collect();

    // Sparse interest: only overlapping (user, event) pairs are stored.
    // Quantization (if any) runs on the final overlap value; zeros never
    // reach the builder, so sparsity structure is quantization-invariant.
    let levels = params.interest_levels;
    let mut ev = SparseInterestBuilder::new(params.num_events, params.num_users);
    for (e, et) in event_topics.iter().enumerate() {
        for (u, ut) in user_topics.iter().enumerate() {
            let mu = overlap_interest(ut, et, enthusiasm[u]);
            if mu > 0.0 {
                ev.push(e, u, quantize(mu, levels));
            }
        }
    }
    let mut cv = SparseInterestBuilder::new(num_competing, params.num_users);
    for (c, ct) in competing_topics.iter().enumerate() {
        for (u, ut) in user_topics.iter().enumerate() {
            let mu = overlap_interest(ut, ct, enthusiasm[u]);
            if mu > 0.0 {
                cv.push(c, u, quantize(mu, levels));
            }
        }
    }

    // Activity: users have a "home" availability level plus per-slot noise —
    // check-in-derived probabilities in the paper.
    let activity = ActivityMatrix::from_fn(params.num_users, params.num_intervals, |_, _| {
        rng.gen_range(0.0..1.0)
    });

    builder
        .event_interest(ev.build())
        .competing_interest(cv.build())
        .activity(activity)
        .resources(params.resources)
        .build()
        .expect("meetup parameters must produce a valid instance")
}

/// Generates a Meetup-like [`Instance`] with the interest matrices in the
/// requested layout. The generator is natively sparse (interest is stored
/// per overlapping pair throughout), so non-sparse layouts are produced by
/// converting the sparse matrices — the drawn values are layout-invariant.
pub fn generate_with_storage(params: &MeetupParams, storage: StorageKind) -> Instance {
    let mut inst = generate(params);
    if storage != StorageKind::Sparse {
        inst.event_interest = inst.event_interest.convert_to(storage);
        inst.competing_interest = inst.competing_interest.convert_to(storage);
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MeetupParams {
        MeetupParams {
            num_users: 100,
            num_events: 40,
            num_intervals: 10,
            ..MeetupParams::default()
        }
    }

    #[test]
    fn generates_valid_instance() {
        let inst = generate(&tiny());
        assert!(inst.validate().is_ok());
        assert_eq!(inst.num_events(), 40);
        assert_eq!(inst.num_users(), 100);
    }

    #[test]
    fn interest_is_sparse() {
        let inst = generate(&tiny());
        let nnz: usize = (0..inst.num_events()).map(|e| inst.event_interest.column_len(e)).sum();
        let total = inst.num_events() * inst.num_users();
        assert!(nnz < total / 2, "meetup interest should be sparse: {nnz}/{total}");
        assert!(nnz > 0, "but not empty");
    }

    #[test]
    fn popular_topics_create_event_skew() {
        let inst = generate(&tiny());
        let lens: Vec<usize> =
            (0..inst.num_events()).map(|e| inst.event_interest.column_len(e)).collect();
        let max = *lens.iter().max().unwrap();
        let min = *lens.iter().min().unwrap();
        assert!(max >= 2 * min.max(1), "topic skew should spread audience sizes: {min}..{max}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&tiny()), generate(&tiny()));
        assert_ne!(generate(&tiny()), generate(&tiny().with_seed(99)));
    }

    #[test]
    fn overlap_interest_math() {
        assert_eq!(overlap_interest(&[1, 2, 3], &[2, 3, 4], 1.0), 2.0 / 3.0);
        assert_eq!(overlap_interest(&[1], &[2, 3], 1.0), 0.0);
        assert_eq!(overlap_interest(&[], &[], 1.0), 0.0);
        assert_eq!(overlap_interest(&[5], &[5], 0.5), 0.5);
    }
}
