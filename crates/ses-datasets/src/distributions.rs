//! Random-value distributions used by the workload generators.
//!
//! The paper draws interest `µ`, activity `σ`, competing-event counts, and
//! resource requirements from Uniform, Normal(0.5, 0.25), and Zipfian
//! distributions (Table 1). Only the `rand` core crate is available offline,
//! so Normal (Box–Muller) and Zipf (inverse-CDF over a rank table) are
//! implemented here and unit-tested against their analytic moments.

use rand::Rng;

/// A distribution over `f64` values.
pub trait Sampler {
    /// Draws one value.
    fn sample(&self, rng: &mut impl Rng) -> f64;
}

/// Uniform over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformRange {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl UniformRange {
    /// Uniform over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad uniform range [{lo}, {hi})");
        Self { lo, hi }
    }

    /// The standard `U[0, 1)`.
    pub fn unit() -> Self {
        Self { lo: 0.0, hi: 1.0 }
    }
}

impl Sampler for UniformRange {
    fn sample(&self, rng: &mut impl Rng) -> f64 {
        if self.lo == self.hi {
            return self.lo;
        }
        rng.gen_range(self.lo..self.hi)
    }
}

/// Normal(mean, sd) via Box–Muller, clamped to `[min, max]` — the paper's
/// Normal(0.5, 0.25) for probabilities needs clamping to stay in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClampedNormal {
    /// Mean of the underlying normal.
    pub mean: f64,
    /// Standard deviation of the underlying normal.
    pub sd: f64,
    /// Clamp floor.
    pub min: f64,
    /// Clamp ceiling.
    pub max: f64,
}

impl ClampedNormal {
    /// The paper's Normal(0.5, 0.25) clamped to `[0, 1]`.
    pub fn probability() -> Self {
        Self { mean: 0.5, sd: 0.25, min: 0.0, max: 1.0 }
    }

    /// A clamped normal with explicit parameters.
    ///
    /// # Panics
    /// Panics if `sd < 0` or `min > max`.
    pub fn new(mean: f64, sd: f64, min: f64, max: f64) -> Self {
        assert!(sd >= 0.0, "negative standard deviation");
        assert!(min <= max, "empty clamp interval");
        Self { mean, sd, min, max }
    }
}

impl Sampler for ClampedNormal {
    fn sample(&self, rng: &mut impl Rng) -> f64 {
        // Box–Muller; the spare variate is discarded to keep the sampler
        // stateless (generation throughput is irrelevant here).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mean + self.sd * z).clamp(self.min, self.max)
    }
}

/// Zipf over ranks `1..=n` with exponent `s`: `P(r) ∝ r^{-s}`.
///
/// Sampling is inverse-CDF over a precomputed table (O(log n) per draw).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Number of ranks.
    pub n: usize,
    /// Exponent `s`.
    pub s: f64,
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `1..=n` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { n, s, cdf }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample_rank(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) | Err(i) => (i + 1).min(self.n),
        }
    }

    /// Probability mass of rank `r` (1-based).
    pub fn pmf(&self, r: usize) -> f64 {
        assert!((1..=self.n).contains(&r));
        let prev = if r == 1 { 0.0 } else { self.cdf[r - 2] };
        self.cdf[r - 1] - prev
    }
}

impl Sampler for Zipf {
    /// Maps the sampled rank to a unit value where *most draws are small*:
    /// rank `r` ↦ `r/n`, so the heavy head (rank 1) produces the smallest
    /// value `1/n` and the rare tail the largest. This matches interest data
    /// where most user–event pairs have negligible affinity and a few are
    /// strong.
    fn sample(&self, rng: &mut impl Rng) -> f64 {
        self.sample_rank(rng) as f64 / self.n as f64
    }
}

/// Uniform integer range `lo..=hi` (e.g. competing events per interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformInt {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl UniformInt {
    /// Uniform over `lo..=hi`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "bad integer range [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Draws one integer.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        rng.gen_range(self.lo..=self.hi)
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn uniform_unit_moments() {
        let mut r = rng();
        let d = UniformRange::unit();
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut r = rng();
        let d = UniformRange::new(0.7, 0.7);
        assert_eq!(d.sample(&mut r), 0.7);
    }

    #[test]
    fn normal_moments_and_clamp() {
        let mut r = rng();
        let d = ClampedNormal::probability();
        let xs: Vec<f64> = (0..40_000).map(|_| d.sample(&mut r)).collect();
        let (mean, _) = moments(&xs);
        // Clamping a N(0.5, 0.25) to [0,1] keeps the mean at 0.5 by symmetry.
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // ~4.4% of mass clamps to each edge; both edges should be hit.
        assert!(xs.contains(&0.0));
        assert!(xs.contains(&1.0));
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 2.0);
        let total: f64 = (1..=50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(z.pmf(1) > z.pmf(2));
    }

    #[test]
    fn zipf_rank_frequencies_follow_power_law() {
        let mut r = rng();
        let z = Zipf::new(100, 2.0);
        let mut counts = vec![0usize; 101];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample_rank(&mut r)] += 1;
        }
        let f1 = counts[1] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        assert!((f1 - z.pmf(1)).abs() < 0.01, "f1 {f1} vs {}", z.pmf(1));
        // rank-1 should be ≈ 4× rank-2 for s = 2.
        assert!(f1 / f2 > 3.0 && f1 / f2 < 5.0, "ratio {}", f1 / f2);
    }

    #[test]
    fn zipf_sampler_maps_to_unit_interval() {
        let mut r = rng();
        let z = Zipf::new(100, 2.0);
        let xs: Vec<f64> = (0..10_000).map(|_| z.sample(&mut r)).collect();
        assert!(xs.iter().all(|&x| x > 0.0 && x <= 1.0));
        // Heavy head: the majority of draws are the smallest value 0.01.
        let small = xs.iter().filter(|&&x| x < 0.05).count();
        assert!(small > xs.len() / 2, "only {small} small draws");
    }

    #[test]
    fn uniform_int_bounds_and_mean() {
        let mut r = rng();
        let d = UniformInt::new(1, 16);
        assert_eq!(d.mean(), 8.5);
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((1..=16).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bad uniform range")]
    fn uniform_rejects_inverted() {
        let _ = UniformRange::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero_ranks() {
        let _ = Zipf::new(0, 2.0);
    }
}
