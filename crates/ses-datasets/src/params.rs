//! The paper's Table-1 parameter space: sweep values and (bold) defaults.

use serde::{Deserialize, Serialize};

/// Interest distribution `µ(u, e)` for synthetic datasets (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InterestModel {
    /// i.i.d. `U[0, 1)` — every event looks alike in aggregate, which is why
    /// the paper's bound-based methods (INC, HOR-I) struggle on `Unf`.
    Uniform,
    /// i.i.d. Normal(0.5, 0.25) clamped to `[0, 1]` — the paper reports it
    /// indistinguishable from Uniform.
    Normal,
    /// Zipfian event popularity with exponent `s`: event `e`'s popularity is
    /// `rank_e^{-s}` (ranks are a random permutation, normalized to max 1)
    /// and `µ(u, e) = pop_e · U[0, 1)`. Event-level skew is what gives the
    /// paper's `Zip` datasets their spread-out scores and makes bounds bite.
    Zipf {
        /// The Zipf exponent (paper sweeps 1, 2, 3; presents 2).
        s: f64,
    },
}

/// Activity distribution `σ(u, t)` (Table 1: Uniform or Normal(0.5, 0.25);
/// the paper reports identical results for both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivityModel {
    /// i.i.d. `U[0, 1)`.
    Uniform,
    /// i.i.d. Normal(0.5, 0.25) clamped to `[0, 1]`.
    Normal,
}

/// Full parameter set for the synthetic generator. `Default` reproduces
/// Table 1's bold defaults at the paper's scale (`|U| = 100K`); experiment
/// configs override `num_users` for laptop-scale runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticParams {
    /// Number of events to schedule, `k`.
    pub k: usize,
    /// Number of candidate events `|E|`.
    pub num_events: usize,
    /// Number of time intervals `|T|`.
    pub num_intervals: usize,
    /// Number of users `|U|`.
    pub num_users: usize,
    /// Competing events per interval, drawn uniformly from this inclusive
    /// range (default `[1, 16]`, mean 8.5 ≈ the 8.1 measured on Meetup).
    pub competing_per_interval: (u64, u64),
    /// Number of available locations.
    pub num_locations: usize,
    /// Organizer resources θ.
    pub resources: f64,
    /// Required resources `ξ_e ~ U[1, ξ_max]` (default `θ/2`).
    pub max_required_resources: f64,
    /// Interest distribution.
    pub interest: InterestModel,
    /// Activity distribution.
    pub activity: ActivityModel,
    /// RNG seed — equal parameters and seed reproduce the identical instance.
    pub seed: u64,
    /// Interest quantization: when non-zero, every drawn interest value is
    /// snapped up onto the grid `{1/L, 2/L, …, 1}` (zeros stay zero), capping
    /// the value alphabet at `L` so the compressed backend's dictionary stays
    /// in `u16` range. `0` (the default) keeps the paper's continuous draws
    /// and is byte-identical to the pre-quantization generator.
    #[serde(default)]
    pub interest_levels: usize,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        Self {
            k: 100,
            num_events: 500,    // 5k
            num_intervals: 150, // 3k/2
            num_users: 100_000,
            competing_per_interval: (1, 16),
            num_locations: 25,
            resources: 30.0,
            max_required_resources: 15.0, // θ/2
            interest: InterestModel::Uniform,
            activity: ActivityModel::Uniform,
            seed: 0xEDB7_2019,
            interest_levels: 0,
        }
    }
}

impl SyntheticParams {
    /// The default configuration with a different interest model.
    #[must_use]
    pub fn with_interest(mut self, interest: InterestModel) -> Self {
        self.interest = interest;
        self
    }

    /// Overrides the user count (the usual laptop-scale adjustment).
    #[must_use]
    pub fn with_users(mut self, num_users: usize) -> Self {
        self.num_users = num_users;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the interest quantization level count (0 = continuous).
    #[must_use]
    pub fn with_interest_levels(mut self, interest_levels: usize) -> Self {
        self.interest_levels = interest_levels;
        self
    }
}

/// Snaps one `[0, 1]` interest draw up onto the `levels`-step grid
/// `{1/L, …, 1}`. Zeros stay exactly zero (the sparse/compressed drop-zero
/// convention), positives stay positive, and the map is monotone, so
/// quantization changes values but never the support structure. With
/// `levels == 0` the draw passes through untouched.
#[inline]
pub fn quantize(value: f64, levels: usize) -> f64 {
    if levels == 0 || value == 0.0 {
        return value;
    }
    (value * levels as f64).ceil() / levels as f64
}

/// Table 1 sweep values (non-bold columns), exposed for the experiment
/// harness and the `params` CLI command.
pub mod table1 {
    /// Number of scheduled events `k`.
    pub const K: [usize; 5] = [50, 70, 100, 200, 500];
    /// `|E|` as multiples of `k`.
    pub const EVENTS_FACTOR: [usize; 5] = [1, 2, 3, 5, 10];
    /// `|T|` as (numerator, denominator) fractions of `k`:
    /// k/5, k/2, k, 3k/2, 2k, 3k.
    pub const INTERVALS_FRAC: [(usize, usize); 6] =
        [(1, 5), (1, 2), (1, 1), (3, 2), (2, 1), (3, 1)];
    /// Competing events per interval (upper bounds of U[1, x]).
    pub const COMPETING_HI: [u64; 5] = [4, 8, 16, 32, 64];
    /// Available locations.
    pub const LOCATIONS: [usize; 5] = [5, 10, 25, 50, 70];
    /// Available resources θ.
    pub const RESOURCES: [f64; 5] = [10.0, 20.0, 30.0, 50.0, 100.0];
    /// `ξ_max` as fractions of θ.
    pub const XI_FRAC: [f64; 5] = [0.25, 1.0 / 3.0, 0.5, 0.75, 1.0];
    /// Synthetic user counts.
    pub const USERS: [usize; 5] = [10_000, 50_000, 100_000, 500_000, 1_000_000];
    /// Fig. 6's interval sweep (absolute values, k = 100).
    pub const FIG6_INTERVALS: [usize; 6] = [20, 50, 100, 150, 200, 300];
    /// Fig. 7's candidate-event sweep (absolute values, k = 100).
    pub const FIG7_EVENTS: [usize; 4] = [100, 300, 500, 1000];
    /// Fig. 5's k sweep as plotted.
    pub const FIG5_K: [usize; 4] = [50, 100, 200, 500];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1_bold() {
        let p = SyntheticParams::default();
        assert_eq!(p.k, 100);
        assert_eq!(p.num_events, 5 * p.k);
        assert_eq!(p.num_intervals, 3 * p.k / 2);
        assert_eq!(p.num_users, 100_000);
        assert_eq!(p.competing_per_interval, (1, 16));
        assert_eq!(p.num_locations, 25);
        assert_eq!(p.resources, 30.0);
        assert_eq!(p.max_required_resources, p.resources / 2.0);
        assert_eq!(p.interest, InterestModel::Uniform);
    }

    #[test]
    fn builder_overrides() {
        let p = SyntheticParams::default()
            .with_interest(InterestModel::Zipf { s: 2.0 })
            .with_users(2_000)
            .with_seed(7);
        assert_eq!(p.interest, InterestModel::Zipf { s: 2.0 });
        assert_eq!(p.num_users, 2_000);
        assert_eq!(p.seed, 7);
    }

    #[test]
    fn table1_sweeps_include_defaults() {
        assert!(table1::K.contains(&100));
        assert!(table1::LOCATIONS.contains(&25));
        assert!(table1::RESOURCES.contains(&30.0));
        assert!(table1::COMPETING_HI.contains(&16));
        assert!(table1::USERS.contains(&100_000));
    }

    #[test]
    fn serde_roundtrip() {
        let p = SyntheticParams::default().with_interest(InterestModel::Zipf { s: 1.0 });
        let json = serde_json::to_string(&p).unwrap();
        let back: SyntheticParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
