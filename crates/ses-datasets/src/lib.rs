//! # ses-datasets — workload generators for SES experiments
//!
//! Regenerates the four datasets of the paper's evaluation (§4.1) at
//! configurable scale:
//!
//! * [`synthetic`] — the `Unf` / `Nrm` / `Zip` datasets over the full
//!   Table-1 parameter space ([`params::SyntheticParams`]);
//! * [`meetup`] — a *simulated* Meetup (EBSN) dataset: sparse, topic-skewed
//!   interest with the paper's measured conflict density;
//! * [`concerts`] — a *simulated* Yahoo!-Music Concerts dataset: dense,
//!   high-valued interest derived by the paper's own genre-rating formula.
//!
//! The real Meetup/Yahoo dumps are not redistributable; DESIGN.md §2
//! documents why these simulations preserve the behaviour the algorithms
//! are sensitive to. All generators are deterministic per seed.
//!
//! [`distributions`] provides the hand-rolled Uniform/Normal/Zipf samplers
//! everything is built on, [`hardness`] implements the paper's Theorem-1
//! reduction (3DM-3 → restricted SES) as testable code, [`ops`] generates
//! seeded delta-op streams (event/user churn, interest drift, constraint
//! churn) for the dynamic-workload experiments, and [`constrained`]
//! derives the seeded constraint families (capacity-tight,
//! conflict-clique, precedence-chain, mixed) the differential constraint
//! suite runs every scheduler against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod concerts;
pub mod constrained;
pub mod distributions;
pub mod hardness;
pub mod meetup;
pub mod ops;
pub mod params;
pub mod scaffold;
pub mod scale;
pub mod synthetic;

pub use concerts::ConcertsParams;
pub use constrained::ConstraintFamily;
pub use meetup::MeetupParams;
pub use ops::OpStreamParams;
pub use params::{ActivityModel, InterestModel, SyntheticParams};

use ses_core::model::{Instance, StorageKind};

/// The four datasets of the paper's evaluation, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Dataset {
    /// Simulated Meetup (sparse EBSN interest).
    Meetup,
    /// Simulated Yahoo! Music concerts (dense, high interest).
    Concerts,
    /// Synthetic uniform interest.
    Unf,
    /// Synthetic Zipfian interest (s = 2).
    Zip,
}

impl Dataset {
    /// All four, in the paper's plot order.
    pub const ALL: [Dataset; 4] = [Dataset::Meetup, Dataset::Concerts, Dataset::Unf, Dataset::Zip];

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Meetup => "Meetup",
            Dataset::Concerts => "Concerts",
            Dataset::Unf => "Unf",
            Dataset::Zip => "Zip",
        }
    }

    /// Parses a (case-insensitive) dataset name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "meetup" => Some(Dataset::Meetup),
            "concerts" => Some(Dataset::Concerts),
            "unf" | "uniform" => Some(Dataset::Unf),
            "zip" | "zipf" => Some(Dataset::Zip),
            _ => None,
        }
    }

    /// Builds this dataset with the given structural shape. `num_users`,
    /// `num_events`, `num_intervals` override each generator's defaults;
    /// everything else (locations, resources, conflict density) stays at the
    /// Table-1 defaults. Interest is stored in each generator's native
    /// layout (sparse for Meetup, dense otherwise); see
    /// [`build_with`](Self::build_with) to choose a layout explicitly.
    pub fn build(
        self,
        num_users: usize,
        num_events: usize,
        num_intervals: usize,
        seed: u64,
    ) -> Instance {
        self.build_with(num_users, num_events, num_intervals, seed, None, 0)
    }

    /// The generator's native interest layout at small scale.
    pub fn native_storage(self) -> StorageKind {
        match self {
            Dataset::Meetup => StorageKind::Sparse,
            _ => StorageKind::Dense,
        }
    }

    /// The layout `build_with` picks when none is requested: the generator's
    /// native layout below [`AUTO_COMPRESSED_USERS`] users, compressed at or
    /// above it (the dense layouts stop fitting comfortably in memory there).
    pub fn auto_storage(self, num_users: usize) -> StorageKind {
        if num_users >= AUTO_COMPRESSED_USERS {
            StorageKind::Compressed
        } else {
            self.native_storage()
        }
    }

    /// Builds this dataset with an explicit interest-storage layout and
    /// quantization level count. `storage: None` auto-selects via
    /// [`auto_storage`](Self::auto_storage); `interest_levels == 0` keeps the
    /// continuous draws (byte-identical to [`build`](Self::build) when the
    /// layout also matches the native one). The synthetic and Concerts
    /// generators stream columns straight into the chosen layout, so a
    /// compressed 1M-user build never materializes the dense matrix.
    pub fn build_with(
        self,
        num_users: usize,
        num_events: usize,
        num_intervals: usize,
        seed: u64,
        storage: Option<StorageKind>,
        interest_levels: usize,
    ) -> Instance {
        let storage = storage.unwrap_or_else(|| self.auto_storage(num_users));
        match self {
            Dataset::Meetup => meetup::generate_with_storage(
                &MeetupParams::default()
                    .with_users(num_users)
                    .with_events(num_events)
                    .with_intervals(num_intervals)
                    .with_seed(seed)
                    .with_interest_levels(interest_levels),
                storage,
            ),
            Dataset::Concerts => concerts::generate_with_storage(
                &ConcertsParams::default()
                    .with_users(num_users)
                    .with_events(num_events)
                    .with_intervals(num_intervals)
                    .with_seed(seed)
                    .with_interest_levels(interest_levels),
                storage,
            ),
            Dataset::Unf => synthetic::generate_with_storage(
                &SyntheticParams {
                    num_users,
                    num_events,
                    num_intervals,
                    seed,
                    interest: InterestModel::Uniform,
                    interest_levels,
                    ..SyntheticParams::default()
                },
                storage,
            ),
            Dataset::Zip => synthetic::generate_with_storage(
                &SyntheticParams {
                    num_users,
                    num_events,
                    num_intervals,
                    seed,
                    interest: InterestModel::Zipf { s: 2.0 },
                    interest_levels,
                    ..SyntheticParams::default()
                },
                storage,
            ),
        }
    }
}

/// User count at or above which [`Dataset::build_with`] auto-selects the
/// compressed layout. Matches the paper's |U| default (100K), the smallest
/// scale where the dense matrix becomes the dominant memory cost.
pub const AUTO_COMPRESSED_USERS: usize = 100_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_name_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::parse(d.name()), Some(d));
        }
        assert_eq!(Dataset::parse("zipf"), Some(Dataset::Zip));
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn build_all_datasets_small() {
        for d in Dataset::ALL {
            let inst = d.build(60, 30, 8, 1);
            assert!(inst.validate().is_ok(), "{}", d.name());
            assert_eq!(inst.num_users(), 60);
            assert_eq!(inst.num_events(), 30);
            assert_eq!(inst.num_intervals(), 8);
        }
    }
}
