//! # ses-datasets — workload generators for SES experiments
//!
//! Regenerates the four datasets of the paper's evaluation (§4.1) at
//! configurable scale:
//!
//! * [`synthetic`] — the `Unf` / `Nrm` / `Zip` datasets over the full
//!   Table-1 parameter space ([`params::SyntheticParams`]);
//! * [`meetup`] — a *simulated* Meetup (EBSN) dataset: sparse, topic-skewed
//!   interest with the paper's measured conflict density;
//! * [`concerts`] — a *simulated* Yahoo!-Music Concerts dataset: dense,
//!   high-valued interest derived by the paper's own genre-rating formula.
//!
//! The real Meetup/Yahoo dumps are not redistributable; DESIGN.md §2
//! documents why these simulations preserve the behaviour the algorithms
//! are sensitive to. All generators are deterministic per seed.
//!
//! [`distributions`] provides the hand-rolled Uniform/Normal/Zipf samplers
//! everything is built on, [`hardness`] implements the paper's Theorem-1
//! reduction (3DM-3 → restricted SES) as testable code, [`ops`] generates
//! seeded delta-op streams (event/user churn, interest drift, constraint
//! churn) for the dynamic-workload experiments, and [`constrained`]
//! derives the seeded constraint families (capacity-tight,
//! conflict-clique, precedence-chain, mixed) the differential constraint
//! suite runs every scheduler against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod concerts;
pub mod constrained;
pub mod distributions;
pub mod hardness;
pub mod meetup;
pub mod ops;
pub mod params;
pub mod scaffold;
pub mod synthetic;

pub use concerts::ConcertsParams;
pub use constrained::ConstraintFamily;
pub use meetup::MeetupParams;
pub use ops::OpStreamParams;
pub use params::{ActivityModel, InterestModel, SyntheticParams};

use ses_core::model::Instance;

/// The four datasets of the paper's evaluation, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Dataset {
    /// Simulated Meetup (sparse EBSN interest).
    Meetup,
    /// Simulated Yahoo! Music concerts (dense, high interest).
    Concerts,
    /// Synthetic uniform interest.
    Unf,
    /// Synthetic Zipfian interest (s = 2).
    Zip,
}

impl Dataset {
    /// All four, in the paper's plot order.
    pub const ALL: [Dataset; 4] = [Dataset::Meetup, Dataset::Concerts, Dataset::Unf, Dataset::Zip];

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Meetup => "Meetup",
            Dataset::Concerts => "Concerts",
            Dataset::Unf => "Unf",
            Dataset::Zip => "Zip",
        }
    }

    /// Parses a (case-insensitive) dataset name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "meetup" => Some(Dataset::Meetup),
            "concerts" => Some(Dataset::Concerts),
            "unf" | "uniform" => Some(Dataset::Unf),
            "zip" | "zipf" => Some(Dataset::Zip),
            _ => None,
        }
    }

    /// Builds this dataset with the given structural shape. `num_users`,
    /// `num_events`, `num_intervals` override each generator's defaults;
    /// everything else (locations, resources, conflict density) stays at the
    /// Table-1 defaults.
    pub fn build(
        self,
        num_users: usize,
        num_events: usize,
        num_intervals: usize,
        seed: u64,
    ) -> Instance {
        match self {
            Dataset::Meetup => meetup::generate(
                &MeetupParams::default()
                    .with_users(num_users)
                    .with_events(num_events)
                    .with_intervals(num_intervals)
                    .with_seed(seed),
            ),
            Dataset::Concerts => concerts::generate(
                &ConcertsParams::default()
                    .with_users(num_users)
                    .with_events(num_events)
                    .with_intervals(num_intervals)
                    .with_seed(seed),
            ),
            Dataset::Unf => synthetic::generate(&SyntheticParams {
                num_users,
                num_events,
                num_intervals,
                seed,
                interest: InterestModel::Uniform,
                ..SyntheticParams::default()
            }),
            Dataset::Zip => synthetic::generate(&SyntheticParams {
                num_users,
                num_events,
                num_intervals,
                seed,
                interest: InterestModel::Zipf { s: 2.0 },
                ..SyntheticParams::default()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_name_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::parse(d.name()), Some(d));
        }
        assert_eq!(Dataset::parse("zipf"), Some(Dataset::Zip));
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn build_all_datasets_small() {
        for d in Dataset::ALL {
            let inst = d.build(60, 30, 8, 1);
            assert!(inst.validate().is_ok(), "{}", d.name());
            assert_eq!(inst.num_users(), 60);
            assert_eq!(inst.num_events(), 30);
            assert_eq!(inst.num_intervals(), 8);
        }
    }
}
