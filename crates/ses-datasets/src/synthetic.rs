//! The synthetic instance generator over the Table-1 parameter space
//! (the paper's `Unf`, `Nrm`, and `Zip` datasets).

use crate::distributions::{ClampedNormal, Sampler, UniformRange};
use crate::params::{ActivityModel, InterestModel, SyntheticParams};
use crate::scaffold::{random_competing, random_events};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ses_core::model::{ActivityMatrix, DenseInterest, Instance, InstanceBuilder};

/// Generates a synthetic [`Instance`] from the given parameters.
/// Deterministic: equal parameters (including seed) yield equal instances.
///
/// # Panics
/// Panics on degenerate parameters (zero events/intervals/users), matching
/// the instance validator's requirements.
pub fn generate(params: &SyntheticParams) -> Instance {
    let mut rng = StdRng::seed_from_u64(params.seed);

    let mut builder = InstanceBuilder::new();
    for e in random_events(
        &mut rng,
        params.num_events,
        params.num_locations,
        params.max_required_resources,
    ) {
        builder.add_event(e);
    }
    builder.add_intervals(params.num_intervals);
    let competing = random_competing(&mut rng, params.num_intervals, params.competing_per_interval);
    let num_competing = competing.len();
    for c in competing {
        builder.add_competing(c);
    }

    let event_interest =
        interest_matrix(&mut rng, params.interest, params.num_events, params.num_users);
    let competing_interest =
        interest_matrix(&mut rng, params.interest, num_competing, params.num_users);
    let activity =
        activity_matrix(&mut rng, params.activity, params.num_users, params.num_intervals);

    builder
        .event_interest(event_interest)
        .competing_interest(competing_interest)
        .activity(activity)
        .resources(params.resources)
        .build()
        .expect("synthetic parameters must produce a valid instance")
}

/// Draws an `items × users` interest matrix under the chosen model.
fn interest_matrix(
    rng: &mut StdRng,
    model: InterestModel,
    num_items: usize,
    num_users: usize,
) -> DenseInterest {
    match model {
        InterestModel::Uniform => {
            let d = UniformRange::unit();
            DenseInterest::from_fn(num_items, num_users, |_, _| d.sample(rng))
        }
        InterestModel::Normal => {
            let d = ClampedNormal::probability();
            DenseInterest::from_fn(num_items, num_users, |_, _| d.sample(rng))
        }
        InterestModel::Zipf { s } => {
            // Event-level Zipf popularity: a random permutation of ranks,
            // normalized so the most popular event has weight 1.
            let mut ranks: Vec<usize> = (1..=num_items.max(1)).collect();
            ranks.shuffle(rng);
            let pops: Vec<f64> = ranks.iter().map(|&r| (r as f64).powf(-s)).collect();
            let d = UniformRange::unit();
            DenseInterest::from_fn(num_items, num_users, |item, _| pops[item] * d.sample(rng))
        }
    }
}

fn activity_matrix(
    rng: &mut StdRng,
    model: ActivityModel,
    num_users: usize,
    num_intervals: usize,
) -> ActivityMatrix {
    match model {
        ActivityModel::Uniform => {
            ActivityMatrix::from_fn(num_users, num_intervals, |_, _| rng.gen_range(0.0..1.0))
        }
        ActivityModel::Normal => {
            let d = ClampedNormal::probability();
            ActivityMatrix::from_fn(num_users, num_intervals, |_, _| d.sample(rng))
        }
    }
}

/// Convenience: the three headline synthetic datasets of the evaluation at a
/// chosen user scale — `Unf`, `Nrm`, and `Zip` (s = 2).
pub fn paper_trio(num_users: usize, seed: u64) -> [(String, Instance); 3] {
    let base = SyntheticParams::default().with_users(num_users).with_seed(seed);
    [
        ("Unf".to_string(), generate(&base.with_interest(InterestModel::Uniform))),
        ("Nrm".to_string(), generate(&base.with_interest(InterestModel::Normal))),
        ("Zip".to_string(), generate(&base.with_interest(InterestModel::Zipf { s: 2.0 }))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(interest: InterestModel) -> SyntheticParams {
        SyntheticParams {
            k: 5,
            num_events: 20,
            num_intervals: 8,
            num_users: 50,
            competing_per_interval: (1, 4),
            num_locations: 5,
            resources: 10.0,
            max_required_resources: 5.0,
            interest,
            activity: ActivityModel::Uniform,
            seed: 7,
        }
    }

    #[test]
    fn generates_valid_instances_for_all_models() {
        for model in [InterestModel::Uniform, InterestModel::Normal, InterestModel::Zipf { s: 2.0 }]
        {
            let inst = generate(&tiny(model));
            assert!(inst.validate().is_ok(), "{model:?}");
            assert_eq!(inst.num_events(), 20);
            assert_eq!(inst.num_intervals(), 8);
            assert_eq!(inst.num_users(), 50);
            assert!(inst.num_competing() >= 8); // ≥ 1 per interval
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&tiny(InterestModel::Uniform));
        let b = generate(&tiny(InterestModel::Uniform));
        assert_eq!(a, b);
        let c = generate(&tiny(InterestModel::Uniform).with_seed(8));
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_interest_has_event_level_skew() {
        let inst = generate(&tiny(InterestModel::Zipf { s: 2.0 }));
        let sums: Vec<f64> =
            (0..inst.num_events()).map(|e| inst.event_interest.column_sum(e)).collect();
        let max = sums.iter().cloned().fold(f64::MIN, f64::max);
        let min = sums.iter().cloned().fold(f64::MAX, f64::min);
        // The most popular event should dwarf the least popular one.
        assert!(max > 20.0 * min.max(1e-9), "max {max}, min {min}");
    }

    #[test]
    fn uniform_interest_is_homogeneous() {
        let inst = generate(&tiny(InterestModel::Uniform));
        let sums: Vec<f64> =
            (0..inst.num_events()).map(|e| inst.event_interest.column_sum(e)).collect();
        let mean = sums.iter().sum::<f64>() / sums.len() as f64;
        for s in sums {
            assert!((s - mean).abs() / mean < 0.5, "uniform events should look alike");
        }
    }

    #[test]
    fn paper_trio_labels() {
        let trio = paper_trio(20, 1);
        let names: Vec<&str> = trio.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Unf", "Nrm", "Zip"]);
        for (_, inst) in &trio {
            assert!(inst.validate().is_ok());
        }
    }
}
