//! The synthetic instance generator over the Table-1 parameter space
//! (the paper's `Unf`, `Nrm`, and `Zip` datasets).
//!
//! Generation streams one interest column (event) at a time into the chosen
//! storage backend, so a 1M-user instance in the compressed layout never
//! materializes the `|E| × |U|` dense matrix. The RNG draw order is the
//! item-outer/user-inner order the original dense generator used, so
//! `generate` (dense storage, no quantization) is byte-identical to every
//! previously committed instance.

use crate::distributions::{ClampedNormal, Sampler, UniformRange};
use crate::params::{quantize, ActivityModel, InterestModel, SyntheticParams};
use crate::scaffold::{random_competing, random_events};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ses_core::model::{ActivityMatrix, Instance, InstanceBuilder, InterestMatrix, StorageKind};

/// Generates a synthetic [`Instance`] from the given parameters, with the
/// interest matrices in the dense layout. Deterministic: equal parameters
/// (including seed) yield equal instances.
///
/// # Panics
/// Panics on degenerate parameters (zero events/intervals/users), matching
/// the instance validator's requirements.
pub fn generate(params: &SyntheticParams) -> Instance {
    generate_with_storage(params, StorageKind::Dense)
}

/// Generates a synthetic [`Instance`] with the interest matrices in the
/// requested storage layout. The RNG stream and every drawn value are
/// independent of the layout, so for any fixed parameters the three backends
/// hold bitwise-identical logical matrices (`generate_with_storage(p, k)` ==
/// `generate(p).convert_to(k)` cell for cell) — but the non-dense layouts are
/// built by streaming columns, never allocating the dense intermediate.
///
/// Pair the compressed layout with a non-zero `params.interest_levels`:
/// quantization caps the value alphabet so the dictionary stays `u16`-sized.
///
/// # Panics
/// Panics on degenerate parameters (zero events/intervals/users), matching
/// the instance validator's requirements.
pub fn generate_with_storage(params: &SyntheticParams, storage: StorageKind) -> Instance {
    let mut rng = StdRng::seed_from_u64(params.seed);

    let mut builder = InstanceBuilder::new();
    for e in random_events(
        &mut rng,
        params.num_events,
        params.num_locations,
        params.max_required_resources,
    ) {
        builder.add_event(e);
    }
    builder.add_intervals(params.num_intervals);
    let competing = random_competing(&mut rng, params.num_intervals, params.competing_per_interval);
    let num_competing = competing.len();
    for c in competing {
        builder.add_competing(c);
    }

    let event_interest = interest_matrix(
        &mut rng,
        params.interest,
        params.interest_levels,
        params.num_events,
        params.num_users,
        storage,
    );
    let competing_interest = interest_matrix(
        &mut rng,
        params.interest,
        params.interest_levels,
        num_competing,
        params.num_users,
        storage,
    );
    let activity =
        activity_matrix(&mut rng, params.activity, params.num_users, params.num_intervals);

    builder
        .event_interest(event_interest)
        .competing_interest(competing_interest)
        .activity(activity)
        .resources(params.resources)
        .build()
        .expect("synthetic parameters must produce a valid instance")
}

/// Draws an `items × users` interest matrix under the chosen model, streamed
/// column-by-column into the chosen layout. One scratch column (`|U|` f64s)
/// is the only dense allocation regardless of backend.
fn interest_matrix(
    rng: &mut StdRng,
    model: InterestModel,
    levels: usize,
    num_items: usize,
    num_users: usize,
    storage: StorageKind,
) -> InterestMatrix {
    let mut m = InterestMatrix::empty(storage, num_users);
    let mut col = vec![0.0f64; num_users];
    match model {
        InterestModel::Uniform => {
            let d = UniformRange::unit();
            for _ in 0..num_items {
                for v in col.iter_mut() {
                    *v = quantize(d.sample(rng), levels);
                }
                m.push_item(&col);
            }
        }
        InterestModel::Normal => {
            let d = ClampedNormal::probability();
            for _ in 0..num_items {
                for v in col.iter_mut() {
                    *v = quantize(d.sample(rng), levels);
                }
                m.push_item(&col);
            }
        }
        InterestModel::Zipf { s } => {
            // Event-level Zipf popularity: a random permutation of ranks,
            // normalized so the most popular event has weight 1.
            let mut ranks: Vec<usize> = (1..=num_items.max(1)).collect();
            ranks.shuffle(rng);
            let pops: Vec<f64> = ranks.iter().map(|&r| (r as f64).powf(-s)).collect();
            let d = UniformRange::unit();
            for &pop in pops.iter().take(num_items) {
                for v in col.iter_mut() {
                    *v = quantize(pop * d.sample(rng), levels);
                }
                m.push_item(&col);
            }
        }
    }
    m
}

fn activity_matrix(
    rng: &mut StdRng,
    model: ActivityModel,
    num_users: usize,
    num_intervals: usize,
) -> ActivityMatrix {
    match model {
        ActivityModel::Uniform => {
            ActivityMatrix::from_fn(num_users, num_intervals, |_, _| rng.gen_range(0.0..1.0))
        }
        ActivityModel::Normal => {
            let d = ClampedNormal::probability();
            ActivityMatrix::from_fn(num_users, num_intervals, |_, _| d.sample(rng))
        }
    }
}

/// Convenience: the three headline synthetic datasets of the evaluation at a
/// chosen user scale — `Unf`, `Nrm`, and `Zip` (s = 2).
pub fn paper_trio(num_users: usize, seed: u64) -> [(String, Instance); 3] {
    let base = SyntheticParams::default().with_users(num_users).with_seed(seed);
    [
        ("Unf".to_string(), generate(&base.with_interest(InterestModel::Uniform))),
        ("Nrm".to_string(), generate(&base.with_interest(InterestModel::Normal))),
        ("Zip".to_string(), generate(&base.with_interest(InterestModel::Zipf { s: 2.0 }))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(interest: InterestModel) -> SyntheticParams {
        SyntheticParams {
            k: 5,
            num_events: 20,
            num_intervals: 8,
            num_users: 50,
            competing_per_interval: (1, 4),
            num_locations: 5,
            resources: 10.0,
            max_required_resources: 5.0,
            interest,
            activity: ActivityModel::Uniform,
            seed: 7,
            interest_levels: 0,
        }
    }

    #[test]
    fn generates_valid_instances_for_all_models() {
        for model in [InterestModel::Uniform, InterestModel::Normal, InterestModel::Zipf { s: 2.0 }]
        {
            let inst = generate(&tiny(model));
            assert!(inst.validate().is_ok(), "{model:?}");
            assert_eq!(inst.num_events(), 20);
            assert_eq!(inst.num_intervals(), 8);
            assert_eq!(inst.num_users(), 50);
            assert!(inst.num_competing() >= 8); // ≥ 1 per interval
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&tiny(InterestModel::Uniform));
        let b = generate(&tiny(InterestModel::Uniform));
        assert_eq!(a, b);
        let c = generate(&tiny(InterestModel::Uniform).with_seed(8));
        assert_ne!(a, c);
    }

    #[test]
    fn storage_layouts_draw_identical_instances() {
        for model in [InterestModel::Uniform, InterestModel::Normal, InterestModel::Zipf { s: 2.0 }]
        {
            let params = tiny(model).with_interest_levels(64);
            let dense = generate_with_storage(&params, StorageKind::Dense);
            for kind in [StorageKind::Sparse, StorageKind::Compressed] {
                let streamed = generate_with_storage(&params, kind);
                assert_eq!(streamed.event_interest.storage_kind(), kind);
                assert_eq!(streamed.competing_interest.storage_kind(), kind);
                // Same RNG stream, so converting the dense run must reproduce
                // the streamed run exactly (bitwise, via PartialEq on f64).
                let mut converted = dense.clone();
                converted.event_interest = dense.event_interest.convert_to(kind);
                converted.competing_interest = dense.competing_interest.convert_to(kind);
                assert_eq!(streamed, converted, "{model:?} {kind}");
            }
        }
    }

    #[test]
    fn quantization_caps_the_alphabet_and_preserves_support() {
        let params = tiny(InterestModel::Zipf { s: 2.0 }).with_interest_levels(16);
        let plain = generate(&tiny(InterestModel::Zipf { s: 2.0 }));
        let quantized = generate(&params);
        let m = &quantized.event_interest;
        let mut distinct = std::collections::BTreeSet::new();
        for item in 0..m.num_items() {
            for (u, v) in m.column(item) {
                assert!(v > 0.0 && v <= 1.0);
                // Snapped up onto the grid: v = n/16 and v ≥ the raw draw.
                assert_eq!(v, (v * 16.0).round() / 16.0, "off-grid value {v}");
                assert!(v >= plain.event_interest.value(item, u));
                distinct.insert(v.to_bits());
            }
            assert_eq!(m.column_len(item), plain.event_interest.column_len(item));
        }
        assert!(distinct.len() <= 16);
        assert!(quantized.validate().is_ok());
    }

    #[test]
    fn zero_levels_is_the_identity() {
        assert_eq!(quantize(0.37, 0), 0.37);
        assert_eq!(quantize(0.0, 16), 0.0);
        assert_eq!(quantize(1.0, 16), 1.0);
        assert_eq!(quantize(0.001, 4), 0.25);
    }

    #[test]
    fn zipf_interest_has_event_level_skew() {
        let inst = generate(&tiny(InterestModel::Zipf { s: 2.0 }));
        let sums: Vec<f64> =
            (0..inst.num_events()).map(|e| inst.event_interest.column_sum(e)).collect();
        let max = sums.iter().cloned().fold(f64::MIN, f64::max);
        let min = sums.iter().cloned().fold(f64::MAX, f64::min);
        // The most popular event should dwarf the least popular one.
        assert!(max > 20.0 * min.max(1e-9), "max {max}, min {min}");
    }

    #[test]
    fn uniform_interest_is_homogeneous() {
        let inst = generate(&tiny(InterestModel::Uniform));
        let sums: Vec<f64> =
            (0..inst.num_events()).map(|e| inst.event_interest.column_sum(e)).collect();
        let mean = sums.iter().sum::<f64>() / sums.len() as f64;
        for s in sums {
            assert!((s - mean).abs() / mean < 0.5, "uniform events should look alike");
        }
    }

    #[test]
    fn paper_trio_labels() {
        let trio = paper_trio(20, 1);
        let names: Vec<&str> = trio.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Unf", "Nrm", "Zip"]);
        for (_, inst) in &trio {
            assert!(inst.validate().is_ok());
        }
    }
}
