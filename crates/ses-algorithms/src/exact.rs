//! Exact branch-and-bound solver for *tiny* SES instances.
//!
//! SES is strongly NP-hard and APX-hard (Theorem 1), so no exact solver can
//! scale; this one exists as a **test oracle**: on instances with a handful
//! of events it certifies the optimal utility, letting tests verify that
//! (a) greedy utilities never exceed the optimum and (b) the greedy gap is
//! sane on known-bad cases.
//!
//! The search enumerates events in id order; each event is either skipped or
//! assigned to one of its feasible intervals. Pruning uses the telescoping
//! property of Eq. 4 plus score monotonicity: the marginal gain of any future
//! assignment is at most that event's best *initial* score, so
//! `current + Σ (top remaining initial bounds) ≤ incumbent` prunes the
//! subtree.
//!
//! ## Constraints
//!
//! Scenario constraints (`ses_core::constraints`) are enforced through the
//! same `is_valid_assignment` gate every scheduler uses, and the search stays
//! **complete** over the constrained space because all three rule families
//! are downward-closed and order-independent: every prefix of a feasible
//! schedule is feasible, so id-order skip-or-assign enumeration still visits
//! every feasible schedule. `optimistic_remaining` stays a sound bound —
//! constraints only *remove* options, never increase a gain. On top of
//! that, the search prunes constraint-specific dead branches: when an
//! already-scheduled conflict partner rules an event out entirely, all `|T|`
//! assign branches are skipped in one check instead of failing one by one.

use crate::common::{timed_result, RunConfig, ScheduleResult, Scheduler, Scratch};
use ses_core::model::Instance;
use ses_core::schedule::Schedule;
use ses_core::scoring::{EngineProfile, ScoringEngine};
use ses_core::stats::Stats;
use ses_core::{EventId, IntervalId};

/// Exact solver; see module docs. Practical only for roughly
/// `|E| ≤ 10, |T| ≤ 4`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exact;

impl Scheduler for Exact {
    fn name(&self) -> &'static str {
        "EXACT"
    }

    fn run_configured(
        &self,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        _scratch: &mut Scratch,
    ) -> ScheduleResult {
        timed_result(self.name(), inst, k, || run_exact(inst, k, cfg))
    }
}

struct Search<'a, 'b> {
    inst: &'a Instance,
    k: usize,
    engine: ScoringEngine<'b>,
    schedule: Schedule,
    /// Per event: its best initial score (an upper bound on any future
    /// marginal gain, by monotonicity), sorted copies used for bounding.
    event_bound: Vec<f64>,
    best_utility: f64,
    best_schedule: Schedule,
}

impl Search<'_, '_> {
    /// Whether a scheduled conflict partner makes `event` unassignable at
    /// every interval. Sound to skip the whole assign loop: conflicts are
    /// interval-independent, so one scheduled partner kills all branches.
    fn conflict_blocked(&self, event: EventId) -> bool {
        self.inst.constraints.conflicts().iter().any(|p| {
            (p.a == event && self.schedule.is_scheduled(p.b))
                || (p.b == event && self.schedule.is_scheduled(p.a))
        })
    }

    /// Upper bound on the extra utility attainable from events `from..`.
    fn optimistic_remaining(&self, from: usize) -> f64 {
        let slots = self.k - self.schedule.len();
        let mut bounds: Vec<f64> = self.event_bound[from..].to_vec();
        bounds.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
        bounds.into_iter().take(slots).sum()
    }

    fn dfs(&mut self, next_event: usize, current_utility: f64) {
        if current_utility > self.best_utility {
            self.best_utility = current_utility;
            self.best_schedule = self.schedule.clone();
        }
        if self.schedule.len() == self.k || next_event == self.inst.num_events() {
            return;
        }
        if current_utility + self.optimistic_remaining(next_event) <= self.best_utility {
            return; // cannot improve
        }

        let event = EventId::new(next_event);
        // Branch 1: assign `event` to each feasible interval — unless a
        // scheduled conflict partner rules the event out at *every*
        // interval, in which case all |T| branches die in one check.
        if !self.conflict_blocked(event) {
            for t in 0..self.inst.num_intervals() {
                let interval = IntervalId::new(t);
                if !self.schedule.is_valid_assignment(self.inst, event, interval) {
                    continue;
                }
                let gain = self.engine.assignment_score(event, interval);
                self.schedule.assign(self.inst, event, interval).expect("checked valid");
                self.engine.apply(event, interval);
                self.dfs(next_event + 1, current_utility + gain);
                self.engine.unapply(event, interval);
                self.schedule.unassign(self.inst, event).expect("just assigned");
            }
        }
        // Branch 2: skip `event`.
        self.dfs(next_event + 1, current_utility);
    }
}

fn run_exact(
    inst: &Instance,
    k: usize,
    cfg: RunConfig,
) -> (Schedule, Stats, Option<EngineProfile>) {
    let mut engine = ScoringEngine::with_threads(inst, cfg.threads);
    if cfg.profile {
        engine.enable_profiling();
    }
    let empty = Schedule::new(inst);
    let mut event_bound = vec![0.0f64; inst.num_events()];
    for (event, interval) in inst.assignment_universe() {
        if !empty.is_valid_assignment(inst, event, interval) {
            continue; // duration-extension guard: off-calendar spans
        }
        let s = engine.assignment_score(event, interval);
        let b = &mut event_bound[event.index()];
        if s > *b {
            *b = s;
        }
    }

    let mut search = Search {
        inst,
        k: k.min(inst.num_events()),
        engine,
        schedule: Schedule::new(inst),
        event_bound,
        best_utility: 0.0,
        best_schedule: Schedule::new(inst),
    };
    search.dfs(0, 0.0);
    let stats = *search.engine.stats();
    let profile = search.engine.take_profile();
    (search.best_schedule, stats, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::Alg;
    use crate::hor::Hor;
    use ses_core::model::running_example;
    use ses_core::scoring::utility::total_utility;

    #[test]
    fn optimal_on_running_example_k3() {
        let inst = running_example();
        let exact = Exact.run(&inst, 3);
        // The greedy schedule {e4@t2, e1@t1, e2@t2} (Ω ≈ 1.4073) is *not*
        // optimal: the exact solver finds Ω* ≈ 1.4281 — a live demonstration
        // of why Theorem 1 rules out a PTAS and greedy is only a heuristic.
        let alg = Alg.run(&inst, 3);
        assert!(exact.utility > alg.utility + 1e-3);
        assert!((exact.utility - 1.4281).abs() < 5e-4, "Ω* = {}", exact.utility);
    }

    #[test]
    fn greedy_never_exceeds_optimum() {
        let inst = running_example();
        for k in 1..=4 {
            let opt = Exact.run(&inst, k).utility;
            for res in [Alg.run(&inst, k), Hor.run(&inst, k)] {
                assert!(
                    res.utility <= opt + 1e-9,
                    "k = {k}: {} beat the optimum {} with {}",
                    res.algorithm,
                    opt,
                    res.utility
                );
            }
        }
    }

    #[test]
    fn reported_utility_matches_evaluator() {
        let inst = running_example();
        let res = Exact.run(&inst, 2);
        let omega = total_utility(&inst, &res.schedule);
        assert!((res.utility - omega).abs() < 1e-12);
    }

    #[test]
    fn respects_k() {
        let inst = running_example();
        for k in 0..=4 {
            assert!(Exact.run(&inst, k).schedule.len() <= k);
        }
    }

    /// Constrained EXACT stays the optimality oracle: its schedules respect
    /// the constraints, never beat the unconstrained optimum, and still
    /// dominate constrained greedy runs.
    #[test]
    fn constrained_search_respects_rules_and_dominates_greedy() {
        use ses_core::constraints::ConstraintSet;
        use ses_core::{EventId, LocationId};

        let unconstrained = running_example();
        let free_opt = Exact.run(&unconstrained, 3).utility;

        let mut inst = running_example();
        let mut cs = ConstraintSet::new();
        cs.add_conflict(EventId::new(0), EventId::new(3)); // e1 – e4 exclusive
        cs.add_precedence(EventId::new(2), EventId::new(1)); // e3 before e2
        cs.set_venue_capacity(LocationId::new(0), 1); // Stage 1: one slot
        inst.constraints = cs;
        assert!(inst.validate().is_ok());

        let exact = Exact.run(&inst, 3);
        exact.schedule.verify_feasible(&inst).expect("EXACT emitted an infeasible schedule");
        let scheduled = |i: usize| exact.schedule.is_scheduled(EventId::new(i));
        assert!(!(scheduled(0) && scheduled(3)), "conflict e1–e4 violated");
        assert!(exact.utility <= free_opt + 1e-12, "constraints cannot raise the optimum");
        assert!(exact.utility > 0.0);

        for res in [Alg.run(&inst, 3), Hor.run(&inst, 3)] {
            res.schedule.verify_feasible(&inst).expect("greedy emitted an infeasible schedule");
            assert!(
                res.utility <= exact.utility + 1e-9,
                "{} beat constrained EXACT ({} > {})",
                res.algorithm,
                res.utility,
                exact.utility
            );
        }
    }
}
