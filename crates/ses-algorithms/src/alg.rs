//! `ALG` — the baseline greedy of the SES paper's predecessor
//! ([4], ICDE 2018), reimplemented as the comparison target (§3.1).
//!
//! ALG scores **all** `|E| · |T|` assignments up front, then repeats `k`
//! times: scan *every* live assignment to find the top valid one, select it,
//! and recompute from scratch the score of every remaining assignment in the
//! selected interval. Its two inefficiencies — full-table scans and full
//! per-interval recomputation — are exactly what INC/HOR/HOR-I attack.

use crate::common::{
    max_duration, stale_window, timed_result, Cand, RunConfig, ScheduleResult, Scheduler, Scratch,
};
use ses_core::model::Instance;
use ses_core::parallel::par_chunks_mut;
use ses_core::schedule::Schedule;
use ses_core::scoring::{EngineProfile, ScoringEngine};
use ses_core::stats::Stats;
use ses_core::{EventId, IntervalId};
use std::time::Instant;

/// The baseline greedy algorithm (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Alg;

impl Scheduler for Alg {
    fn name(&self) -> &'static str {
        "ALG"
    }

    fn run_configured(
        &self,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        scratch: &mut Scratch,
    ) -> ScheduleResult {
        timed_result(self.name(), inst, k, || run_alg(inst, k, cfg, scratch))
    }
}

fn run_alg(
    inst: &Instance,
    k: usize,
    cfg: RunConfig,
    scratch: &mut Scratch,
) -> (Schedule, Stats, Option<EngineProfile>) {
    let threads = cfg.threads;
    let num_events = inst.num_events();
    let num_intervals = inst.num_intervals();
    let mut engine = ScoringEngine::with_threads(inst, threads);
    if cfg.profile {
        engine.enable_profiling();
    }
    let mut schedule = Schedule::new(inst);
    let max_dur = max_duration(inst);

    // scores[t * |E| + e]; assignments that are infeasible even on the empty
    // schedule (only possible under the duration extension, where a spanning
    // event can run off the calendar) are born dead.
    let scores = scratch.reset_slots(num_events * num_intervals);
    if threads.is_sequential() || num_intervals < 2 {
        for t in 0..num_intervals {
            for e in 0..num_events {
                let (event, interval) = (EventId::new(e), IntervalId::new(t));
                scores[t * num_events + e] = if schedule.is_valid_assignment(inst, event, interval)
                {
                    Some(engine.assignment_score(event, interval))
                } else {
                    None
                };
            }
        }
    } else {
        // Parallel candidate generation: one score-table row (interval) per
        // chunk, each scored via the stat-free `peek_score` (bit-identical
        // to `assignment_score`; the pool does not nest), then the Stats
        // bookkeeping replayed in the sequential pass's (t, e) order.
        let gen_start = Instant::now();
        {
            let eng = &engine;
            let sched = &schedule;
            par_chunks_mut(threads, scores, num_events, |t, row| {
                let interval = IntervalId::new(t);
                for (e, slot) in row.iter_mut().enumerate() {
                    let event = EventId::new(e);
                    *slot = if sched.is_valid_assignment(inst, event, interval) {
                        Some(eng.peek_score(event, interval))
                    } else {
                        None
                    };
                }
            });
        }
        let gen_ns = gen_start.elapsed().as_nanos() as u64;
        let mut generated = 0u64;
        for t in 0..num_intervals {
            for e in 0..num_events {
                if scores[t * num_events + e].is_some() {
                    let cost = engine.score_cost(EventId::new(e));
                    engine.stats_mut().record_score(cost);
                    generated += 1;
                }
            }
        }
        engine.add_scoring_time(gen_ns, generated);
    }

    while schedule.len() < k {
        // Full scan for the top valid assignment (the paper's first
        // shortcoming: every step examines all assignments).
        let mut best: Option<Cand> = None;
        for t in 0..num_intervals {
            let interval = IntervalId::new(t);
            for e in 0..num_events {
                let idx = t * num_events + e;
                let Some(score) = scores[idx] else { continue };
                engine.stats_mut().record_examined(1);
                let event = EventId::new(e);
                if !schedule.is_valid_assignment(inst, event, interval) {
                    scores[idx] = None;
                    continue;
                }
                let cand = Cand::new(score, interval, event);
                if best.is_none_or(|b| cand.beats(&b)) {
                    best = Some(cand);
                }
            }
        }
        let Some(chosen) = best else { break };

        schedule
            .assign(inst, chosen.event, chosen.interval)
            .expect("scanned assignment must be valid");
        engine.apply(chosen.event, chosen.interval);
        if schedule.len() >= k {
            break; // no point refreshing scores after the final selection
        }

        // Kill the selected event everywhere.
        for t in 0..num_intervals {
            scores[t * num_events + chosen.event.index()] = None;
        }
        // Recompute every surviving assignment whose span intersects the
        // placed span, from scratch (the paper's second shortcoming; for
        // duration-1 this is exactly the selected interval).
        let placed_start = chosen.interval.index();
        let placed_end = placed_start + inst.events[chosen.event.index()].duration as usize;
        for ti in stale_window(inst, max_dur, chosen.event, chosen.interval) {
            for e in 0..num_events {
                let idx = ti * num_events + e;
                if scores[idx].is_none() {
                    continue;
                }
                let d_e = inst.events[e].duration as usize;
                if ti + d_e <= placed_start || ti >= placed_end {
                    continue; // spans don't intersect
                }
                engine.stats_mut().record_examined(1);
                let (event, interval) = (EventId::new(e), IntervalId::new(ti));
                if schedule.is_valid_assignment(inst, event, interval) {
                    scores[idx] = Some(engine.assignment_score_update(event, interval));
                } else {
                    scores[idx] = None;
                }
            }
        }
    }

    let stats = *engine.stats();
    let profile = engine.take_profile();
    (schedule, stats, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::model::running_example;
    use ses_core::Assignment;

    /// Example 2: ALG selects e4@t2, then e1@t1, then e2@t2.
    #[test]
    fn running_example_trace() {
        let inst = running_example();
        let res = Alg.run(&inst, 3);
        assert_eq!(
            res.schedule.assignments(),
            &[
                Assignment::new(EventId::new(3), IntervalId::new(1)),
                Assignment::new(EventId::new(0), IntervalId::new(0)),
                Assignment::new(EventId::new(1), IntervalId::new(1)),
            ]
        );
        assert!((res.utility - 1.4073).abs() < 5e-4);
    }

    /// Example 2 performs 8 initial computations plus 4 updates: 3 updates
    /// of t2 after selecting e4, then 1 update of t1's e3 after selecting e1
    /// (e2@t1 became invalid). No updates follow the final selection.
    #[test]
    fn running_example_update_counts() {
        let inst = running_example();
        let res = Alg.run(&inst, 3);
        assert_eq!(res.stats.score_computations, 12);
        assert_eq!(res.stats.score_updates, 4);
    }

    #[test]
    fn k_zero_returns_empty() {
        let inst = running_example();
        let res = Alg.run(&inst, 0);
        assert!(res.schedule.is_empty());
        assert_eq!(res.utility, 0.0);
    }

    #[test]
    fn k_larger_than_feasible_saturates() {
        let inst = running_example();
        // Only 2 intervals × 3 distinct locations; e1/e2 share Stage 1, so at
        // most 2 of {e1, e2} slots... here all 4 events fit (e1@t1, e2@t2,
        // e3, e4 anywhere) — ask for more than |E|.
        let res = Alg.run(&inst, 10);
        assert_eq!(res.schedule.len(), 4);
        assert!(res.schedule.verify_feasible(&inst).is_ok());
    }

    #[test]
    fn respects_resource_budget() {
        let mut inst = running_example();
        inst.resources = 1.0; // one unit-cost event per interval
        let res = Alg.run(&inst, 4);
        assert_eq!(res.schedule.len(), 2);
        for t in 0..2 {
            assert!(res.schedule.events_at(IntervalId::new(t)).len() <= 1);
        }
    }
}
