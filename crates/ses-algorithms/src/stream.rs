//! `STREAM` — incremental re-scheduling for dynamic event streams.
//!
//! The paper schedules a *static* batch; [`StreamScheduler`] maintains a
//! schedule while the instance evolves under a [`DeltaOp`] log. Instead of
//! rerunning a scheduler end-to-end per op, each repair warm-starts from
//! two caches:
//!
//! 1. the engine's **competing-mass table** `C(u,t)` — the `O(|U|·|C|)`
//!    setup term — maintained incrementally by
//!    [`ses_core::delta::refresh_comp_mass`] (bit-identical to a cold
//!    rebuild);
//! 2. the **empty-schedule score table**: for every assignment `(e, t)`,
//!    either the exact Eq.-4 score on the empty schedule or a sound *upper
//!    bound* on it.
//!
//! Per op, only the affected table cells are repaired (the invalidation
//! contract lives in `ses_core::delta`'s module docs):
//!
//! * `AddEvent` / `ShiftInterest` — rescore that event's `|T|` cells;
//! * `RemoveEvent` — drop the column, everything else stays exact;
//! * `AddUsers` / `RetireUsers` — no rescoring: a user's contribution to an
//!   empty-schedule score is separable (`w(u)·σ(u,t)·gain(C(u,t), 0, µ)`
//!   summed over the spanned intervals), so each cell's cached value plus
//!   (minus) the churned users' contributions is the new score up to
//!   summation-order float error. A relative safety epsilon keeps it a
//!   *sound upper bound*; exactness (bit-identity) is restored only by a
//!   real refresh.
//!
//! The selection loop then re-runs with INC-style bound maintenance
//! (§3.2's Corollary 1) seeded from the table: bound-only entries are
//! refreshed lazily, exactly when their bound could still win a round, and
//! a refresh that lands on a still-virgin span is written back to the
//! table as exact — repeated repairs converge back to a fully exact cache.
//!
//! ### Why repair is result-equivalent to full recompute
//!
//! Every round still selects the *true greedy argmax* among valid
//! assignments under the canonical [`Cand`] tie-break — the bound
//! machinery only decides what gets refreshed, never what wins. A full
//! recompute (INC, or a cold [`StreamScheduler::new`]) makes the same
//! argmax selections, so schedules match assignment-for-assignment and
//! utilities bit-for-bit; `tests/stream_equivalence.rs` proves it against
//! `INC` over 500-op streams at 1 and 4 threads. What differs is the work:
//! a repair's `assignments_examined` stays strictly below a recompute's
//! (which must rescore all `|E|·|T|` cells) for every single-op delta.

use crate::common::{
    better, max_duration, reset_interval_lists, stale_window, Cand, Entry, IntervalList, Scratch,
};
use serde::{Deserialize, Serialize};
use ses_core::delta::coalesce::CoalesceError;
use ses_core::delta::{self, DeltaEffect, DeltaOp};
use ses_core::error::{DeltaError, ServiceError};
use ses_core::model::Instance;
use ses_core::parallel::{par_chunks_mut, Threads};
use ses_core::schedule::Schedule;
use ses_core::scoring::utility::total_utility;
use ses_core::scoring::{ScoringEngine, StaticCaches, WarmCacheState};
use ses_core::stats::Stats;
use ses_core::{EventId, IntervalId};
use std::time::Instant;

/// One cached empty-schedule score-table cell.
#[derive(Debug, Clone, Copy)]
struct TableEntry {
    /// The empty-schedule assignment score — exact, or an upper bound.
    score: f64,
    /// Whether `score` is the exact blocked-reduction value.
    exact: bool,
}

/// Measurements of one repair (or of the cold build, for the first
/// report): what it cost and what it produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Score-table cells recomputed eagerly during table maintenance.
    pub rescored: usize,
    /// This repair's counters (scores, user ops, assignments examined).
    pub stats: Stats,
    /// Utility Ω(S) of the repaired schedule.
    pub utility: f64,
    /// Size of the repaired schedule.
    pub schedule_len: usize,
    /// Wall-clock milliseconds of the repair.
    pub time_ms: f64,
}

/// One serialized score-table cell — the public mirror of the private
/// cache entry, so durable snapshots have an explicit layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableCellState {
    /// The cached empty-schedule score — exact, or a sound upper bound.
    pub score: f64,
    /// Whether `score` is the exact blocked-reduction value.
    pub exact: bool,
}

/// Versioned serialized form of a whole [`StreamScheduler`] — everything a
/// restored session needs to keep answering requests **byte-identically**
/// to the uninterrupted run: the live instance (storage layout and
/// constraint set ride along), the maintained schedule, the engine's warm
/// caches, the score table with its exact/bound flags (history-dependent:
/// they steer future lazy refreshes and therefore future `Stats`), and
/// the lifetime counters. Produced by [`StreamScheduler::to_state`],
/// consumed by [`StreamScheduler::from_state`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamState {
    /// Layout version; readers reject anything they do not speak.
    pub version: u32,
    /// The live instance, post every applied op.
    pub inst: Instance,
    /// Maintained schedule size `k`.
    pub k: usize,
    /// Resolved worker-thread count (≥ 1). Results are thread-invariant;
    /// this only preserves the service's warm-match behavior on restore.
    pub threads: usize,
    /// Whether the bound-first gate is enabled for repairs.
    pub bound_gate: bool,
    /// The engine's warm caches (competing-mass + fused kernel tables).
    pub warm: WarmCacheState,
    /// Empty-schedule score table, `[t·|E| + e]`; `None` marks cells
    /// infeasible on the empty schedule.
    pub table: Vec<Option<TableCellState>>,
    /// The maintained schedule.
    pub schedule: Schedule,
    /// Ω(S) of the maintained schedule.
    pub utility: f64,
    /// Counters accumulated since the cold build.
    pub cumulative: Stats,
    /// The most recent repair's measurements, wall-clock zeroed — snapshot
    /// bytes are fully deterministic for a seeded session.
    pub last: RepairReport,
    /// Ops applied so far.
    pub ops_applied: u64,
}

/// Maintains a schedule over a live instance under a [`DeltaOp`] stream
/// (see the module docs for the repair machinery and its equivalence
/// guarantee).
#[derive(Debug)]
pub struct StreamScheduler {
    inst: Instance,
    k: usize,
    threads: Threads,
    /// Warm competing-mass table `C(u,t)`, `[t·|U| + u]`.
    comp_mass: Vec<f64>,
    /// Empty-schedule score table, `[t·|E| + e]`; `None` marks assignments
    /// infeasible on the empty schedule (off-calendar spans).
    table: Vec<Option<TableEntry>>,
    schedule: Schedule,
    utility: f64,
    cumulative: Stats,
    last: RepairReport,
    ops_applied: u64,
    /// Reusable selection buffers — repairs after the first allocate
    /// nothing in the scheduling loop.
    scratch: Scratch,
    /// Warm instance-static engine caches (fused weight table + bound
    /// invariants), reused across repairs and invalidated only by user
    /// churn — the ops that can change user weights, activity rows, or
    /// competing masses.
    engine_caches: Option<StaticCaches>,
    /// Opt-in bound-first gate for the repair's lazy refreshes (see
    /// [`crate::common::RunConfig::bound_gate`]; selection-neutral).
    bound_gate: bool,
}

impl StreamScheduler {
    /// Cold build: fresh engine (pays the competing-mass setup), full
    /// `|E|·|T|` score table, one selection run. This is also the "full
    /// recompute" baseline the incremental path is measured against —
    /// [`last_repair`](Self::last_repair) holds its cost.
    pub fn new(inst: Instance, k: usize, threads: Threads) -> Self {
        let start = Instant::now();
        let mut scratch = Scratch::new();
        let mut engine = ScoringEngine::with_threads(&inst, threads);
        let mut table = score_table_full(&mut engine, threads);
        let rescored = table.iter().flatten().count();
        let schedule = run_selection(&inst, &mut engine, &mut table, k, &mut scratch);
        let stats = *engine.stats();
        let (comp_mass, engine_caches) = engine.into_warm_parts();
        let utility = total_utility(&inst, &schedule);
        let last = RepairReport {
            rescored,
            stats,
            utility,
            schedule_len: schedule.len(),
            time_ms: start.elapsed().as_secs_f64() * 1e3,
        };
        Self {
            inst,
            k,
            threads,
            comp_mass,
            table,
            schedule,
            utility,
            cumulative: stats,
            last,
            ops_applied: 0,
            scratch,
            engine_caches: Some(engine_caches),
            bound_gate: false,
        }
    }

    /// Toggles the bound-first gate for subsequent repairs. The gate never
    /// changes a repaired schedule or utility — only how many stale
    /// candidates pay for a full refresh sweep (`Stats::bound_skips` counts
    /// the ones that did not).
    pub fn with_bound_gate(mut self, on: bool) -> Self {
        self.bound_gate = on;
        self
    }

    /// Applies one op and repairs the schedule. Returns this repair's
    /// measurements (also available as [`last_repair`](Self::last_repair)).
    ///
    /// # Errors
    /// Any [`DeltaError`] from validation; on error nothing changes.
    pub fn apply(&mut self, op: &DeltaOp) -> Result<&RepairReport, DeltaError> {
        let start = Instant::now();
        // Leaving users' bound deductions need their pre-op µ/σ/C values.
        let retire_adjust = match op {
            DeltaOp::RetireUsers { users } if users.iter().all(|&u| u < self.inst.num_users()) => {
                Some(user_cell_contributions(&self.inst, &self.comp_mass, users))
            }
            _ => None,
        };
        let effect = delta::apply(&mut self.inst, op)?;
        delta::refresh_comp_mass(&mut self.comp_mass, &self.inst, &effect);
        let adjust = match &effect {
            DeltaEffect::UsersAdded { first, count } => {
                let joined: Vec<usize> = (*first..first + count).collect();
                Some(user_cell_contributions(&self.inst, &self.comp_mass, &joined))
            }
            DeltaEffect::UsersRetired { .. } => retire_adjust,
            _ => None,
        };
        // User churn invalidates the static caches (weights/activity rows
        // resize, competing masses change); every other op reuses them,
        // making the warm rebuild O(|U|·|T|) lighter.
        let warm_caches = match &effect {
            DeltaEffect::UsersAdded { .. } | DeltaEffect::UsersRetired { .. } => {
                self.engine_caches = None;
                None
            }
            _ => self.engine_caches.take(),
        };
        let comp = std::mem::take(&mut self.comp_mass);
        let mut engine = match warm_caches {
            Some(caches) => ScoringEngine::from_warm_parts(&self.inst, comp, caches, self.threads),
            None => ScoringEngine::from_comp_mass(&self.inst, comp, self.threads),
        };
        let rescored =
            maintain_table(&mut self.table, &effect, &mut engine, adjust, self.bound_gate);
        let schedule =
            run_selection(&self.inst, &mut engine, &mut self.table, self.k, &mut self.scratch);
        let stats = *engine.stats();
        let (comp_mass, engine_caches) = engine.into_warm_parts();
        self.comp_mass = comp_mass;
        self.engine_caches = Some(engine_caches);
        self.utility = total_utility(&self.inst, &schedule);
        self.schedule = schedule;
        self.cumulative += stats;
        self.ops_applied += 1;
        self.last = RepairReport {
            rescored,
            stats,
            utility: self.utility,
            schedule_len: self.schedule.len(),
            time_ms: start.elapsed().as_secs_f64() * 1e3,
        };
        Ok(&self.last)
    }

    /// Applies a whole batch of ops under a **single** repair: the score
    /// table is maintained per op (same invalidation contract as
    /// [`apply`](Self::apply)), but the selection loop — the dominant cost
    /// of a repair — runs once, at the end. Because selection always
    /// re-derives the true greedy argmax sequence on the live instance,
    /// the resulting schedule, utility bits, and assignments are identical
    /// to applying the same ops one at a time (what differs is the work,
    /// which the per-window `Stats` in the report measure).
    ///
    /// [`ops_applied`](Self::ops_applied) counts every op of the batch.
    ///
    /// # Errors
    /// [`CoalesceError`] wrapping the first rejected op. The valid prefix
    /// stays applied and selection still runs, so the schedule always
    /// matches the live instance even on failure.
    pub fn apply_batch(&mut self, ops: &[DeltaOp]) -> Result<&RepairReport, CoalesceError> {
        let start = Instant::now();
        let mut rescored = 0usize;
        let mut table_stats = Stats::default();
        let mut failed = None;
        for (op_index, op) in ops.iter().enumerate() {
            let retire_adjust = match op {
                DeltaOp::RetireUsers { users }
                    if users.iter().all(|&u| u < self.inst.num_users()) =>
                {
                    Some(user_cell_contributions(&self.inst, &self.comp_mass, users))
                }
                _ => None,
            };
            let effect = match delta::apply(&mut self.inst, op) {
                Ok(effect) => effect,
                Err(source) => {
                    failed = Some(CoalesceError { op_index, source });
                    break;
                }
            };
            delta::refresh_comp_mass(&mut self.comp_mass, &self.inst, &effect);
            let adjust = match &effect {
                DeltaEffect::UsersAdded { first, count } => {
                    let joined: Vec<usize> = (*first..first + count).collect();
                    Some(user_cell_contributions(&self.inst, &self.comp_mass, &joined))
                }
                DeltaEffect::UsersRetired { .. } => retire_adjust,
                _ => None,
            };
            let warm_caches = match &effect {
                DeltaEffect::UsersAdded { .. } | DeltaEffect::UsersRetired { .. } => {
                    self.engine_caches = None;
                    None
                }
                _ => self.engine_caches.take(),
            };
            let comp = std::mem::take(&mut self.comp_mass);
            let mut engine = match warm_caches {
                Some(caches) => {
                    ScoringEngine::from_warm_parts(&self.inst, comp, caches, self.threads)
                }
                None => ScoringEngine::from_comp_mass(&self.inst, comp, self.threads),
            };
            rescored +=
                maintain_table(&mut self.table, &effect, &mut engine, adjust, self.bound_gate);
            table_stats += *engine.stats();
            let (comp_mass, engine_caches) = engine.into_warm_parts();
            self.comp_mass = comp_mass;
            self.engine_caches = Some(engine_caches);
            self.ops_applied += 1;
        }
        // One selection for the whole batch — also after a mid-batch
        // failure, so the schedule matches whatever prefix was applied.
        let warm_caches = self.engine_caches.take();
        let comp = std::mem::take(&mut self.comp_mass);
        let mut engine = match warm_caches {
            Some(caches) => ScoringEngine::from_warm_parts(&self.inst, comp, caches, self.threads),
            None => ScoringEngine::from_comp_mass(&self.inst, comp, self.threads),
        };
        let schedule =
            run_selection(&self.inst, &mut engine, &mut self.table, self.k, &mut self.scratch);
        let mut stats = *engine.stats();
        stats += table_stats;
        let (comp_mass, engine_caches) = engine.into_warm_parts();
        self.comp_mass = comp_mass;
        self.engine_caches = Some(engine_caches);
        self.utility = total_utility(&self.inst, &schedule);
        self.schedule = schedule;
        self.cumulative += stats;
        self.last = RepairReport {
            rescored,
            stats,
            utility: self.utility,
            schedule_len: self.schedule.len(),
            time_ms: start.elapsed().as_secs_f64() * 1e3,
        };
        match failed {
            Some(err) => Err(err),
            None => Ok(&self.last),
        }
    }

    /// Coalesces `window` against the live instance (see
    /// [`ses_core::delta::coalesce`]) and applies the canonical batch under
    /// one repair — the windowed-ingestion entry point. The repaired
    /// schedule and utility bits equal both the op-at-a-time path and a
    /// cold rebuild of the post-window instance.
    ///
    /// [`ops_applied`](Self::ops_applied) advances by the *coalesced* op
    /// count (the ops the scheduler actually consumed), which may be far
    /// below `window.len()` on redundant traffic.
    ///
    /// # Errors
    /// [`CoalesceError`] from window validation, indexed by window
    /// position; nothing is applied in that case (window-atomic, unlike
    /// the op-at-a-time path's per-op atomicity).
    pub fn repair_batch(&mut self, window: &[DeltaOp]) -> Result<&RepairReport, CoalesceError> {
        let batch = delta::coalesce::coalesce(&self.inst, window)?;
        // The coalesced batch re-validates clean by construction; any
        // rejection here would be an internal invariant breach, so the
        // error (with its batch-local index) is simply propagated.
        self.apply_batch(&batch)
    }

    /// Replaces the instance's [`ConstraintSet`] wholesale and repairs the
    /// schedule under the new rules — the warm-path counterpart of building
    /// a constrained instance cold (the service's `Schedule` request with a
    /// `constraints` block routes here when a stream session is live).
    ///
    /// Scores are constraint-independent, so no cached score is touched;
    /// only the table's empty-schedule *validity mask* is reconciled (cells
    /// the new rules open up get scored, cells they close get dropped), and
    /// selection re-runs through the constraint-aware `check_assign` gate.
    ///
    /// # Errors
    /// Any [`BuildError`] from validating the set against the current
    /// events; nothing changes on error.
    ///
    /// [`ConstraintSet`]: ses_core::constraints::ConstraintSet
    pub fn set_constraints(
        &mut self,
        constraints: ses_core::constraints::ConstraintSet,
    ) -> Result<&RepairReport, ses_core::error::BuildError> {
        constraints.validate(self.inst.num_events())?;
        let start = Instant::now();
        self.inst.constraints = constraints;
        let warm_caches = self.engine_caches.take();
        let comp = std::mem::take(&mut self.comp_mass);
        let mut engine = match warm_caches {
            Some(caches) => ScoringEngine::from_warm_parts(&self.inst, comp, caches, self.threads),
            None => ScoringEngine::from_comp_mass(&self.inst, comp, self.threads),
        };
        let num_e = self.inst.num_events();
        let probe = Schedule::new(&self.inst);
        let mut rescored = 0;
        for t in 0..self.inst.num_intervals() {
            let interval = IntervalId::new(t);
            for e in 0..num_e {
                let event = EventId::new(e);
                let idx = t * num_e + e;
                let valid = probe.is_valid_assignment(&self.inst, event, interval);
                match (&self.table[idx], valid) {
                    (None, true) => {
                        engine.stats_mut().record_examined(1);
                        self.table[idx] = if self.bound_gate {
                            engine.stats_mut().record_bound_skip();
                            Some(TableEntry {
                                score: engine.score_bound(event, interval),
                                exact: false,
                            })
                        } else {
                            rescored += 1;
                            Some(TableEntry {
                                score: engine.assignment_score(event, interval),
                                exact: true,
                            })
                        };
                    }
                    (Some(_), false) => self.table[idx] = None,
                    _ => {}
                }
            }
        }
        let schedule =
            run_selection(&self.inst, &mut engine, &mut self.table, self.k, &mut self.scratch);
        let stats = *engine.stats();
        let (comp_mass, engine_caches) = engine.into_warm_parts();
        self.comp_mass = comp_mass;
        self.engine_caches = Some(engine_caches);
        self.utility = total_utility(&self.inst, &schedule);
        self.schedule = schedule;
        self.cumulative += stats;
        self.last = RepairReport {
            rescored,
            stats,
            utility: self.utility,
            schedule_len: self.schedule.len(),
            time_ms: start.elapsed().as_secs_f64() * 1e3,
        };
        Ok(&self.last)
    }

    /// The live instance in its current (post-op) state.
    #[inline]
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// The current repaired schedule.
    #[inline]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Ω(S) of the current schedule (independent evaluator).
    #[inline]
    pub fn utility(&self) -> f64 {
        self.utility
    }

    /// The requested schedule size `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured worker-thread count. Results are bit-identical for
    /// every count — schedule, utility bits, and full [`Stats`].
    #[inline]
    pub fn threads(&self) -> Threads {
        self.threads
    }

    /// Whether the bound-first gate is enabled for repairs (see
    /// [`with_bound_gate`](Self::with_bound_gate)).
    #[inline]
    pub fn bound_gate(&self) -> bool {
        self.bound_gate
    }

    /// Counters accumulated since construction (cold build included).
    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.cumulative
    }

    /// Measurements of the most recent repair (or of the cold build if no
    /// op was applied yet).
    #[inline]
    pub fn last_repair(&self) -> &RepairReport {
        &self.last
    }

    /// Number of ops applied so far.
    #[inline]
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// The state-layout version [`to_state`](Self::to_state) writes.
    pub const STATE_VERSION: u32 = 1;

    /// Serializes the full warm state for a durable snapshot (see
    /// [`StreamState`]). The selection scratch is excluded (pure capacity,
    /// behavior-neutral) and the report's wall clock is zeroed, so the
    /// state of a seeded session is deterministic byte for byte.
    pub fn to_state(&self) -> StreamState {
        let warm = match &self.engine_caches {
            Some(caches) => caches.to_state(&self.comp_mass),
            // The caches are materialized outside every method body; this
            // arm only guards against serializing mid-construction state.
            None => {
                let engine =
                    ScoringEngine::from_comp_mass(&self.inst, self.comp_mass.clone(), self.threads);
                let (comp_mass, caches) = engine.into_warm_parts();
                caches.to_state(&comp_mass)
            }
        };
        StreamState {
            version: Self::STATE_VERSION,
            inst: self.inst.clone(),
            k: self.k,
            threads: self.threads.get(),
            bound_gate: self.bound_gate,
            warm,
            table: self
                .table
                .iter()
                .map(|c| c.map(|c| TableCellState { score: c.score, exact: c.exact }))
                .collect(),
            schedule: self.schedule.clone(),
            utility: self.utility,
            cumulative: self.cumulative,
            last: RepairReport { time_ms: 0.0, ..self.last.clone() },
            ops_applied: self.ops_applied,
        }
    }

    /// Rebuilds a warm scheduler from a persisted state, re-validating
    /// everything checkable before trusting it: the layout version, the
    /// instance's own invariants ([`Instance::validate`]), every cache
    /// shape, and the schedule — which is **replayed** assignment by
    /// assignment through the feasibility gate and required to reproduce
    /// the stored bookkeeping (and the stored utility bits) exactly.
    ///
    /// # Errors
    /// [`ServiceError::Corrupt`] naming the first failing check; content
    /// that passes answers subsequent requests bit-identically to the
    /// scheduler [`to_state`](Self::to_state) captured.
    pub fn from_state(state: StreamState) -> Result<Self, ServiceError> {
        let corrupt = |what: String| ServiceError::corrupt(format!("stream state: {what}"));
        if state.version != Self::STATE_VERSION {
            return Err(corrupt(format!(
                "layout version {} (this build speaks {})",
                state.version,
                Self::STATE_VERSION
            )));
        }
        if state.threads == 0 {
            return Err(corrupt("thread count of 0".into()));
        }
        state.inst.validate().map_err(|e| corrupt(format!("instance fails validation: {e}")))?;
        let (users, events, intervals) =
            (state.inst.num_users(), state.inst.num_events(), state.inst.num_intervals());
        let (comp_mass, caches) =
            StaticCaches::from_state(state.warm, users, intervals).map_err(corrupt)?;
        if state.table.len() != events * intervals {
            return Err(corrupt(format!(
                "score table has {} cells, instance needs {}",
                state.table.len(),
                events * intervals
            )));
        }
        let mut replayed = Schedule::new(&state.inst);
        for a in state.schedule.assignments() {
            replayed
                .assign(&state.inst, a.event, a.interval)
                .map_err(|e| corrupt(format!("schedule replay: {e}")))?;
        }
        if replayed != state.schedule {
            return Err(corrupt("schedule bookkeeping does not match its own assignments".into()));
        }
        if total_utility(&state.inst, &state.schedule).to_bits() != state.utility.to_bits() {
            return Err(corrupt("stored utility does not match the schedule".into()));
        }
        Ok(Self {
            k: state.k,
            threads: Threads::new(state.threads),
            comp_mass,
            table: state
                .table
                .iter()
                .map(|c| c.map(|c| TableEntry { score: c.score, exact: c.exact }))
                .collect(),
            schedule: state.schedule,
            utility: state.utility,
            cumulative: state.cumulative,
            last: state.last,
            ops_applied: state.ops_applied,
            scratch: Scratch::new(),
            engine_caches: Some(caches),
            bound_gate: state.bound_gate,
            inst: state.inst,
        })
    }
}

/// Scores the full empty-schedule table. At `threads > 1` the rows fan out
/// through the stat-free [`ScoringEngine::peek_score`] (the pool does not
/// nest) and the `Stats` bookkeeping is replayed in the sequential pass's
/// `(t, e)` order — the ALG candidate-generation pattern.
fn score_table_full(engine: &mut ScoringEngine<'_>, threads: Threads) -> Vec<Option<TableEntry>> {
    let inst = engine.instance();
    let (num_e, num_t) = (inst.num_events(), inst.num_intervals());
    let probe = Schedule::new(inst);
    let mut table: Vec<Option<TableEntry>> = vec![None; num_e * num_t];
    if threads.is_sequential() || num_t < 2 {
        for t in 0..num_t {
            let interval = IntervalId::new(t);
            for e in 0..num_e {
                let event = EventId::new(e);
                if probe.is_valid_assignment(inst, event, interval) {
                    engine.stats_mut().record_examined(1);
                    let score = engine.assignment_score(event, interval);
                    table[t * num_e + e] = Some(TableEntry { score, exact: true });
                }
            }
        }
    } else {
        let eng: &ScoringEngine<'_> = engine;
        par_chunks_mut(threads, &mut table, num_e, |t, row| {
            let interval = IntervalId::new(t);
            for (e, slot) in row.iter_mut().enumerate() {
                let event = EventId::new(e);
                if probe.is_valid_assignment(inst, event, interval) {
                    *slot =
                        Some(TableEntry { score: eng.peek_score(event, interval), exact: true });
                }
            }
        });
        for t in 0..num_t {
            for e in 0..num_e {
                if table[t * num_e + e].is_some() {
                    engine.stats_mut().record_examined(1);
                    let cost = engine.score_cost(EventId::new(e));
                    engine.stats_mut().record_score(cost);
                }
            }
        }
    }
    table
}

/// Rescores one event's `|T|` table cells (the engine's scheduled mass must
/// be zero). Returns the number of cells scored eagerly.
///
/// With the bound-first gate on, the cells are instead *seeded* with the
/// engine's O(duration) separable upper bound and marked inexact
/// (`Stats::bound_skips` counts them) — the selection machinery already
/// refreshes inexact cells lazily, exactly when their bound could still win
/// a round, and writes virgin-span refreshes back as exact. A column the
/// schedule never competes for thus never pays a full sweep.
fn rescore_event_column(
    table: &mut [Option<TableEntry>],
    engine: &mut ScoringEngine<'_>,
    event: EventId,
    gate: bool,
) -> usize {
    let inst = engine.instance();
    let num_e = inst.num_events();
    let probe = Schedule::new(inst);
    let mut scored = 0;
    for t in 0..inst.num_intervals() {
        let interval = IntervalId::new(t);
        table[t * num_e + event.index()] = if probe.is_valid_assignment(inst, event, interval) {
            engine.stats_mut().record_examined(1);
            if gate {
                engine.stats_mut().record_bound_skip();
                Some(TableEntry { score: engine.score_bound(event, interval), exact: false })
            } else {
                scored += 1;
                Some(TableEntry { score: engine.assignment_score(event, interval), exact: true })
            }
        } else {
            None
        };
    }
    scored
}

/// Per-cell empty-schedule score contribution of the given users:
/// `Σ_u w(u)·σ(u,ti)·gain(C(u,ti), 0, µ(u,e))` over the intervals the
/// assignment spans, laid out like the score table (`[t·|E| + e]`). This is
/// the separable piece user churn adds to (or removes from) every cached
/// score — the basis of the `AddUsers`/`RetireUsers` bound adjustments.
///
/// `inst` and `comp_mass` must be shape-consistent with the users listed.
fn user_cell_contributions(inst: &Instance, comp_mass: &[f64], users: &[usize]) -> Vec<f64> {
    use ses_core::scoring::gain;
    let (num_e, num_t, num_u) = (inst.num_events(), inst.num_intervals(), inst.num_users());
    debug_assert_eq!(comp_mass.len(), num_t * num_u);
    let mut out = vec![0.0; num_e * num_t];
    for e in 0..num_e {
        let d = inst.events[e].duration as usize;
        for t in 0..num_t {
            if t + d > num_t {
                continue; // off-calendar span: the cell is None anyway
            }
            let mut total = 0.0;
            for ti in t..t + d {
                for &u in users {
                    let mu = inst.event_interest.value(e, u);
                    total += inst.user_weight(u)
                        * inst.activity.value(u, ti)
                        * gain(comp_mass[ti * num_u + u], 0.0, mu);
                }
            }
            out[t * num_e + e] = total;
        }
    }
    out
}

/// Inflation that turns a mathematically-equal bound adjustment into a
/// sound upper bound: it dominates the summation-order float error between
/// `cached ± contribution` and a fresh blocked-reduction score (relative
/// ~`|U|·ε`, so 1e-9 covers user counts into the millions).
fn bound_safety(score: f64) -> f64 {
    1e-9 * (score.abs() + 1.0)
}

/// Repairs the score table for one applied delta, per the invalidation
/// contract in the module docs. Returns the number of cells rescored
/// eagerly (bound adjustments are free). `adjust` carries the
/// [`user_cell_contributions`] for user-churn effects.
fn maintain_table(
    table: &mut Vec<Option<TableEntry>>,
    effect: &DeltaEffect,
    engine: &mut ScoringEngine<'_>,
    adjust: Option<Vec<f64>>,
    gate: bool,
) -> usize {
    let inst = engine.instance();
    let (num_e, num_t) = (inst.num_events(), inst.num_intervals());
    match effect {
        DeltaEffect::EventAdded(event) => {
            debug_assert_eq!(event.index(), num_e - 1);
            let old_e = num_e - 1;
            let mut out = Vec::with_capacity(num_e * num_t);
            for t in 0..num_t {
                out.extend_from_slice(&table[t * old_e..(t + 1) * old_e]);
                out.push(None);
            }
            *table = out;
            rescore_event_column(table, engine, *event, gate)
        }
        DeltaEffect::EventRemoved(event) => {
            let old_e = num_e + 1;
            let mut out = Vec::with_capacity(num_e * num_t);
            for t in 0..num_t {
                let row = &table[t * old_e..(t + 1) * old_e];
                out.extend_from_slice(&row[..event.index()]);
                out.extend_from_slice(&row[event.index() + 1..]);
            }
            *table = out;
            0
        }
        DeltaEffect::InterestShifted { event, .. } => {
            rescore_event_column(table, engine, *event, gate)
        }
        DeltaEffect::UsersAdded { .. } => {
            // Old users' contribution to an empty-schedule score is
            // untouched by a join, so cached + joined-users' contribution
            // (plus safety) upper-bounds the new score tightly.
            let adj = adjust.expect("user churn carries contribution adjustments");
            for (idx, cell) in table.iter_mut().enumerate() {
                if let Some(cell) = cell {
                    let bumped = cell.score + adj[idx];
                    cell.score = bumped + bound_safety(bumped);
                    cell.exact = false;
                }
            }
            0
        }
        DeltaEffect::UsersRetired { .. } => {
            // Leaving users take exactly their contribution with them.
            let adj = adjust.expect("user churn carries contribution adjustments");
            for (idx, cell) in table.iter_mut().enumerate() {
                if let Some(cell) = cell {
                    let lowered = cell.score - adj[idx];
                    cell.score = lowered + bound_safety(lowered);
                    cell.exact = false;
                }
            }
            0
        }
        DeltaEffect::ConstraintsChanged => {
            // Scores are constraint-independent: every cached score (and its
            // exactness) is still correct. The re-run of selection that
            // follows every apply enforces the new rules via check_assign.
            0
        }
    }
}

/// Selection-phase state: INC's interval-organized machinery (the shared
/// [`IntervalList`] shape) plus the virgin-span tracking that lets
/// refreshes flow back into the table.
struct RunState<'a, 'b, 'e> {
    inst: &'a Instance,
    engine: &'e mut ScoringEngine<'b>,
    table: &'e mut [Option<TableEntry>],
    schedule: Schedule,
    lists: &'e mut Vec<IntervalList>,
    /// `M`: per interval, the top updated & valid assignment.
    m: &'e mut Vec<Option<Cand>>,
    /// Whether no scheduled mass has been applied to the interval yet — a
    /// refresh whose whole span is virgin equals the empty-schedule score
    /// and is written back to the table as exact.
    virgin: &'e mut Vec<bool>,
}

impl RunState<'_, '_, '_> {
    /// Re-derives `M[i]`: the first updated & valid entry in sorted order,
    /// dropping invalid entries encountered on the way.
    fn refresh_m(&mut self, i: usize) {
        let interval = IntervalId::new(i);
        let mut found = None;
        let mut idx = 0;
        while idx < self.lists[i].entries.len() {
            let ent = self.lists[i].entries[idx];
            if !self.schedule.is_valid_assignment(self.inst, ent.event, interval) {
                self.lists[i].entries.remove(idx);
                continue;
            }
            if ent.updated {
                found = Some(Cand::new(ent.score, interval, ent.event));
                break;
            }
            idx += 1;
        }
        self.m[i] = found;
    }

    /// The Corollary-1 update pass for one interval (INC's walk), with two
    /// stream-specific twists: only *stale* entries are examined (an
    /// updated entry is capped by `M[i]`, which Φ already covers, so
    /// passing over it is free), and a refresh landing on a still-virgin
    /// span is written back to the score table as exact.
    fn update_interval(&mut self, i: usize, mut phi: Option<Cand>) -> Option<Cand> {
        let interval = IntervalId::new(i);
        let num_e = self.inst.num_events();

        // Interval-level skip: even the best stale bound cannot reach Φ.
        if let Some(p) = phi {
            self.engine.stats_mut().record_examined(1);
            if self.lists[i].front_stale_bound().is_none_or(|b| b < p.score) {
                return phi;
            }
        }

        let mut idx = 0;
        let mut any_refresh = false;
        while idx < self.lists[i].entries.len() {
            let ent = self.lists[i].entries[idx];
            if let Some(p) = phi {
                if ent.score < p.score {
                    break; // sorted: everything below is below Φ too
                }
            }
            if ent.updated {
                idx += 1;
                continue;
            }
            self.engine.stats_mut().record_examined(1);
            if !self.schedule.is_valid_assignment(self.inst, ent.event, interval) {
                self.lists[i].entries.remove(idx);
                continue;
            }
            let fresh = self.engine.assignment_score_update(ent.event, interval);
            {
                let e = &mut self.lists[i].entries[idx];
                e.score = fresh;
                e.updated = true;
            }
            any_refresh = true;
            let d = self.inst.events[ent.event.index()].duration as usize;
            if self.virgin[i..i + d].iter().all(|&v| v) {
                self.table[i * num_e + ent.event.index()] =
                    Some(TableEntry { score: fresh, exact: true });
            }
            phi = better(phi, Some(Cand::new(fresh, interval, ent.event)));
            idx += 1;
        }

        if any_refresh {
            self.lists[i].sort();
        }
        self.lists[i].fully_updated = self.lists[i].entries.iter().all(|e| e.updated);
        self.refresh_m(i);
        phi
    }
}

/// Runs the greedy selection seeded from the score table: exact cells
/// start updated, bound cells start stale and refresh lazily. Every round
/// selects the true greedy argmax under the canonical tie-break, so the
/// result equals a from-scratch INC run on the same instance.
fn run_selection(
    inst: &Instance,
    engine: &mut ScoringEngine<'_>,
    table: &mut [Option<TableEntry>],
    k: usize,
    scratch: &mut Scratch,
) -> Schedule {
    let num_e = inst.num_events();
    let num_t = inst.num_intervals();
    let max_dur = max_duration(inst);
    let Scratch { lists, m, pending, virgin, .. } = scratch;
    reset_interval_lists(lists, m, num_t);
    virgin.clear();
    virgin.resize(num_t, true);
    for (t, list) in lists.iter_mut().enumerate() {
        list.entries.extend((0..num_e).filter_map(|e| {
            table[t * num_e + e].map(|cell| Entry {
                event: EventId::new(e),
                score: cell.score,
                updated: cell.exact,
            })
        }));
        list.fully_updated = list.entries.iter().all(|e| e.updated);
        list.sort();
    }
    let mut state =
        RunState { inst, engine, table, schedule: Schedule::new(inst), lists, m, virgin };
    for i in 0..num_t {
        state.refresh_m(i);
    }

    while state.schedule.len() < k {
        let mut phi: Option<Cand> = None;
        for cand in state.m.iter().flatten() {
            phi = better(phi, Some(*cand));
        }
        // Visit intervals whose best stale bound could still reach Φ, in
        // descending bound order so Φ tightens as early as possible.
        // (Φ only grows during the pass, so pre-filtering with the seeded
        // Φ is sound; update_interval re-checks with the current Φ.)
        pending.clear();
        pending.extend(
            (0..num_t)
                .filter(|&i| !state.lists[i].fully_updated)
                .filter_map(|i| state.lists[i].front_stale_bound().map(|b| (b, i)))
                .filter(|&(b, _)| phi.is_none_or(|p| b >= p.score)),
        );
        // total_cmp instead of partial_cmp: scores are finite here, but a
        // comparator that cannot panic costs nothing and orders the same
        // way on every value the table can hold (scores are sums of
        // non-negative products, so the -0.0 < 0.0 distinction is moot).
        pending.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        for &(_, i) in pending.iter() {
            phi = state.update_interval(i, phi);
        }

        let mut chosen: Option<Cand> = None;
        for cand in state.m.iter().flatten() {
            chosen = better(chosen, Some(*cand));
        }
        let Some(chosen) = chosen else { break };
        debug_assert!(
            state.schedule.is_valid_assignment(inst, chosen.event, chosen.interval),
            "M must only hold valid assignments"
        );

        state
            .schedule
            .assign(inst, chosen.event, chosen.interval)
            .expect("selected assignment must be valid");
        state.engine.apply(chosen.event, chosen.interval);
        let placed_start = chosen.interval.index();
        let placed_end = placed_start + inst.events[chosen.event.index()].duration as usize;
        for ti in placed_start..placed_end {
            state.virgin[ti] = false;
        }

        let span = stale_window(inst, max_dur, chosen.event, chosen.interval);
        for ti in span.clone() {
            let list = &mut state.lists[ti];
            list.entries.retain(|e| e.event != chosen.event);
            for e in &mut list.entries {
                e.updated = false;
            }
            list.fully_updated = list.entries.is_empty();
            state.m[ti] = None;
        }
        for i in 0..num_t {
            if span.contains(&i) {
                continue;
            }
            let needs_refresh = state.m[i].is_some_and(|c| {
                c.event == chosen.event
                    || !state.schedule.is_valid_assignment(state.inst, c.event, c.interval)
            });
            if needs_refresh {
                state.refresh_m(i);
            }
        }
    }

    state.schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scheduler;
    use crate::inc::Inc;
    use ses_core::model::{running_example, Event};
    use ses_core::LocationId;

    fn assert_matches_recompute(stream: &StreamScheduler) {
        let inc = Inc.run(stream.instance(), stream.k());
        assert_eq!(
            stream.schedule().assignments(),
            inc.schedule.assignments(),
            "repair diverged from full recompute"
        );
        assert_eq!(stream.utility().to_bits(), inc.utility.to_bits());
    }

    #[test]
    fn cold_build_matches_inc() {
        let inst = running_example();
        for k in 0..=4 {
            let stream = StreamScheduler::new(inst.clone(), k, Threads::sequential());
            assert_matches_recompute(&stream);
        }
    }

    #[test]
    fn every_op_kind_repairs_to_recompute() {
        let inst = running_example();
        let mut stream = StreamScheduler::new(inst, 3, Threads::sequential());
        let ops = vec![
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(3), 1.0).with_label("e5"),
                interest: vec![0.7, 0.1],
            },
            DeltaOp::ShiftInterest { event: EventId::new(0), user: 0, interest: 0.05 },
            DeltaOp::AddUsers {
                users: vec![ses_core::NewUser {
                    event_interest: vec![0.2, 0.9, 0.4, 0.1, 0.6],
                    competing_interest: vec![0.3, 0.3],
                    activity: vec![0.9, 0.4],
                    weight: None,
                }],
            },
            DeltaOp::RetireUsers { users: vec![1] },
            DeltaOp::RemoveEvent { event: EventId::new(1) },
        ];
        for op in &ops {
            stream.apply(op).unwrap();
            assert_matches_recompute(&stream);
            assert!(stream.schedule().verify_feasible(stream.instance()).is_ok());
        }
        assert_eq!(stream.ops_applied(), 5);
    }

    /// A deterministic mid-size instance (16 events × 6 intervals × 40
    /// users): big enough that the `|E|·|T|` table dominates, which is the
    /// regime the strict examined-counter claim is about. (On the 4×2
    /// running example the lazy walk's bookkeeping can exceed the 8-cell
    /// table — the warm start targets real table sizes.)
    fn mid_instance() -> Instance {
        use ses_core::model::{ActivityMatrix, CompetingEvent, DenseInterest, InstanceBuilder};
        let (events, intervals, users, competing) = (16usize, 6usize, 40usize, 9usize);
        let mut b = InstanceBuilder::new();
        for e in 0..events {
            b.add_event(Event::new(LocationId::new(e % 7), 1.0 + (e % 3) as f64));
        }
        b.add_intervals(intervals);
        for c in 0..competing {
            b.add_competing(CompetingEvent::new(IntervalId::new(c % intervals)));
        }
        let val = |a: usize, b: usize| ((a * 31 + b * 17 + 7) % 97) as f64 / 97.0;
        b.event_interest(DenseInterest::from_fn(events, users, val))
            .competing_interest(DenseInterest::from_fn(competing, users, |a, b| val(a + 3, b)))
            .activity(ActivityMatrix::from_fn(users, intervals, |a, b| val(a, b + 11)))
            .resources(10.0)
            .build()
            .expect("mid instance must validate")
    }

    /// Single-op repairs must examine strictly fewer assignments than a
    /// full recompute of the same post-op instance — the point of the
    /// warm start. Every op kind is exercised.
    #[test]
    fn repair_examines_less_than_recompute() {
        let inst = mid_instance();
        let k = 8;
        let mut stream = StreamScheduler::new(inst, k, Threads::sequential());
        let ops = vec![
            DeltaOp::ShiftInterest { event: EventId::new(1), user: 1, interest: 0.9 },
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(2), 1.0),
                interest: vec![0.6; 40],
            },
            DeltaOp::AddUsers {
                users: vec![
                    ses_core::NewUser {
                        event_interest: vec![0.5; 17], // after the AddEvent above
                        competing_interest: vec![0.1; 9],
                        activity: vec![0.5; 6],
                        weight: None,
                    };
                    2
                ],
            },
            DeltaOp::RetireUsers { users: vec![0, 17] },
            DeltaOp::RemoveEvent { event: EventId::new(4) },
        ];
        for op in &ops {
            let repaired = stream.apply(op).unwrap().stats.assignments_examined;
            let cold = StreamScheduler::new(stream.instance().clone(), k, Threads::sequential());
            let rebuilt = cold.last_repair().stats.assignments_examined;
            assert!(
                repaired < rebuilt,
                "{}: repair examined {repaired}, rebuild {rebuilt}",
                op.kind()
            );
            assert_matches_recompute(&stream);
        }
    }

    /// Refreshes on virgin spans flow back into the table: a second repair
    /// after user churn rescoring nothing still has exact cells to lean on.
    #[test]
    fn bounds_converge_back_to_exact() {
        let inst = running_example();
        let mut stream = StreamScheduler::new(inst, 2, Threads::sequential());
        stream
            .apply(&DeltaOp::AddUsers {
                users: vec![ses_core::NewUser {
                    event_interest: vec![0.8, 0.2, 0.1, 0.3],
                    competing_interest: vec![0.2, 0.5],
                    activity: vec![0.6, 0.6],
                    weight: None,
                }],
            })
            .unwrap();
        // The run refreshed at least the winning candidates on virgin spans.
        let exact_cells = stream.table.iter().flatten().filter(|c| c.exact).count();
        assert!(exact_cells > 0, "write-back must restore some exact cells");
        assert_matches_recompute(&stream);
    }

    /// Thread count must never change a repair's result — schedule,
    /// utility bits, or Stats.
    #[test]
    fn repairs_bit_identical_across_threads() {
        let inst = running_example();
        let mut s1 = StreamScheduler::new(inst.clone(), 3, Threads::sequential());
        let mut s4 = StreamScheduler::new(inst, 3, Threads::new(4));
        assert_eq!(s1.last_repair().stats, s4.last_repair().stats);
        let ops = vec![
            DeltaOp::ShiftInterest { event: EventId::new(3), user: 0, interest: 0.2 },
            DeltaOp::RemoveEvent { event: EventId::new(0) },
        ];
        for op in &ops {
            let r1 = s1.apply(op).unwrap().clone();
            let r4 = s4.apply(op).unwrap().clone();
            assert_eq!(r1.stats, r4.stats);
            assert_eq!(s1.schedule().assignments(), s4.schedule().assignments());
            assert_eq!(s1.utility().to_bits(), s4.utility().to_bits());
        }
    }

    /// Constraint churn ops repair to exactly what a full recompute of the
    /// constrained instance produces, and every repaired schedule is
    /// feasible under the live rules.
    #[test]
    fn constraint_ops_repair_to_recompute() {
        let inst = mid_instance();
        let mut stream = StreamScheduler::new(inst, 6, Threads::sequential());
        let ops = [
            DeltaOp::AddConflict { a: EventId::new(0), b: EventId::new(5) },
            DeltaOp::AddPrecedence { before: EventId::new(2), after: EventId::new(9) },
            DeltaOp::SetVenueCapacity { location: LocationId::new(0), capacity: Some(1) },
            DeltaOp::RemoveEvent { event: EventId::new(5) }, // drops the conflict
            DeltaOp::RemoveConflict { a: EventId::new(0), b: EventId::new(5) },
        ];
        for (i, op) in ops.iter().enumerate() {
            let result = stream.apply(op);
            if i == 4 {
                // The conflict died with the removed event; retracting it
                // again must fail atomically.
                assert_eq!(result.unwrap_err(), DeltaError::UnknownConstraint);
                continue;
            }
            result.unwrap();
            assert_matches_recompute(&stream);
            assert!(stream.schedule().verify_feasible(stream.instance()).is_ok());
        }
        assert!(stream.instance().constraints.has_precedence(EventId::new(2), EventId::new(8)));
    }

    /// The warm `set_constraints` path must land on the same schedule,
    /// utility bits, and table validity mask as building the constrained
    /// instance cold — in both directions (constrain, then relax).
    #[test]
    fn set_constraints_matches_cold_build() {
        use ses_core::constraints::ConstraintSet;
        let inst = mid_instance();
        let mut stream = StreamScheduler::new(inst.clone(), 6, Threads::sequential());

        let mut cs = ConstraintSet::new();
        cs.set_venue_capacity(LocationId::new(1), 1);
        cs.add_conflict(EventId::new(3), EventId::new(10));
        cs.add_precedence(EventId::new(0), EventId::new(1));
        stream.set_constraints(cs.clone()).unwrap();
        assert_matches_recompute(&stream);
        assert!(stream.schedule().verify_feasible(stream.instance()).is_ok());

        // Relaxing back to empty restores the unconstrained result.
        stream.set_constraints(ConstraintSet::new()).unwrap();
        let cold = StreamScheduler::new(inst, 6, Threads::sequential());
        assert_eq!(stream.schedule().assignments(), cold.schedule().assignments());
        assert_eq!(stream.utility().to_bits(), cold.utility().to_bits());

        // An invalid set is rejected and nothing changes.
        let before = stream.schedule().assignments().to_vec();
        let mut bad = ConstraintSet::new();
        bad.add_conflict(EventId::new(0), EventId::new(99));
        assert!(stream.set_constraints(bad).is_err());
        assert_eq!(stream.schedule().assignments(), &before[..]);
    }

    /// The duration extension: spanning events keep the virgin-span
    /// write-back and the repair equivalence honest.
    #[test]
    fn duration_events_supported() {
        let inst = running_example();
        let mut stream = StreamScheduler::new(inst, 3, Threads::sequential());
        stream
            .apply(&DeltaOp::AddEvent {
                event: Event::new(LocationId::new(4), 1.0).with_duration(2),
                interest: vec![0.9, 0.9],
            })
            .unwrap();
        assert_matches_recompute(&stream);
        stream
            .apply(&DeltaOp::ShiftInterest { event: EventId::new(4), user: 1, interest: 0.1 })
            .unwrap();
        assert_matches_recompute(&stream);
    }

    /// A batched repair must land on exactly the op-at-a-time result:
    /// same assignments, same utility bits, same live instance.
    #[test]
    fn apply_batch_matches_op_at_a_time() {
        let inst = mid_instance();
        let ops = vec![
            DeltaOp::ShiftInterest { event: EventId::new(1), user: 1, interest: 0.9 },
            DeltaOp::ShiftInterest { event: EventId::new(1), user: 1, interest: 0.2 },
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(2), 1.0),
                interest: vec![0.6; 40],
            },
            DeltaOp::RetireUsers { users: vec![0, 17] },
            DeltaOp::AddConflict { a: EventId::new(0), b: EventId::new(5) },
        ];
        let mut batched = StreamScheduler::new(inst.clone(), 8, Threads::sequential());
        let mut serial = StreamScheduler::new(inst, 8, Threads::sequential());
        batched.apply_batch(&ops).unwrap();
        for op in &ops {
            serial.apply(op).unwrap();
        }
        assert_eq!(batched.instance(), serial.instance());
        assert_eq!(batched.schedule().assignments(), serial.schedule().assignments());
        assert_eq!(batched.utility().to_bits(), serial.utility().to_bits());
        assert_eq!(batched.ops_applied(), 5);
        assert_matches_recompute(&batched);
    }

    /// The windowed entry point: a redundant window coalesces down and the
    /// repair still matches a recompute of the post-window instance.
    #[test]
    fn repair_batch_coalesces_and_matches_recompute() {
        let inst = mid_instance();
        let mut stream = StreamScheduler::new(inst.clone(), 8, Threads::sequential());
        let window = vec![
            DeltaOp::ShiftInterest { event: EventId::new(3), user: 2, interest: 0.8 },
            DeltaOp::ShiftInterest { event: EventId::new(3), user: 2, interest: 0.3 },
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(1), 1.0),
                interest: vec![0.4; 40],
            },
            DeltaOp::RemoveEvent { event: EventId::new(16) }, // cancels the add
            DeltaOp::ShiftInterest { event: EventId::new(7), user: 5, interest: 0.55 },
        ];
        stream.repair_batch(&window).unwrap();
        // Three redundant ops collapsed: only the two net drifts applied.
        assert_eq!(stream.ops_applied(), 2);
        assert_eq!(stream.instance(), &delta::materialize(&inst, &window).unwrap());
        assert_matches_recompute(&stream);

        // An empty window is one (cheap) repair that changes nothing.
        let before = stream.schedule().assignments().to_vec();
        stream.repair_batch(&[]).unwrap();
        assert_eq!(stream.schedule().assignments(), &before[..]);
        assert_eq!(stream.ops_applied(), 2);
    }

    /// A mid-batch rejection keeps the applied prefix and still runs
    /// selection, so the scheduler stays consistent with its instance.
    #[test]
    fn apply_batch_failure_keeps_prefix_consistent() {
        let inst = mid_instance();
        let mut stream = StreamScheduler::new(inst.clone(), 8, Threads::sequential());
        let ops = vec![
            DeltaOp::ShiftInterest { event: EventId::new(2), user: 3, interest: 0.9 },
            DeltaOp::RemoveEvent { event: EventId::new(99) }, // rejected
            DeltaOp::ShiftInterest { event: EventId::new(4), user: 1, interest: 0.1 },
        ];
        let err = stream.apply_batch(&ops).unwrap_err();
        assert_eq!(err.op_index, 1);
        assert_eq!(stream.ops_applied(), 1);
        assert_eq!(stream.instance(), &delta::materialize(&inst, &ops[..1]).unwrap());
        assert_matches_recompute(&stream);

        // A rejected window applies nothing at all (window-atomic).
        let before = stream.instance().clone();
        assert!(stream.repair_batch(&ops).is_err());
        assert_eq!(stream.instance(), &before);
        assert_eq!(stream.ops_applied(), 1);
    }

    #[test]
    fn invalid_op_leaves_state_untouched() {
        let inst = running_example();
        let mut stream = StreamScheduler::new(inst, 3, Threads::sequential());
        let before_sched = stream.schedule().clone();
        let before_utility = stream.utility();
        let err = stream.apply(&DeltaOp::ShiftInterest {
            event: EventId::new(9),
            user: 0,
            interest: 0.5,
        });
        assert!(err.is_err());
        assert_eq!(stream.schedule(), &before_sched);
        assert_eq!(stream.utility(), before_utility);
        assert_eq!(stream.ops_applied(), 0);
    }
}
