//! `LAZY` — CELF-style lazy greedy, an ablation of INC.
//!
//! INC combines two ideas (§3.2): *incremental updating* (stale scores are
//! upper bounds, so only entries that can still win need refreshing) and
//! the *interval-based assignment organization* (per-interval lists, `M`,
//! and interval-level skipping). This scheduler keeps only the first idea,
//! in its classic "lazy greedy" form from the influence-maximization
//! literature: one global max-heap of assignments ordered by (possibly
//! stale) score; pop the top — if its score is stale, refresh and push it
//! back; if fresh, select it.
//!
//! Staleness is tracked per interval with epochs: an entry computed at
//! epoch `g` of interval `t` is current iff `t`'s epoch is still `g`
//! (intervals bump their epoch whenever they receive an assignment).
//!
//! By the same upper-bound argument as Proposition 1, LAZY selects exactly
//! ALG's schedule. Comparing LAZY with INC in the `ablation` bench isolates
//! what the interval organization buys on top of lazy evaluation.

use crate::common::{timed_result, Cand, HeapEntry, RunConfig, ScheduleResult, Scheduler, Scratch};
use ses_core::model::Instance;
use ses_core::schedule::Schedule;
use ses_core::scoring::{EngineProfile, ScoringEngine};
use ses_core::stats::Stats;
use std::collections::BinaryHeap;

/// The lazy greedy scheduler (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct LazyGreedy;

impl Scheduler for LazyGreedy {
    fn name(&self) -> &'static str {
        "LAZY"
    }

    fn run_configured(
        &self,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        scratch: &mut Scratch,
    ) -> ScheduleResult {
        timed_result(self.name(), inst, k, || run_lazy(inst, k, cfg, scratch))
    }
}

fn run_lazy(
    inst: &Instance,
    k: usize,
    cfg: RunConfig,
    scratch: &mut Scratch,
) -> (Schedule, Stats, Option<EngineProfile>) {
    let mut engine = ScoringEngine::with_threads(inst, cfg.threads);
    if cfg.profile {
        engine.enable_profiling();
    }
    let mut schedule = Schedule::new(inst);
    let mut epoch = vec![0u64; inst.num_intervals()];
    let span_epoch = |epoch: &[u64], e: ses_core::EventId, t: ses_core::IntervalId| -> u64 {
        let d = inst.events[e.index()].duration as usize;
        epoch[t.index()..t.index() + d].iter().sum()
    };

    // The heap's backing store comes from the scratch (heapifying an empty
    // vec is free; `into_vec` hands the capacity back at the end).
    //
    // **Bound-first gate** (opt-in): entries are seeded with the engine's
    // O(duration) separable upper bound at the FORCE_REFRESH epoch instead
    // of paying `|E|·|T|` full sweeps up front. A seeded entry is swept
    // exactly when it surfaces as the heap maximum — candidates whose bound
    // never climbs that high are never swept at all (`Stats::bound_skips`
    // counts the seeds; `score_updates` the sweeps eventually paid).
    // Selections are untouched: a bound is a sound upper bound, and the
    // sentinel epoch forces a sweep before the entry can be selected.
    scratch.heap.clear();
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::from(std::mem::take(&mut scratch.heap));
    for (event, interval) in inst.assignment_universe() {
        if !schedule.is_valid_assignment(inst, event, interval) {
            continue; // duration-extension guard: off-calendar spans
        }
        if cfg.bound_gate {
            let bound = engine.score_bound(event, interval);
            engine.stats_mut().record_bound_skip();
            heap.push(HeapEntry {
                cand: Cand::new(bound, interval, event),
                epoch: HeapEntry::FORCE_REFRESH,
            });
        } else {
            let score = engine.assignment_score(event, interval);
            heap.push(HeapEntry { cand: Cand::new(score, interval, event), epoch: 0 });
        }
    }

    while schedule.len() < k {
        let Some(top) = heap.pop() else { break };
        engine.stats_mut().record_examined(1);
        let (e, t) = (top.cand.event, top.cand.interval);
        if !schedule.is_valid_assignment(inst, e, t) {
            continue; // dead entry: event scheduled or slot infeasible
        }
        if top.epoch != span_epoch(&epoch, e, t) {
            // Stale (or bound-seeded): refresh and reinsert — it may no
            // longer be the top.
            let fresh = engine.assignment_score_update(e, t);
            heap.push(HeapEntry { cand: Cand::new(fresh, t, e), epoch: span_epoch(&epoch, e, t) });
            continue;
        }
        schedule.assign(inst, e, t).expect("checked valid");
        engine.apply(e, t);
        // Every spanned interval's masses changed (duration extension).
        let d = inst.events[e.index()].duration as usize;
        for cell in &mut epoch[t.index()..t.index() + d] {
            *cell += 1;
        }
    }

    scratch.heap = {
        let mut v = heap.into_vec();
        v.clear();
        v
    };
    let stats = *engine.stats();
    let profile = engine.take_profile();
    (schedule, stats, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::Alg;
    use crate::inc::Inc;
    use ses_core::model::running_example;
    use ses_core::{EventId, IntervalId};

    #[test]
    fn matches_alg_on_running_example() {
        let inst = running_example();
        for k in 0..=4 {
            let a = Alg.run(&inst, k);
            let l = LazyGreedy.run(&inst, k);
            assert_eq!(a.schedule.assignments(), l.schedule.assignments(), "k = {k}");
        }
    }

    #[test]
    fn no_more_updates_than_alg() {
        let inst = running_example();
        let a = Alg.run(&inst, 3);
        let l = LazyGreedy.run(&inst, 3);
        assert!(l.stats.score_updates <= a.stats.score_updates);
    }

    /// INC's interval organization examines strictly less than global lazy
    /// popping on interval-structured instances — but both must agree with
    /// ALG's schedule.
    #[test]
    fn three_way_agreement() {
        let inst = running_example();
        let a = Alg.run(&inst, 4);
        let i = Inc.run(&inst, 4);
        let l = LazyGreedy.run(&inst, 4);
        assert_eq!(a.schedule.assignments(), i.schedule.assignments());
        assert_eq!(a.schedule.assignments(), l.schedule.assignments());
    }

    #[test]
    fn heap_order_matches_canonical_tie_break() {
        let mk = |s: f64, t: usize, e: usize| HeapEntry {
            cand: Cand::new(s, IntervalId::new(t), EventId::new(e)),
            epoch: 0,
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(0.5, 1, 0));
        heap.push(mk(0.5, 0, 2));
        heap.push(mk(0.9, 3, 3));
        heap.push(mk(0.5, 0, 1));
        // Pop order: highest score first, then interval asc, then event asc.
        assert_eq!(heap.pop().unwrap().cand.event, EventId::new(3));
        assert_eq!(heap.pop().unwrap().cand.event, EventId::new(1));
        assert_eq!(heap.pop().unwrap().cand.event, EventId::new(2));
        assert_eq!(heap.pop().unwrap().cand.event, EventId::new(0));
    }
}
