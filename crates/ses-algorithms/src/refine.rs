//! Local-search refinement of schedules — an extension beyond the paper.
//!
//! Motivation: the horizontal policy's known trade-off (§3.3) is that it
//! assigns the same number of events per interval even when packing more
//! events into low-competition intervals would pay. Our experiments
//! (EXPERIMENTS.md, §4.2.8 row) show this costs HOR a few percent of
//! utility on homogeneous-interest datasets. A cheap post-processing pass
//! recovers most of it:
//!
//! * **relocation** — move one scheduled event to a different interval when
//!   the net utility change is positive;
//! * **substitution** — swap a scheduled event for an unscheduled one in
//!   the same interval when the replacement's marginal gain exceeds the
//!   incumbent's current contribution.
//!
//! Both moves evaluate exact deltas through the scoring engine (remove,
//! rescore, re-add), so the utility never decreases; passes repeat until a
//! fixed point or `max_passes`.

use crate::common::{timed_result, RunConfig, ScheduleResult, Scheduler, Scratch};
use ses_core::model::Instance;
use ses_core::parallel::Threads;
use ses_core::schedule::Schedule;
use ses_core::scoring::ScoringEngine;
use ses_core::stats::Stats;
use ses_core::{EventId, IntervalId};

/// Configuration for the local search.
#[derive(Debug, Clone, Copy)]
pub struct LocalSearch {
    /// Maximum improvement passes (each pass is O(|S| · (|T| + |E|))
    /// score evaluations).
    pub max_passes: usize,
    /// Enable relocation moves.
    pub relocate: bool,
    /// Enable substitution moves.
    pub substitute: bool,
}

impl Default for LocalSearch {
    fn default() -> Self {
        Self { max_passes: 8, relocate: true, substitute: true }
    }
}

/// Minimum strict improvement for a move to be taken (guards against
/// floating-point churn cycles).
const MIN_GAIN: f64 = 1e-9;

impl LocalSearch {
    /// Refines `schedule` in place; returns the total utility improvement
    /// and the scoring work performed.
    pub fn refine(&self, inst: &Instance, schedule: &mut Schedule) -> (f64, Stats) {
        self.refine_threaded(inst, schedule, Threads::default())
    }

    /// [`refine`](Self::refine) with an explicit engine thread count
    /// (bit-identical for every count).
    pub fn refine_threaded(
        &self,
        inst: &Instance,
        schedule: &mut Schedule,
        threads: Threads,
    ) -> (f64, Stats) {
        let mut engine = ScoringEngine::with_threads(inst, threads);
        for a in schedule.assignments() {
            engine.apply(a.event, a.interval);
        }

        let mut total_gain = 0.0;
        for _ in 0..self.max_passes {
            let mut pass_gain = 0.0;
            if self.relocate {
                pass_gain += self.relocation_pass(inst, schedule, &mut engine);
            }
            if self.substitute {
                pass_gain += self.substitution_pass(inst, schedule, &mut engine);
            }
            total_gain += pass_gain;
            if pass_gain <= MIN_GAIN {
                break;
            }
        }
        (total_gain, *engine.stats())
    }

    /// Tries to move each scheduled event to its best interval.
    fn relocation_pass(
        &self,
        inst: &Instance,
        schedule: &mut Schedule,
        engine: &mut ScoringEngine<'_>,
    ) -> f64 {
        let mut gain_total = 0.0;
        let snapshot: Vec<_> = schedule.assignments().to_vec();
        for a in snapshot {
            let (e, t_old) = (a.event, a.interval);
            // Take the event out; its loss is the marginal value it had.
            engine.unapply(e, t_old);
            schedule.unassign(inst, e).expect("snapshot event is scheduled");
            let old_value = engine.assignment_score(e, t_old);

            let mut best_t = t_old;
            let mut best_value = old_value;
            for t in 0..inst.num_intervals() {
                let t = IntervalId::new(t);
                if t == t_old || !schedule.is_valid_assignment(inst, e, t) {
                    continue;
                }
                let v = engine.assignment_score(e, t);
                if v > best_value + MIN_GAIN {
                    best_value = v;
                    best_t = t;
                }
            }
            schedule.assign(inst, e, best_t).expect("checked valid");
            engine.apply(e, best_t);
            gain_total += best_value - old_value;
        }
        gain_total
    }

    /// Tries to replace each scheduled event with a better unscheduled one
    /// in the same interval.
    fn substitution_pass(
        &self,
        inst: &Instance,
        schedule: &mut Schedule,
        engine: &mut ScoringEngine<'_>,
    ) -> f64 {
        let mut gain_total = 0.0;
        let snapshot: Vec<_> = schedule.assignments().to_vec();
        for a in snapshot {
            let (e, t) = (a.event, a.interval);
            engine.unapply(e, t);
            schedule.unassign(inst, e).expect("snapshot event is scheduled");
            let incumbent = engine.assignment_score(e, t);

            let mut best = e;
            let mut best_value = incumbent;
            for cand in 0..inst.num_events() {
                let cand = EventId::new(cand);
                if cand == e
                    || schedule.is_scheduled(cand)
                    || !schedule.is_valid_assignment(inst, cand, t)
                {
                    continue;
                }
                let v = engine.assignment_score(cand, t);
                if v > best_value + MIN_GAIN {
                    best_value = v;
                    best = cand;
                }
            }
            schedule.assign(inst, best, t).expect("checked valid");
            engine.apply(best, t);
            gain_total += best_value - incumbent;
        }
        gain_total
    }
}

/// Scheduler decorator: run `inner`, then local-search the result.
#[derive(Debug, Clone, Copy)]
pub struct Refined<S> {
    /// The scheduler producing the initial solution.
    pub inner: S,
    /// The local search applied on top.
    pub search: LocalSearch,
}

impl<S: Scheduler> Refined<S> {
    /// Wraps `inner` with the default local search.
    pub fn new(inner: S) -> Self {
        Self { inner, search: LocalSearch::default() }
    }
}

impl<S: Scheduler> Scheduler for Refined<S> {
    fn name(&self) -> &'static str {
        "REFINED"
    }

    fn run_configured(
        &self,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        scratch: &mut Scratch,
    ) -> ScheduleResult {
        let base = self.inner.run_configured(inst, k, cfg, scratch);
        let mut stats = base.stats;
        let profile = base.profile;
        let mut schedule = base.schedule;
        timed_result(self.name(), inst, k, || {
            let (_, search_stats) = self.search.refine_threaded(inst, &mut schedule, cfg.threads);
            stats += search_stats;
            // The profile covers the base run; the local-search engine is
            // not instrumented.
            (schedule, stats, profile)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hor::Hor;
    use crate::top::Top;
    use ses_core::model::running_example;
    use ses_core::scoring::utility::total_utility;

    #[test]
    fn refinement_never_hurts() {
        let inst = running_example();
        for k in 1..=4 {
            let base = Hor.run(&inst, k);
            let before = base.utility;
            let mut schedule = base.schedule;
            let (gain, _) = LocalSearch::default().refine(&inst, &mut schedule);
            let after = total_utility(&inst, &schedule);
            assert!(after >= before - 1e-9, "k = {k}: {before} -> {after}");
            assert!((after - (before + gain)).abs() < 1e-9, "reported gain must be exact");
            assert!(schedule.verify_feasible(&inst).is_ok());
        }
    }

    /// On the running example the greedy is suboptimal (Ω ≈ 1.4073 vs
    /// Ω* ≈ 1.4281) — relocation alone recovers the optimum.
    #[test]
    fn recovers_optimum_on_running_example() {
        let inst = running_example();
        let base = Hor.run(&inst, 3);
        let mut schedule = base.schedule;
        let (gain, _) = LocalSearch::default().refine(&inst, &mut schedule);
        assert!(gain > 1e-3, "refinement should find the greedy gap");
        let after = total_utility(&inst, &schedule);
        assert!((after - 1.4281).abs() < 5e-4, "Ω = {after} should reach the optimum");
    }

    #[test]
    fn substitution_rescues_top() {
        let inst = running_example();
        // TOP's schedule piles by initial score; substitution + relocation
        // should strictly improve it here.
        let base = Top.run(&inst, 3);
        let refined = Refined::new(Top).run(&inst, 3);
        assert!(refined.utility >= base.utility - 1e-12);
        assert!(refined.schedule.verify_feasible(&inst).is_ok());
        assert_eq!(refined.schedule.len(), 3, "refinement preserves |S|");
    }

    #[test]
    fn fixed_point_is_stable() {
        let inst = running_example();
        let mut schedule = Refined::new(Hor).run(&inst, 3).schedule;
        // A second refinement finds nothing.
        let (gain, _) = LocalSearch::default().refine(&inst, &mut schedule);
        assert!(gain.abs() <= 1e-9, "second refinement must be a no-op, got {gain}");
    }

    #[test]
    fn disabled_moves_do_nothing() {
        let inst = running_example();
        let base = Hor.run(&inst, 3);
        let mut schedule = base.schedule.clone();
        let search = LocalSearch { max_passes: 4, relocate: false, substitute: false };
        let (gain, stats) = search.refine(&inst, &mut schedule);
        assert_eq!(gain, 0.0);
        assert_eq!(schedule, base.schedule);
        // Only the engine-construction user-ops were spent.
        assert_eq!(stats.score_computations, 0);
    }
}
