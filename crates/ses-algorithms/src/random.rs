//! `RAND` — the random-assignment baseline (§4.1).
//!
//! Shuffles the `(event, interval)` universe with a seeded RNG and takes the
//! first `k` valid assignments. No scores are ever computed; the utility of
//! the result is evaluated after the fact.

use crate::common::{timed_result, RunConfig, ScheduleResult, Scheduler, Scratch};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ses_core::model::Instance;
use ses_core::schedule::Schedule;
use ses_core::stats::Stats;

/// The RAND baseline. Deterministic for a given `seed`.
#[derive(Debug, Clone, Copy)]
pub struct Rand {
    /// RNG seed (runs with equal seeds produce equal schedules).
    pub seed: u64,
}

impl Default for Rand {
    fn default() -> Self {
        Self { seed: 0x5E5_0001 }
    }
}

impl Rand {
    /// A RAND baseline with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed }
    }
}

impl Scheduler for Rand {
    fn name(&self) -> &'static str {
        "RAND"
    }

    // RAND computes no scores, so the thread count is irrelevant — but the
    // seeded shuffle keeps it bit-identical across counts by construction.
    fn run_configured(
        &self,
        inst: &Instance,
        k: usize,
        _cfg: RunConfig,
        _scratch: &mut Scratch,
    ) -> ScheduleResult {
        timed_result(self.name(), inst, k, || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
            let mut schedule = Schedule::new(inst);
            let mut stats = Stats::new();

            let mut universe: Vec<_> = inst.assignment_universe().collect();
            universe.shuffle(&mut rng);
            for (event, interval) in universe {
                if schedule.len() >= k {
                    break;
                }
                stats.record_examined(1);
                if schedule.assign(inst, event, interval).is_ok() {
                    stats.record_selection();
                }
            }
            (schedule, stats, None)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::model::running_example;

    #[test]
    fn deterministic_per_seed() {
        let inst = running_example();
        let a = Rand::with_seed(7).run(&inst, 3);
        let b = Rand::with_seed(7).run(&inst, 3);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let inst = running_example();
        let mut distinct = false;
        let base = Rand::with_seed(0).run(&inst, 3);
        for seed in 1..20 {
            if Rand::with_seed(seed).run(&inst, 3).schedule != base.schedule {
                distinct = true;
                break;
            }
        }
        assert!(distinct, "20 seeds all produced the same schedule");
    }

    #[test]
    fn always_feasible_and_fills_k() {
        let inst = running_example();
        for seed in 0..10 {
            let res = Rand::with_seed(seed).run(&inst, 3);
            assert_eq!(res.schedule.len(), 3);
            assert!(res.schedule.verify_feasible(&inst).is_ok());
        }
    }

    #[test]
    fn computes_no_scores() {
        let inst = running_example();
        let res = Rand::default().run(&inst, 3);
        assert_eq!(res.stats.score_computations, 0);
        assert_eq!(res.stats.user_ops, 0);
    }
}
