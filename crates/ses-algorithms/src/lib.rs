//! # ses-algorithms — schedulers for the SES problem
//!
//! The four algorithms of *"Attendance Maximization for Successful Social
//! Event Planning"* (EDBT 2019) plus its baselines and a test oracle:
//!
//! | Algorithm | Module | Paper | Guarantee |
//! |-----------|--------|-------|-----------|
//! | `ALG`     | [`alg`]    | §3.1 (from ICDE'18 [4]) | greedy reference |
//! | `INC`     | [`inc`]    | §3.2, Algorithm 1 | same solution as ALG (Prop. 3) |
//! | `HOR`     | [`hor`]    | §3.3, Algorithm 2 | ALG-quality in >70% of runs |
//! | `HOR-I`   | [`hor_i`]  | §3.4, Algorithm 3 | same solution as HOR (Prop. 6) |
//! | `TOP`     | [`top`]    | §4.1 baseline | minimum computations |
//! | `RAND`    | [`random`] | §4.1 baseline | seeded |
//! | `EXACT`   | [`exact`]  | — | optimal (tiny instances; test oracle) |
//! | `LAZY`    | [`lazy`]   | — | CELF-style ablation; same solution as ALG |
//! | `REFINED` | [`refine`] | — | local-search post-processing (extension) |
//! | `STREAM`  | [`stream`] | — | incremental repair under delta-op streams; same solution as a full recompute |
//!
//! All schedulers implement the [`Scheduler`] trait, share one deterministic
//! tie-break order (see [`common::Cand`]), and report a [`ScheduleResult`]
//! carrying the schedule, its independently evaluated utility Ω(S), the
//! paper's instrumentation counters, and wall time.
//!
//! ```
//! use ses_algorithms::prelude::*;
//! use ses_core::model::running_example;
//!
//! let inst = running_example();
//! let result = HorI.run(&inst, 3);
//! assert_eq!(result.schedule.len(), 3);
//! assert!((result.utility - 1.4073).abs() < 5e-4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alg;
pub mod common;
pub mod exact;
pub mod extensions;
pub mod hor;
pub mod hor_i;
pub mod inc;
pub mod lazy;
pub mod random;
pub mod refine;
pub mod service;
pub mod stream;
pub mod top;

pub use common::{RunConfig, ScheduleResult, Scheduler, Scratch};
pub use service::{
    DurableService, NetConfig, Request, Response, SchedulerRegistry, SesService, SessionBackend,
    SessionManager,
};

use serde::{Deserialize, Serialize};
use ses_core::model::Instance;
use ses_core::parallel::Threads;

/// Enumerates the available schedulers — the currency of the experiment
/// harness and CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Baseline greedy of [4] (§3.1).
    Alg,
    /// Incremental Updating (§3.2).
    Inc,
    /// Horizontal Assignment (§3.3).
    Hor,
    /// Horizontal + Incremental (§3.4).
    HorI,
    /// Top-k-by-initial-score baseline.
    Top,
    /// Random baseline with a seed.
    Rand(u64),
    /// Exact branch & bound (tiny instances only).
    Exact,
    /// CELF-style lazy greedy (ablation; same solution as ALG).
    Lazy,
    /// HOR followed by local-search refinement (extension).
    RefinedHor,
}

impl SchedulerKind {
    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Alg => "ALG",
            Self::Inc => "INC",
            Self::Hor => "HOR",
            Self::HorI => "HOR-I",
            Self::Top => "TOP",
            Self::Rand(_) => "RAND",
            Self::Exact => "EXACT",
            Self::Lazy => "LAZY",
            Self::RefinedHor => "HOR+LS",
        }
    }

    /// Parses a (case-insensitive) scheduler name; `RAND` gets seed 0.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "ALG" => Some(Self::Alg),
            "INC" => Some(Self::Inc),
            "HOR" => Some(Self::Hor),
            "HOR-I" | "HORI" | "HOR_I" => Some(Self::HorI),
            "TOP" => Some(Self::Top),
            "RAND" | "RANDOM" => Some(Self::Rand(0)),
            "EXACT" => Some(Self::Exact),
            "LAZY" => Some(Self::Lazy),
            "HOR+LS" | "HORLS" | "REFINED" => Some(Self::RefinedHor),
            _ => None,
        }
    }

    /// Runs the scheduler on `inst` with the given `k` and the ambient
    /// thread resolution (`SES_THREADS` or sequential).
    pub fn run(self, inst: &Instance, k: usize) -> ScheduleResult {
        self.run_threaded(inst, k, Threads::default())
    }

    /// Runs the scheduler with an explicit worker-thread count. Every kind
    /// is bit-identical across counts (see `tests/parallel_equivalence.rs`).
    pub fn run_threaded(self, inst: &Instance, k: usize, threads: Threads) -> ScheduleResult {
        self.run_configured(inst, k, RunConfig::threaded(threads), &mut Scratch::new())
    }

    /// Runs the scheduler with full [`RunConfig`] control and a caller-owned
    /// [`Scratch`] (allocation-free across repeated runs; see
    /// [`Scheduler::run_configured`]).
    pub fn run_configured(
        self,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        scratch: &mut Scratch,
    ) -> ScheduleResult {
        match self {
            Self::Alg => alg::Alg.run_configured(inst, k, cfg, scratch),
            Self::Inc => inc::Inc.run_configured(inst, k, cfg, scratch),
            Self::Hor => hor::Hor.run_configured(inst, k, cfg, scratch),
            Self::HorI => hor_i::HorI.run_configured(inst, k, cfg, scratch),
            Self::Top => top::Top.run_configured(inst, k, cfg, scratch),
            Self::Rand(seed) => random::Rand::with_seed(seed).run_configured(inst, k, cfg, scratch),
            Self::Exact => exact::Exact.run_configured(inst, k, cfg, scratch),
            Self::Lazy => lazy::LazyGreedy.run_configured(inst, k, cfg, scratch),
            Self::RefinedHor => {
                let mut res = refine::Refined::new(hor::Hor).run_configured(inst, k, cfg, scratch);
                res.algorithm = self.name();
                res
            }
        }
    }

    /// The six methods of the paper's evaluation (§4.1), in plot order.
    pub fn paper_lineup() -> [SchedulerKind; 6] {
        [Self::Alg, Self::Inc, Self::Hor, Self::HorI, Self::Top, Self::Rand(0)]
    }
}

/// Convenient glob-import: the scheduler types and trait.
pub mod prelude {
    pub use crate::alg::Alg;
    pub use crate::common::{ScheduleResult, Scheduler};
    pub use crate::exact::Exact;
    pub use crate::extensions::ProfitGreedy;
    pub use crate::hor::Hor;
    pub use crate::hor_i::HorI;
    pub use crate::inc::Inc;
    pub use crate::lazy::LazyGreedy;
    pub use crate::random::Rand;
    pub use crate::refine::{LocalSearch, Refined};
    pub use crate::service::{Request, Response, SchedulerRegistry, SesService};
    pub use crate::stream::StreamScheduler;
    pub use crate::top::Top;
    pub use crate::SchedulerKind;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::model::running_example;

    #[test]
    fn parse_names() {
        assert_eq!(SchedulerKind::parse("alg"), Some(SchedulerKind::Alg));
        assert_eq!(SchedulerKind::parse("lazy"), Some(SchedulerKind::Lazy));
        assert_eq!(SchedulerKind::parse("hor+ls"), Some(SchedulerKind::RefinedHor));
        assert_eq!(SchedulerKind::parse("HOR-I"), Some(SchedulerKind::HorI));
        assert_eq!(SchedulerKind::parse("hori"), Some(SchedulerKind::HorI));
        assert_eq!(SchedulerKind::parse("random"), Some(SchedulerKind::Rand(0)));
        assert_eq!(SchedulerKind::parse("bogus"), None);
    }

    #[test]
    fn every_kind_runs() {
        // The registry is the canonical every-kind table — no local copy.
        let inst = running_example();
        for kind in service::SchedulerRegistry::standard().kinds() {
            let res = kind.run(&inst, 2);
            assert_eq!(res.algorithm, kind.name());
            assert!(res.schedule.verify_feasible(&inst).is_ok(), "{}", kind.name());
        }
    }
}
