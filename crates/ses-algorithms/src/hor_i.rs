//! `HOR-I` — Horizontal Assignment with Incremental Updating (§3.4,
//! Algorithm 3).
//!
//! HOR-I keeps HOR's round structure (one selection per interval per round)
//! but replaces HOR's full start-of-round rescoring with a per-interval
//! incremental pass: entries are walked in descending stored-score order
//! under a per-interval bound `Φ` (the best refreshed score so far); an
//! entry is refreshed only while its stored score — an upper bound, by score
//! monotonicity — can still reach `Φ`. Entries skipped keep their stale
//! stored score and are flagged *partially updated*.
//!
//! During a round's selection phase, if an interval's top entry loses its
//! event to another interval, the fallback must be the interval's best
//! *updated* entry; when a stale entry's bound still beats every updated
//! one, the interval is incrementally re-walked first (Algorithm 3 lines
//! 27–30) so HOR-I provably picks the same fallback HOR would
//! (Proposition 6).
//!
//! HOR-I is identical to HOR whenever one round suffices (`k ≤ |T|`).

use crate::common::{
    better, max_duration, stale_window, timed_result, Cand, Entry, RunConfig, ScheduleResult,
    Scheduler, Scratch,
};
use ses_core::model::Instance;
use ses_core::schedule::Schedule;
use ses_core::scoring::{EngineProfile, ScoringEngine};
use ses_core::stats::Stats;
use ses_core::{EventId, IntervalId};

/// The Horizontal Assignment with Incremental Updating algorithm
/// (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct HorI;

impl Scheduler for HorI {
    fn name(&self) -> &'static str {
        "HOR-I"
    }

    fn run_configured(
        &self,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        scratch: &mut Scratch,
    ) -> ScheduleResult {
        timed_result(self.name(), inst, k, || run_hor_i(inst, k, cfg, scratch))
    }
}

fn sort_entries(entries: &mut [Entry]) {
    entries.sort_unstable_by(|a, b| {
        b.score.partial_cmp(&a.score).expect("finite scores").then(a.event.cmp(&b.event))
    });
}

/// The incremental per-interval pass (Algorithm 3 lines 9–20): drop invalid
/// entries, refresh those whose stored bound can still reach the running
/// per-interval bound `Φ`, flag the rest partially updated. When
/// `trust_updated_flags` is true (in-round re-walks), entries already flagged
/// updated are known current — their interval has received no assignment
/// since they were refreshed — and are folded into `Φ` without recomputation.
///
/// Bound-seeded entries (the opt-in bound-first gate) need no special
/// handling here: they are ordinary stale entries whose stored value is a
/// sound upper bound, so the walk refreshes exactly the ones that can still
/// reach `Φ` — any entry tying or beating the interval's true best has
/// `bound ≥ true ≥ Φ` and is therefore swept before it matters.
fn walk_interval(
    inst: &Instance,
    engine: &mut ScoringEngine<'_>,
    schedule: &Schedule,
    entries: &mut Vec<Entry>,
    interval: IntervalId,
    trust_updated_flags: bool,
) {
    let mut phi = 0.0f64;
    let mut idx = 0;
    while idx < entries.len() {
        engine.stats_mut().record_examined(1);
        let ent = entries[idx];
        if !schedule.is_valid_assignment(inst, ent.event, interval) {
            entries.remove(idx);
            continue;
        }
        if trust_updated_flags && ent.updated {
            phi = phi.max(ent.score);
        } else if ent.score >= phi {
            let fresh = engine.assignment_score_update(ent.event, interval);
            entries[idx].score = fresh;
            entries[idx].updated = true;
            phi = phi.max(fresh);
        } else {
            entries[idx].updated = false;
        }
        idx += 1;
    }
    sort_entries(entries);
}

/// The interval's best selectable fallback: its top updated, unscheduled
/// entry — re-walking the interval whenever a stale bound could still beat
/// it (the Proposition-6 guard).
fn fallback(
    inst: &Instance,
    engine: &mut ScoringEngine<'_>,
    schedule: &Schedule,
    entries: &mut Vec<Entry>,
    interval: IntervalId,
) -> Option<Cand> {
    loop {
        let mut best_updated: Option<Cand> = None;
        let mut best_stale: Option<Cand> = None;
        for ent in entries.iter() {
            engine.stats_mut().record_examined(1);
            if !schedule.is_valid_assignment(inst, ent.event, interval) {
                continue;
            }
            let cand = Cand::new(ent.score, interval, ent.event);
            if ent.updated {
                if best_updated.is_none() {
                    best_updated = Some(cand); // sorted: first updated is best
                }
            } else if best_stale.is_none() {
                best_stale = Some(cand);
            }
            if best_updated.is_some() && best_stale.is_some() {
                break;
            }
        }
        match (best_updated, best_stale) {
            (None, None) => return None,
            (Some(u), None) => return Some(u),
            (u, Some(st)) => {
                if u.is_none_or(|u| st.beats(&u)) {
                    // A stale upper bound could still win: refresh the
                    // interval and retry (each re-walk refreshes at least the
                    // triggering stale entry, so this terminates).
                    walk_interval(inst, engine, schedule, entries, interval, true);
                } else {
                    return u;
                }
            }
        }
    }
}

fn run_hor_i(
    inst: &Instance,
    k: usize,
    cfg: RunConfig,
    scratch: &mut Scratch,
) -> (Schedule, Stats, Option<EngineProfile>) {
    let gate = cfg.bound_gate;
    let num_events = inst.num_events();
    let num_intervals = inst.num_intervals();
    let mut engine = ScoringEngine::with_threads(inst, cfg.threads);
    if cfg.profile {
        engine.enable_profiling();
    }
    let mut schedule = Schedule::new(inst);
    let max_dur = max_duration(inst);
    let Scratch { lists, m, .. } = scratch;
    crate::common::reset_interval_lists(lists, m, num_intervals);
    let mut first_round = true;

    while schedule.len() < k {
        if first_round {
            // Generate all valid assignments (Algorithm 3 lines 3–7) — with
            // initial scores, or (bound-first gate) with O(duration) bound
            // seeds that the round-1 walk below lazily refreshes where they
            // can still reach the interval's Φ.
            #[allow(clippy::needless_range_loop)] // t indexes lists *and* names the interval
            for t in 0..num_intervals {
                let interval = IntervalId::new(t);
                for e in 0..num_events {
                    let event = EventId::new(e);
                    if !schedule.is_valid_assignment(inst, event, interval) {
                        continue;
                    }
                    if gate {
                        let bound = engine.score_bound(event, interval);
                        engine.stats_mut().record_bound_skip();
                        lists[t].entries.push(Entry { event, score: bound, updated: false });
                    } else {
                        let score = engine.assignment_score(event, interval);
                        lists[t].entries.push(Entry { event, score, updated: true });
                    }
                }
                sort_entries(&mut lists[t].entries);
                if gate {
                    walk_interval(
                        inst,
                        &mut engine,
                        &schedule,
                        &mut lists[t].entries,
                        interval,
                        false,
                    );
                }
            }
            first_round = false;
        } else {
            // Incremental start-of-round pass (lines 8–20).
            #[allow(clippy::needless_range_loop)] // t indexes lists *and* names the interval
            for t in 0..num_intervals {
                walk_interval(
                    inst,
                    &mut engine,
                    &schedule,
                    &mut lists[t].entries,
                    IntervalId::new(t),
                    false,
                );
            }
        }

        // M: per interval, the top updated entry. Without the gate the
        // sorted front is always updated after a walk (stale bounds end
        // strictly below Φ); with it, gate-skipped stale entries may sit
        // above, so the first *updated* entry — the same candidate either
        // way — is what M records.
        for t in 0..num_intervals {
            m[t] = lists[t]
                .entries
                .iter()
                .find(|e| e.updated)
                .map(|e| Cand::new(e.score, IntervalId::new(t), e.event));
        }

        // Selection phase (lines 21–30).
        let selected_before = schedule.len();
        loop {
            if schedule.len() >= k {
                break;
            }
            let mut top: Option<Cand> = None;
            for cand in m.iter().flatten() {
                engine.stats_mut().record_examined(1);
                top = better(top, Some(*cand));
            }
            let Some(top) = top else { break };
            let tp = top.interval.index();
            // Re-validated in full: under the duration extension a span
            // collision can arise mid-round (for duration-1 only event reuse
            // can invalidate a walked entry).
            if schedule.is_valid_assignment(inst, top.event, top.interval) {
                schedule.assign(inst, top.event, top.interval).expect("just validated");
                engine.apply(top.event, top.interval);
                // Every starting interval in the stale window may hold
                // span-affected entries: mark survivors stale and retire the
                // window for this round (a no-op beyond tp under duration-1).
                for ti in stale_window(inst, max_dur, top.event, top.interval) {
                    lists[ti].entries.retain(|e| e.event != top.event);
                    for e in &mut lists[ti].entries {
                        e.updated = false;
                    }
                    m[ti] = None;
                }
            } else {
                m[tp] =
                    fallback(inst, &mut engine, &schedule, &mut lists[tp].entries, top.interval);
            }
        }

        if schedule.len() == selected_before {
            break;
        }
    }

    let stats = *engine.stats();
    let profile = engine.take_profile();
    (schedule, stats, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hor::Hor;
    use ses_core::model::running_example;
    use ses_core::Assignment;

    /// Example 5: versus HOR's three round-2 updates, HOR-I performs two —
    /// refreshing e2@t2 (0.16) bounds out e3@t2 (stale 0.09), while e3@t1
    /// must still be refreshed.
    #[test]
    fn running_example_trace_and_updates() {
        let inst = running_example();
        let res = HorI.run(&inst, 3);
        assert_eq!(
            res.schedule.assignments(),
            &[
                Assignment::new(EventId::new(3), IntervalId::new(1)),
                Assignment::new(EventId::new(0), IntervalId::new(0)),
                Assignment::new(EventId::new(1), IntervalId::new(1)),
            ]
        );
        assert_eq!(res.stats.score_updates, 2, "Example 5: HOR-I performs two of HOR's three");
        assert_eq!(res.stats.score_computations, 10); // 8 initial + 2
    }

    /// Proposition 6 on the running example (exact schedule equality).
    #[test]
    fn matches_hor_on_running_example() {
        let inst = running_example();
        for k in 0..=4 {
            let h = Hor.run(&inst, k);
            let hi = HorI.run(&inst, k);
            assert_eq!(h.schedule.assignments(), hi.schedule.assignments(), "k = {k}");
            assert!((h.utility - hi.utility).abs() < 1e-12);
        }
    }

    /// §3.4: HOR-I is *identical* to HOR when k ≤ |T| (single round).
    #[test]
    fn identical_to_hor_single_round() {
        let inst = running_example();
        let h = Hor.run(&inst, 2);
        let hi = HorI.run(&inst, 2);
        assert_eq!(h.schedule.assignments(), hi.schedule.assignments());
        assert_eq!(h.stats.score_computations, hi.stats.score_computations);
        assert_eq!(hi.stats.score_updates, 0);
    }

    #[test]
    fn never_more_updates_than_hor() {
        let inst = running_example();
        for k in 0..=4 {
            let h = Hor.run(&inst, k);
            let hi = HorI.run(&inst, k);
            assert!(
                hi.stats.score_computations <= h.stats.score_computations,
                "k = {k}: HOR-I {} vs HOR {}",
                hi.stats.score_computations,
                h.stats.score_computations
            );
        }
    }

    #[test]
    fn saturation_is_feasible() {
        let inst = running_example();
        let res = HorI.run(&inst, 99);
        assert_eq!(res.schedule.len(), 4);
        assert!(res.schedule.verify_feasible(&inst).is_ok());
    }
}
