//! `TOP` — the minimum-computation baseline (§4.1).
//!
//! TOP computes assignment scores exactly once (the initial `|E| · |T|`
//! pass) and greedily takes the `k` best-scoring valid assignments *without
//! ever updating a score*. It lower-bounds the computation cost of any
//! scoring-based method, but ignores that co-scheduled events share an
//! interval's audience — which is why the paper observes it piling events
//! into few intervals and reporting "considerably low utility scores".

use crate::common::{timed_result, Cand, RunConfig, ScheduleResult, Scheduler, Scratch};
use ses_core::model::Instance;
use ses_core::schedule::Schedule;
use ses_core::scoring::{EngineProfile, ScoringEngine};
use ses_core::stats::Stats;

/// The TOP baseline (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Top;

impl Scheduler for Top {
    fn name(&self) -> &'static str {
        "TOP"
    }

    fn run_configured(
        &self,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        _scratch: &mut Scratch,
    ) -> ScheduleResult {
        timed_result(self.name(), inst, k, || run_top(inst, k, cfg))
    }
}

fn run_top(inst: &Instance, k: usize, cfg: RunConfig) -> (Schedule, Stats, Option<EngineProfile>) {
    let mut engine = ScoringEngine::with_threads(inst, cfg.threads);
    if cfg.profile {
        engine.enable_profiling();
    }
    let mut schedule = Schedule::new(inst);

    let mut cands: Vec<Cand> = Vec::with_capacity(inst.num_events() * inst.num_intervals());
    for (event, interval) in inst.assignment_universe() {
        if !schedule.is_valid_assignment(inst, event, interval) {
            continue; // duration-extension guard: off-calendar spans
        }
        let score = engine.assignment_score(event, interval);
        cands.push(Cand::new(score, interval, event));
    }
    // Descending by the canonical order.
    cands.sort_unstable_by(|a, b| {
        if a.beats(b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });

    for cand in cands {
        if schedule.len() >= k {
            break;
        }
        engine.stats_mut().record_examined(1);
        if schedule.is_valid_assignment(inst, cand.event, cand.interval) {
            schedule.assign(inst, cand.event, cand.interval).expect("checked valid");
            engine.apply(cand.event, cand.interval);
        }
    }

    let stats = *engine.stats();
    let profile = engine.take_profile();
    (schedule, stats, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::Alg;
    use ses_core::model::running_example;
    use ses_core::{Assignment, EventId, IntervalId};

    #[test]
    fn performs_only_initial_computations() {
        let inst = running_example();
        let res = Top.run(&inst, 3);
        assert_eq!(res.stats.score_computations, 8);
        assert_eq!(res.stats.score_updates, 0);
    }

    /// TOP takes e4@t2 (0.66), e4@t1 dead, e1@t1 (0.59)… but then e2@t2
    /// (0.57) by its *initial* score, ignoring that e4 already shares t2.
    #[test]
    fn running_example_schedule() {
        let inst = running_example();
        let res = Top.run(&inst, 3);
        assert_eq!(
            res.schedule.assignments(),
            &[
                Assignment::new(EventId::new(3), IntervalId::new(1)),
                Assignment::new(EventId::new(0), IntervalId::new(0)),
                Assignment::new(EventId::new(1), IntervalId::new(1)),
            ]
        );
    }

    #[test]
    fn never_beats_greedy_by_construction_here() {
        let inst = running_example();
        for k in 1..=4 {
            let alg = Alg.run(&inst, k);
            let top = Top.run(&inst, k);
            assert!(top.utility <= alg.utility + 1e-12, "k = {k}");
            assert!(top.schedule.verify_feasible(&inst).is_ok());
        }
    }

    #[test]
    fn fills_k_when_feasible() {
        let inst = running_example();
        assert_eq!(Top.run(&inst, 4).schedule.len(), 4);
        assert_eq!(Top.run(&inst, 2).schedule.len(), 2);
    }
}
