//! The **profit-oriented SES** variant — one of the "trivial modifications"
//! §2.1 sketches: each event carries an organization cost, each attendee is
//! worth a fixed revenue, and the objective becomes expected profit
//! `Σ_e (ω_e · revenue − cost_e)` instead of raw attendance.
//!
//! The greedy machinery carries over unchanged because the profit of an
//! assignment is an affine transform of its attendance score; the only
//! structural difference is that a profit-greedy may *stop early* when every
//! remaining assignment has negative marginal profit (scheduling it would
//! lose money), whereas attendance-greedy always fills `k`.

use crate::common::{timed_result, Cand, RunConfig, ScheduleResult, Scheduler, Scratch};
use ses_core::model::Instance;
use ses_core::schedule::Schedule;
use ses_core::scoring::ScoringEngine;
use ses_core::{EventId, IntervalId};

/// Greedy maximizer of expected profit (ALG-style selection over
/// profit-adjusted scores).
#[derive(Debug, Clone, Copy)]
pub struct ProfitGreedy {
    /// Revenue per expected attendee.
    pub revenue_per_attendee: f64,
    /// If true, stop as soon as the best marginal profit is negative even if
    /// fewer than `k` events are scheduled.
    pub stop_when_unprofitable: bool,
}

impl Default for ProfitGreedy {
    fn default() -> Self {
        Self { revenue_per_attendee: 1.0, stop_when_unprofitable: true }
    }
}

impl ProfitGreedy {
    /// Marginal profit of assigning `e` at `t` given the attendance gain.
    #[inline]
    fn profit(&self, inst: &Instance, e: EventId, attendance_gain: f64) -> f64 {
        attendance_gain * self.revenue_per_attendee - inst.events[e.index()].cost
    }
}

impl Scheduler for ProfitGreedy {
    fn name(&self) -> &'static str {
        "PROFIT"
    }

    fn run_configured(
        &self,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        _scratch: &mut Scratch,
    ) -> ScheduleResult {
        timed_result(self.name(), inst, k, || {
            let num_events = inst.num_events();
            let num_intervals = inst.num_intervals();
            let mut engine = ScoringEngine::with_threads(inst, cfg.threads);
            if cfg.profile {
                engine.enable_profiling();
            }
            let mut schedule = Schedule::new(inst);

            let mut scores: Vec<Option<f64>> = Vec::with_capacity(num_events * num_intervals);
            for t in 0..num_intervals {
                for e in 0..num_events {
                    let (event, interval) = (EventId::new(e), IntervalId::new(t));
                    scores.push(if schedule.is_valid_assignment(inst, event, interval) {
                        let gain = engine.assignment_score(event, interval);
                        Some(self.profit(inst, event, gain))
                    } else {
                        None
                    });
                }
            }

            while schedule.len() < k {
                let mut best: Option<Cand> = None;
                for t in 0..num_intervals {
                    let interval = IntervalId::new(t);
                    for e in 0..num_events {
                        let idx = t * num_events + e;
                        let Some(score) = scores[idx] else { continue };
                        engine.stats_mut().record_examined(1);
                        let event = EventId::new(e);
                        if !schedule.is_valid_assignment(inst, event, interval) {
                            scores[idx] = None;
                            continue;
                        }
                        let cand = Cand::new(score, interval, event);
                        if best.is_none_or(|b| cand.beats(&b)) {
                            best = Some(cand);
                        }
                    }
                }
                let Some(chosen) = best else { break };
                if self.stop_when_unprofitable && chosen.score < 0.0 {
                    break;
                }
                schedule
                    .assign(inst, chosen.event, chosen.interval)
                    .expect("scanned assignment must be valid");
                engine.apply(chosen.event, chosen.interval);
                for t in 0..num_intervals {
                    scores[t * num_events + chosen.event.index()] = None;
                }
                let tp = chosen.interval.index();
                for e in 0..num_events {
                    let idx = tp * num_events + e;
                    if scores[idx].is_none() {
                        continue;
                    }
                    let event = EventId::new(e);
                    if schedule.is_valid_assignment(inst, event, chosen.interval) {
                        let gain = engine.assignment_score_update(event, chosen.interval);
                        scores[idx] = Some(self.profit(inst, event, gain));
                    } else {
                        scores[idx] = None;
                    }
                }
            }

            let stats = *engine.stats();
            let profile = engine.take_profile();
            (schedule, stats, profile)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::Alg;
    use ses_core::model::running_example;
    use ses_core::scoring::utility::total_profit;

    #[test]
    fn zero_costs_reduce_to_alg() {
        let inst = running_example(); // all costs default to 0
        let pg = ProfitGreedy { revenue_per_attendee: 1.0, stop_when_unprofitable: true };
        let p = pg.run(&inst, 3);
        let a = Alg.run(&inst, 3);
        assert_eq!(p.schedule.assignments(), a.schedule.assignments());
    }

    #[test]
    fn stops_when_everything_loses_money() {
        let mut inst = running_example();
        for e in &mut inst.events {
            e.cost = 100.0; // no event can recoup this
        }
        let res = ProfitGreedy::default().run(&inst, 3);
        assert!(res.schedule.is_empty());
    }

    #[test]
    fn skips_only_the_unprofitable_tail() {
        let mut inst = running_example();
        // Make e3 (max attendance gain ≈ 0.10) unprofitable, others cheap.
        inst.events[2].cost = 1.0;
        let res = ProfitGreedy::default().run(&inst, 4);
        assert!(!res.schedule.is_scheduled(EventId::new(2)));
        assert_eq!(res.schedule.len(), 3);
        let profit = total_profit(&inst, &res.schedule, 1.0);
        assert!(profit > 0.0);
    }

    #[test]
    fn fills_k_when_forced() {
        let mut inst = running_example();
        for e in &mut inst.events {
            e.cost = 100.0;
        }
        let pg = ProfitGreedy { revenue_per_attendee: 1.0, stop_when_unprofitable: false };
        let res = pg.run(&inst, 3);
        assert_eq!(res.schedule.len(), 3, "forced mode still fills k");
        assert!(total_profit(&inst, &res.schedule, 1.0) < 0.0);
    }

    #[test]
    fn revenue_scaling_changes_cutoff() {
        let mut inst = running_example();
        for e in &mut inst.events {
            e.cost = 0.3;
        }
        // At revenue 1.0 only high-gain events clear cost 0.3.
        let low =
            ProfitGreedy { revenue_per_attendee: 1.0, stop_when_unprofitable: true }.run(&inst, 4);
        // At revenue 100 everything clears.
        let high = ProfitGreedy { revenue_per_attendee: 100.0, stop_when_unprofitable: true }
            .run(&inst, 4);
        assert!(low.schedule.len() < high.schedule.len());
        assert_eq!(high.schedule.len(), 4);
    }
}
