//! Extensions §2.1 names as "trivial modifications" of SES, implemented:
//!
//! * **profit-oriented SES** — [`profit::ProfitGreedy`] maximizes expected
//!   profit (attendance × revenue − event cost) instead of raw attendance;
//! * **user weights** (influence) — handled natively by the model: set
//!   [`Instance::user_weights`](ses_core::Instance) and every algorithm in
//!   this crate optimizes the weighted objective;
//! * **event durations** — handled natively by the model: set
//!   [`Event::duration`](ses_core::model::Event) and feasibility/scoring
//!   treat the event as occupying consecutive intervals.

pub mod profit;

pub use profit::ProfitGreedy;
