//! `SesService` — the long-lived session API over a live instance.
//!
//! Every earlier entry point (CLI subcommands, experiment harness, benches,
//! tests) re-plumbed `Instance` + scheduler + [`RunConfig`] + [`Scratch`]
//! by hand, and nothing could keep warm state — the stream repairer's
//! caches, the engine tables, the scratch pools — alive across requests.
//! [`SesService`] owns all of that behind one typed request surface:
//!
//! * a live [`Instance`] (mutated in place by [`Request::ApplyOps`]);
//! * a [`SchedulerRegistry`] (one boxed scheduler per canonical name,
//!   replacing the ad-hoc match tables that used to be duplicated across
//!   crates);
//! * one persistent [`Scratch`] pool **per registered scheduler**, so
//!   repeated `Schedule` requests re-run allocation-free;
//! * the stream repairer's warm caches ([`StreamScheduler`]): once a
//!   `Repair` request arms it, every subsequent `ApplyOps` repairs the
//!   schedule incrementally instead of recomputing.
//!
//! ## Bit-identity contract
//!
//! The service is plumbing, never policy: a `Schedule` request returns the
//! exact same schedule, utility **bits**, and [`Stats`] as a cold
//! [`Scheduler::run_configured`] call with the same [`RunConfig`], and a
//! `Repair`/`ApplyOps` sequence matches a hand-driven [`StreamScheduler`]
//! op for op (`tests/service_equivalence.rs` proves both differentially,
//! across thread counts, with warm state reused over hundreds of
//! requests). The bound-first gate and profiling stay opt-in flags on the
//! request, per the repo's invariants.
//!
//! ## Wire protocol
//!
//! [`wire`] defines the versioned JSON-lines codec (`{"v":1,...}`
//! envelopes) that `ses serve` speaks over stdin/stdout; wire responses
//! carry only deterministic fields (no wall-clock), so a seeded request
//! script always produces a byte-identical response log — the committed
//! golden transcript leans on this.
//!
//! [`Scheduler::run_configured`]: crate::common::Scheduler::run_configured

pub mod durable;
pub mod net;
mod registry;
pub mod wire;

pub use durable::{DurableService, Inspection, RecoveryReport};
pub use net::{NetConfig, SessionBackend, SessionManager};
pub use registry::SchedulerRegistry;

use crate::common::{RunConfig, ScheduleResult, Scratch};
use crate::stream::{RepairReport, StreamScheduler};
use serde::{Deserialize, Serialize};
use ses_core::delta::{self, DeltaOp};
use ses_core::error::ServiceError;
use ses_core::model::Instance;
use ses_core::parallel::Threads;
use ses_core::schedule::{Assignment, Schedule};
use ses_core::stats::Stats;
use ses_core::{EventId, IntervalId};

/// One request against a [`SesService`] — the typed currency of the wire
/// protocol and of [`SesService::handle`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Run one registered scheduler on the current instance.
    Schedule {
        /// Scheduler name (case-insensitive, aliases accepted: `hor-i`,
        /// `hori`, `random`, …).
        algorithm: String,
        /// Number of assignments to select.
        k: usize,
        /// Worker threads (`0` = machine width); omitted = the service's
        /// default. Bit-identical results for every count.
        #[serde(default)]
        threads: Option<usize>,
        /// Opt-in bound-first gate (selection-neutral; counters only).
        #[serde(default)]
        gate: bool,
        /// Opt-in per-phase engine profiling.
        #[serde(default)]
        profile: bool,
        /// Optional scenario-constraint block, installed on the live
        /// instance (warm repairer included) before the run and kept for
        /// subsequent requests. `None` leaves the current constraints
        /// untouched — pre-constraint (v1) request lines parse unchanged.
        #[serde(default)]
        constraints: Option<ses_core::constraints::ConstraintSet>,
    },
    /// Apply a batch of delta ops to the live instance, in order, each op
    /// atomically. While the repairer is armed (after a `Repair`), every
    /// op also incrementally repairs the maintained schedule.
    ApplyOps {
        /// The ops, applied front to back.
        ops: Vec<DeltaOp>,
        /// Windowed ingestion: chunk the ops into windows of this size,
        /// coalesce each window to its canonical minimal batch
        /// ([`ses_core::delta::coalesce`]), and pay **one** repair per
        /// window flush instead of one per op. Omitted (`None`) keeps the
        /// op-at-a-time v1 behavior — and v1 request lines parse
        /// unchanged. Note the failure contract shifts with it: a
        /// rejected op voids its whole window (window-atomic) instead of
        /// only its own suffix.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        window: Option<usize>,
    },
    /// Arm (or re-use) the incremental repairer at `(k, threads, gate)`
    /// and report the maintained schedule. A matching warm repairer is
    /// reused as-is; a mismatch pays one cold rebuild.
    Repair {
        /// Schedule size the repairer maintains.
        k: usize,
        /// Worker threads (`0` = machine width); omitted = service default.
        #[serde(default)]
        threads: Option<usize>,
        /// Opt-in bound-first gate for the repair's lazy refreshes.
        #[serde(default)]
        gate: bool,
    },
    /// Inspect one entity of the live instance / current schedule.
    Query {
        /// What to look up.
        query: Query,
    },
    /// Report the service's full state summary.
    Snapshot,
    /// Drop all warm state (repairer caches, scratch pools, last
    /// schedule). The live instance — including every applied op — is
    /// kept.
    Reset,
    /// Fold the write-ahead log into a fresh on-disk snapshot generation
    /// and retire old generations (compaction). Only served by a durable
    /// session (`ses serve --state-dir`); plain sessions answer a typed
    /// error. Appended after v1 — pre-durability transcripts parse and
    /// answer byte-identically.
    Persist,
    /// Drop the in-memory state and reload it from disk (newest valid
    /// snapshot + log replay) — the recovery path, on demand. Durable
    /// sessions only, like `Persist`.
    Restore,
    /// Create a new named session on a multi-session server (`ses serve
    /// --listen`). The session starts from a fresh copy of the server's
    /// boot instance; with `--state-dir` it is durable under
    /// `<state-dir>/<name>`. Single-session (stdio) serve answers a typed
    /// error. Appended after v1 — committed transcripts parse and answer
    /// byte-identically.
    OpenSession {
        /// The new session's name (`[A-Za-z0-9_-]`, at most 64 chars).
        session: String,
    },
    /// Retire a named session: it stops resolving for new requests, its
    /// state is dropped (a durable session's on-disk state stays and
    /// reopens on the next `OpenSession`/boot). Multi-session servers
    /// only, like `OpenSession`.
    CloseSession {
        /// The session to close.
        session: String,
    },
    /// Enumerate the live sessions, sorted by name. Multi-session servers
    /// only, like `OpenSession`.
    ListSessions,
}

/// Entity lookups served by [`Request::Query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Query {
    /// One candidate event.
    Event {
        /// Dense event index.
        event: usize,
    },
    /// One time interval.
    Interval {
        /// Dense interval index.
        interval: usize,
    },
    /// One user.
    User {
        /// Dense user index.
        user: usize,
    },
}

/// One response line — every variant is fully deterministic (no
/// wall-clock), so response logs are byte-comparable across runs and
/// thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Result of a `Schedule` request.
    Scheduled {
        /// Canonical algorithm name.
        algorithm: String,
        /// The requested `k`.
        k: usize,
        /// Utility Ω(S) of the returned schedule.
        utility: f64,
        /// The schedule, assignment by assignment, in selection order.
        assignments: Vec<Assignment>,
        /// The run's instrumentation counters.
        stats: Stats,
    },
    /// Result of an `ApplyOps` request.
    Applied {
        /// Number of ops applied.
        applied: usize,
        /// One repair summary per op while the repairer is armed (empty
        /// before the first `Repair`). In windowed mode every op of a
        /// window shares its flush repair's summary, so the
        /// one-entry-per-op shape is preserved.
        repairs: Vec<RepairSummary>,
        /// Per-window coalescing detail — populated only by windowed
        /// requests, so v1 (op-at-a-time) response lines keep their exact
        /// bytes.
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        windows: Vec<WindowSummary>,
    },
    /// Result of a `Repair` request.
    Repaired {
        /// The maintained schedule size `k`.
        k: usize,
        /// Whether a warm repairer was reused (`false` = this request paid
        /// a cold rebuild).
        warm: bool,
        /// Score-table cells rescored eagerly by the reported repair.
        rescored: usize,
        /// Utility Ω(S) of the maintained schedule.
        utility: f64,
        /// The maintained schedule.
        assignments: Vec<Assignment>,
        /// The reported repair's counters.
        stats: Stats,
    },
    /// Result of a `Query` request.
    Info {
        /// The looked-up entity.
        reply: QueryReply,
    },
    /// Result of a `Snapshot` request.
    State {
        /// The state summary.
        snapshot: Snapshot,
    },
    /// Acknowledges a `Reset`.
    ResetDone,
    /// Result of a `Persist`: a new snapshot generation is durable.
    Persisted {
        /// The snapshot generation just written.
        generation: u64,
        /// Write-ahead-log records folded into it.
        folded: u64,
    },
    /// Result of a `Restore`: state reloaded from disk.
    Restored {
        /// The snapshot generation the state was loaded from.
        generation: u64,
        /// Log records replayed on top of it.
        replayed: u64,
    },
    /// Result of an `OpenSession`: the named session is live.
    SessionOpened {
        /// The session's name.
        session: String,
        /// Whether the session persists its state under the server's
        /// state directory.
        durable: bool,
        /// Whether existing on-disk state was recovered into the session
        /// (`false` for a brand-new session).
        recovered: bool,
    },
    /// Result of a `CloseSession`: the name no longer resolves.
    SessionClosed {
        /// The closed session's name.
        session: String,
    },
    /// Result of a `ListSessions`: every live session, sorted by name.
    Sessions {
        /// One summary per live session.
        sessions: Vec<SessionInfo>,
    },
    /// Any failure, as a stable machine-readable code plus rendered
    /// message (see [`ServiceError::code`]).
    Error {
        /// Stable error code.
        code: String,
        /// Human-readable description.
        message: String,
    },
}

/// Per-op repair measurements with the wall-clock stripped (the
/// deterministic subset of [`RepairReport`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairSummary {
    /// Score-table cells rescored eagerly.
    pub rescored: usize,
    /// Size of the repaired schedule.
    pub schedule_len: usize,
    /// Utility Ω(S) after the repair.
    pub utility: f64,
    /// The repair's counters.
    pub stats: Stats,
}

/// One row of a [`Response::Sessions`] listing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionInfo {
    /// The session's name.
    pub session: String,
    /// Whether its incremental repairer is armed.
    pub warm: bool,
    /// Delta ops applied over the session's lifetime.
    pub ops_applied: u64,
    /// Whether the session persists to the server's state directory.
    pub durable: bool,
}

/// What one window flush did: how many ops arrived and how few survived
/// coalescing (the redundancy the window absorbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSummary {
    /// Ops the window received.
    pub ops: usize,
    /// Ops left after coalescing — what the repairer actually consumed.
    pub coalesced: usize,
}

impl From<&RepairReport> for RepairSummary {
    fn from(r: &RepairReport) -> Self {
        Self {
            rescored: r.rescored,
            schedule_len: r.schedule_len,
            utility: r.utility,
            stats: r.stats,
        }
    }
}

/// Answer to a [`Query`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryReply {
    /// A candidate event.
    Event {
        /// Dense event index.
        event: usize,
        /// Optional display label.
        label: Option<String>,
        /// Location index.
        location: usize,
        /// Resources ξ the event requires.
        required_resources: f64,
        /// Duration in intervals.
        duration: u32,
        /// Mean user interest µ over the current user base.
        mean_interest: f64,
        /// Interval the current schedule places it at, if any.
        scheduled_at: Option<usize>,
    },
    /// A time interval.
    Interval {
        /// Dense interval index.
        interval: usize,
        /// Events the current schedule places here, in id order.
        scheduled: Vec<usize>,
        /// Resources consumed by those events.
        used_resources: f64,
        /// The organizer's per-interval budget θ.
        resources: f64,
        /// Number of competing events pinned to this interval.
        competing: usize,
    },
    /// A user.
    User {
        /// Dense user index.
        user: usize,
        /// The user's weight (1.0 on unweighted instances).
        weight: f64,
        /// Mean activity σ over the intervals.
        mean_activity: f64,
        /// The candidate event the user is most interested in (ties →
        /// smaller event id); `None` only when every interest is 0.
        favorite_event: Option<usize>,
    },
}

/// Full state summary returned by [`Request::Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Current number of users `|U|`.
    pub users: usize,
    /// Current number of candidate events `|E|`.
    pub events: usize,
    /// Number of intervals `|T|`.
    pub intervals: usize,
    /// Number of competing events `|C|`.
    pub competing: usize,
    /// Number of distinct event locations.
    pub locations: usize,
    /// The organizer's per-interval resource budget θ.
    pub resources: f64,
    /// Whether the instance carries per-user weights.
    pub weighted: bool,
    /// Whether the incremental repairer is armed (warm).
    pub warm: bool,
    /// Delta ops applied over the service's lifetime.
    pub ops_applied: u64,
    /// Total scenario-constraint rules on the live instance (capacities +
    /// conflict pairs + precedence edges). Omitted from the wire encoding
    /// when zero, so unconstrained transcripts keep their v1 bytes.
    #[serde(default, skip_serializing_if = "snapshot_no_constraints")]
    pub constraints: usize,
    /// Interest storage layout (`"sparse"`, `"compressed"`), reported only
    /// when it differs from the dense default so dense transcripts keep
    /// their v1 bytes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub storage: Option<String>,
    /// Approximate resident bytes of the live instance's matrices and lists
    /// (deterministic element counts × sizes). Reported alongside `storage`
    /// for the same compatibility reason.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub heap_bytes: Option<u64>,
    /// The current schedule, if any request has produced one.
    pub schedule: Option<ScheduleState>,
}

/// `skip_serializing_if` predicate for [`Snapshot::constraints`].
fn snapshot_no_constraints(n: &usize) -> bool {
    *n == 0
}

/// The schedule slice of a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleState {
    /// Which algorithm produced it (`STREAM` for the maintained repair
    /// schedule).
    pub algorithm: String,
    /// The `k` it was produced for.
    pub k: usize,
    /// Utility Ω(S).
    pub utility: f64,
    /// The assignments, in selection order.
    pub assignments: Vec<Assignment>,
}

/// Typed result of [`SesService::repair`].
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// Measurements of the repair this request reports: the last op's
    /// repair when a warm repairer was reused, otherwise the cold build.
    pub report: RepairReport,
    /// Whether a warm repairer was reused.
    pub warm: bool,
}

/// The current schedule the service answers `Query`/`Snapshot` from.
#[derive(Debug, Clone)]
struct LastSchedule {
    algorithm: String,
    k: usize,
    schedule: Schedule,
    utility: f64,
}

/// An immutable copy of everything a read-only request can observe: the
/// instance, the current schedule, and the lifetime counters.
///
/// The network layer publishes one of these per session after every
/// mutating request (behind an `Arc` swap), so concurrent `Query`/
/// `Snapshot` requests are answered without touching — or waiting on —
/// the live session. Both the live [`SesService`] and a `ReadView` route
/// through the same `query_on`/`snapshot_on` functions, so a view's
/// answer is byte-identical to the serialized answer the session itself
/// would have produced at the moment the view was taken.
#[derive(Debug, Clone)]
pub struct ReadView {
    inst: Instance,
    last: Option<LastSchedule>,
    warm: bool,
    ops_applied: u64,
}

impl ReadView {
    /// Answers [`Request::Query`] exactly as the source session would
    /// have at capture time.
    ///
    /// # Errors
    /// [`ServiceError::OutOfRange`] for a dangling index.
    pub fn query(&self, q: &Query) -> Result<QueryReply, ServiceError> {
        query_on(&self.inst, self.last.as_ref(), q)
    }

    /// Answers [`Request::Snapshot`] exactly as the source session would
    /// have at capture time.
    pub fn snapshot(&self) -> Snapshot {
        snapshot_on(&self.inst, self.last.as_ref(), self.warm, self.ops_applied)
    }

    /// Whether the source session had an armed repairer at capture time.
    pub fn warm(&self) -> bool {
        self.warm
    }

    /// Delta ops the source session had applied at capture time.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Answers one read-only request ([`Request::Query`] or
    /// [`Request::Snapshot`]); any other request kind is a logic error in
    /// the caller and answered as [`ServiceError::Failed`] — the network
    /// router never sends one here.
    pub fn answer(&self, req: &Request) -> Response {
        match req {
            Request::Query { query } => match self.query(query) {
                Ok(reply) => Response::Info { reply },
                Err(e) => Response::Error { code: e.code().to_string(), message: e.to_string() },
            },
            Request::Snapshot => Response::State { snapshot: self.snapshot() },
            _ => {
                let e = ServiceError::failed("read view can only answer Query/Snapshot");
                Response::Error { code: e.code().to_string(), message: e.to_string() }
            }
        }
    }
}

/// Whether a request can be answered from a published [`ReadView`]
/// (shared-read path) as opposed to requiring the session's writer lock.
/// The single classification the network router and the proof tests key
/// on: exactly `Query` and `Snapshot`, the two requests the durable layer
/// also exempts from write-ahead logging.
pub fn is_read_only(req: &Request) -> bool {
    matches!(req, Request::Query { .. } | Request::Snapshot)
}

/// Answers a [`Query`] against an explicit instance + schedule pair — the
/// single implementation behind both [`SesService::query`] (live state)
/// and [`ReadView::query`] (published state), which is what makes the two
/// paths byte-identical by construction.
fn query_on(
    inst: &Instance,
    last: Option<&LastSchedule>,
    q: &Query,
) -> Result<QueryReply, ServiceError> {
    match *q {
        Query::Event { event } => {
            if event >= inst.num_events() {
                return Err(ServiceError::OutOfRange {
                    what: "event",
                    index: event,
                    len: inst.num_events(),
                });
            }
            let e = &inst.events[event];
            let users = inst.num_users();
            let mean_interest =
                (0..users).map(|u| inst.event_interest.value(event, u)).sum::<f64>() / users as f64;
            let scheduled_at =
                last.and_then(|l| l.schedule.interval_of(EventId::new(event))).map(|t| t.index());
            Ok(QueryReply::Event {
                event,
                label: e.label.clone(),
                location: e.location.index(),
                required_resources: e.required_resources,
                duration: e.duration,
                mean_interest,
                scheduled_at,
            })
        }
        Query::Interval { interval } => {
            if interval >= inst.num_intervals() {
                return Err(ServiceError::OutOfRange {
                    what: "interval",
                    index: interval,
                    len: inst.num_intervals(),
                });
            }
            let t = IntervalId::new(interval);
            let (scheduled, used_resources) = match last {
                Some(l) => {
                    let mut events: Vec<usize> =
                        l.schedule.events_at(t).iter().map(|e| e.index()).collect();
                    events.sort_unstable();
                    (events, l.schedule.used_resources(t))
                }
                None => (Vec::new(), 0.0),
            };
            Ok(QueryReply::Interval {
                interval,
                scheduled,
                used_resources,
                resources: inst.resources,
                competing: inst.competing_at(t).count(),
            })
        }
        Query::User { user } => {
            if user >= inst.num_users() {
                return Err(ServiceError::OutOfRange {
                    what: "user",
                    index: user,
                    len: inst.num_users(),
                });
            }
            let intervals = inst.num_intervals();
            let mean_activity = (0..intervals).map(|t| inst.activity.value(user, t)).sum::<f64>()
                / intervals as f64;
            let mut favorite_event = None;
            let mut best = 0.0;
            for e in 0..inst.num_events() {
                let mu = inst.event_interest.value(e, user);
                if mu > best {
                    best = mu;
                    favorite_event = Some(e);
                }
            }
            Ok(QueryReply::User {
                user,
                weight: inst.user_weight(user),
                mean_activity,
                favorite_event,
            })
        }
    }
}

/// Builds a [`Snapshot`] from an explicit instance + schedule pair — the
/// shared implementation behind [`SesService::snapshot`] and
/// [`ReadView::snapshot`] (see [`query_on`]).
fn snapshot_on(
    inst: &Instance,
    last: Option<&LastSchedule>,
    warm: bool,
    ops_applied: u64,
) -> Snapshot {
    Snapshot {
        users: inst.num_users(),
        events: inst.num_events(),
        intervals: inst.num_intervals(),
        competing: inst.num_competing(),
        locations: inst.num_locations(),
        resources: inst.resources,
        weighted: inst.is_weighted(),
        warm,
        ops_applied,
        constraints: inst.constraints.len(),
        storage: match inst.event_interest.storage_kind() {
            ses_core::model::StorageKind::Dense => None,
            kind => Some(kind.name().to_string()),
        },
        heap_bytes: match inst.event_interest.storage_kind() {
            ses_core::model::StorageKind::Dense => None,
            _ => Some(inst.heap_bytes() as u64),
        },
        schedule: last.map(|l| ScheduleState {
            algorithm: l.algorithm.clone(),
            k: l.k,
            utility: l.utility,
            assignments: l.schedule.assignments().to_vec(),
        }),
    }
}

/// Versioned serialized form of a whole [`SesService`] session — the
/// payload of a durable snapshot. Exactly one of `inst` / `stream` is
/// populated, mirroring the live authority model (the armed repairer owns
/// the instance while warm). Produced by [`SesService::to_state`],
/// consumed by [`SesService::from_state`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionState {
    /// Layout version; readers reject anything they do not speak.
    pub version: u32,
    /// The live instance, while the session is cold.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub inst: Option<Instance>,
    /// The armed repairer's full warm state, while the session is warm.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stream: Option<crate::stream::StreamState>,
    /// The schedule the session answers queries from, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub last: Option<ScheduleState>,
    /// Delta ops applied over the session's lifetime.
    pub ops_applied: u64,
    /// Requests handled over the session's lifetime.
    pub requests_handled: u64,
}

/// The session-state layout version [`SesService::to_state`] writes.
pub const SESSION_STATE_VERSION: u32 = 1;

/// The long-lived session service (see the module docs).
#[derive(Debug)]
pub struct SesService {
    registry: SchedulerRegistry,
    /// One warm scratch per registry entry (same indexing).
    scratches: Vec<Scratch>,
    /// Warm scratch for non-registry kinds run via
    /// [`schedule_kind`](Self::schedule_kind).
    misc_scratch: Scratch,
    /// The live instance while cold. `None` exactly when `stream` is
    /// `Some` (the armed repairer owns the authoritative instance).
    inst: Option<Instance>,
    /// The armed incremental repairer, if any.
    stream: Option<StreamScheduler>,
    last: Option<LastSchedule>,
    default_threads: Threads,
    ops_applied: u64,
    requests_handled: u64,
}

/// The authoritative instance among the two owners (free function so
/// callers holding disjoint field borrows can use it).
fn authority<'a>(stream: &'a Option<StreamScheduler>, inst: &'a Option<Instance>) -> &'a Instance {
    match (stream, inst) {
        (Some(s), _) => s.instance(),
        (None, Some(i)) => i,
        (None, None) => unreachable!("service always owns an instance"),
    }
}

impl SesService {
    /// A service over `inst` with the standard registry and the ambient
    /// thread default (`SES_THREADS` or sequential).
    pub fn new(inst: Instance) -> Self {
        Self::with_registry(inst, SchedulerRegistry::standard())
    }

    /// A service with an explicit registry.
    pub fn with_registry(inst: Instance, registry: SchedulerRegistry) -> Self {
        let mut scratches = Vec::new();
        scratches.resize_with(registry.len(), Scratch::new);
        Self {
            registry,
            scratches,
            misc_scratch: Scratch::new(),
            inst: Some(inst),
            stream: None,
            last: None,
            default_threads: Threads::default(),
            ops_applied: 0,
            requests_handled: 0,
        }
    }

    /// Overrides the default worker-thread count used when a request
    /// leaves `threads` unset.
    #[must_use]
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.default_threads = threads;
        self
    }

    /// The registry this service schedules from.
    pub fn registry(&self) -> &SchedulerRegistry {
        &self.registry
    }

    /// The live instance in its current (post-ops) state.
    pub fn instance(&self) -> &Instance {
        authority(&self.stream, &self.inst)
    }

    /// The schedule the service currently answers queries from — the one
    /// produced by the **most recent** schedule-writing request
    /// (`Schedule`, `Repair`, or a warm `ApplyOps` repair), last writer
    /// wins. [`Snapshot`]'s `schedule.algorithm` says which kind it is
    /// (`STREAM` for the maintained repair schedule). `None` after
    /// construction, a [`reset`](Self::reset), or a cold `ApplyOps`
    /// (which invalidates a schedule its instance mutated under).
    pub fn current_schedule(&self) -> Option<&Schedule> {
        self.last.as_ref().map(|l| &l.schedule)
    }

    /// Ω(S) of [`current_schedule`](Self::current_schedule).
    pub fn current_utility(&self) -> Option<f64> {
        self.last.as_ref().map(|l| l.utility)
    }

    /// Whether the incremental repairer is armed.
    pub fn is_warm(&self) -> bool {
        self.stream.is_some()
    }

    /// Delta ops applied over the service's lifetime.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Requests handled via [`handle`](Self::handle) (typed-API calls are
    /// not counted).
    pub fn requests_handled(&self) -> u64 {
        self.requests_handled
    }

    /// Resolves a request-level thread override against the service
    /// default.
    fn resolve_threads(&self, threads: Option<usize>) -> Threads {
        match threads {
            Some(n) => Threads::new(n),
            None => self.default_threads,
        }
    }

    /// Runs one registered scheduler on the current instance with this
    /// entry's warm scratch. Bit-identical — schedule, utility bits, full
    /// [`Stats`] — to a cold `run_configured` with the same config.
    ///
    /// # Errors
    /// [`ServiceError::UnknownAlgorithm`] if `algorithm` does not resolve.
    pub fn schedule(
        &mut self,
        algorithm: &str,
        k: usize,
        cfg: RunConfig,
    ) -> Result<ScheduleResult, ServiceError> {
        let idx = self.registry.resolve(algorithm)?;
        let inst = authority(&self.stream, &self.inst);
        let res = self.registry.run(idx, inst, k, cfg, &mut self.scratches[idx]);
        self.last = Some(LastSchedule {
            algorithm: res.algorithm.to_string(),
            k,
            schedule: res.schedule.clone(),
            utility: res.utility,
        });
        Ok(res)
    }

    /// [`schedule`](Self::schedule) for an explicit [`SchedulerKind`] —
    /// registered kinds use their warm pool; unregistered ones (e.g. a
    /// custom `Rand` seed) share the service's miscellaneous scratch.
    ///
    /// [`SchedulerKind`]: crate::SchedulerKind
    pub fn schedule_kind(
        &mut self,
        kind: crate::SchedulerKind,
        k: usize,
        cfg: RunConfig,
    ) -> ScheduleResult {
        let inst = authority(&self.stream, &self.inst);
        let res = match self.registry.resolve_kind(kind) {
            Some(idx) => self.registry.run(idx, inst, k, cfg, &mut self.scratches[idx]),
            None => kind.run_configured(inst, k, cfg, &mut self.misc_scratch),
        };
        self.last = Some(LastSchedule {
            algorithm: res.algorithm.to_string(),
            k,
            schedule: res.schedule.clone(),
            utility: res.utility,
        });
        res
    }

    /// Replaces the live instance's scenario constraints wholesale,
    /// validating the set first. Cold: the set is installed directly on the
    /// owned instance (dropping a now-possibly-infeasible last schedule).
    /// Warm: routed through [`StreamScheduler::set_constraints`], which
    /// repairs the maintained schedule under the new rules.
    ///
    /// # Errors
    /// [`ServiceError::Build`] when the set does not validate against the
    /// current events; nothing changes on error.
    pub fn set_constraints(
        &mut self,
        constraints: ses_core::constraints::ConstraintSet,
    ) -> Result<(), ServiceError> {
        match &mut self.stream {
            Some(stream) => {
                stream.set_constraints(constraints)?;
                self.sync_last_from_stream();
            }
            None => {
                let inst = self.inst.as_mut().expect("cold service owns an instance");
                constraints.validate(inst.num_events())?;
                inst.constraints = constraints;
                // The rules changed under the last schedule; drop it rather
                // than answer queries from a possibly-infeasible one.
                self.last = None;
            }
        }
        Ok(())
    }

    /// Applies a batch of delta ops, in order, each op atomically. While
    /// the repairer is armed every op also repairs the maintained schedule
    /// incrementally, and the per-op [`RepairReport`]s are returned (empty
    /// while cold).
    ///
    /// # Errors
    /// [`ServiceError::Delta`] naming the first rejected op; ops before it
    /// remain applied (each op is atomic, the batch is not).
    pub fn apply_ops(&mut self, ops: &[DeltaOp]) -> Result<Vec<RepairReport>, ServiceError> {
        let mut reports = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if let Some(stream) = &mut self.stream {
                match stream.apply(op) {
                    Ok(report) => reports.push(report.clone()),
                    Err(e) => return Err(ServiceError::delta(i, e)),
                }
                self.ops_applied += 1;
                self.sync_last_from_stream();
            } else {
                let inst = self.inst.as_mut().expect("cold service owns an instance");
                match delta::apply(inst, op) {
                    // The instance changed under the last schedule; drop it
                    // rather than report a stale (possibly infeasible) one.
                    Ok(_) => {
                        self.ops_applied += 1;
                        self.last = None;
                    }
                    Err(e) => return Err(ServiceError::delta(i, e)),
                }
            }
        }
        Ok(reports)
    }

    /// Applies a batch of delta ops through windowed ingestion: the ops
    /// are chunked into windows of `window`, each window is coalesced to
    /// its canonical minimal batch, and the repairer (when armed) pays
    /// **one** repair per window flush. The net instance — and, warm, the
    /// maintained schedule and its utility bits — is identical to
    /// [`apply_ops`](Self::apply_ops) on the same ops; only the work (and
    /// therefore the per-window `Stats`) differs.
    ///
    /// Returns one [`RepairReport`] per *original* op (ops of a window
    /// share their flush repair's report; empty while cold) plus one
    /// [`WindowSummary`] per window. [`Snapshot::ops_applied`] keeps
    /// counting original ops.
    ///
    /// # Errors
    /// [`ServiceError::InvalidArgument`] for `window == 0`;
    /// [`ServiceError::Delta`] naming the first rejected op. Complete
    /// windows before it remain applied, the rejected op's window is
    /// rolled up entirely (window-atomic), and nothing after it runs.
    pub fn apply_ops_windowed(
        &mut self,
        ops: &[DeltaOp],
        window: usize,
    ) -> Result<(Vec<RepairReport>, Vec<WindowSummary>), ServiceError> {
        if window == 0 {
            return Err(ServiceError::invalid("window size must be at least 1"));
        }
        let mut reports = Vec::new();
        let mut windows = Vec::with_capacity(ops.len().div_ceil(window));
        for (w, chunk) in ops.chunks(window).enumerate() {
            let start = w * window;
            if let Some(stream) = &mut self.stream {
                let batch = delta::coalesce::coalesce(stream.instance(), chunk)
                    .map_err(|e| ServiceError::delta(start + e.op_index, e.source))?;
                let coalesced = batch.len();
                // The coalesced batch re-validates clean by construction;
                // a rejection here is an internal invariant breach and is
                // reported against the window's first op.
                let report = stream
                    .apply_batch(&batch)
                    .map_err(|e| ServiceError::delta(start, e.source))?
                    .clone();
                self.ops_applied += chunk.len() as u64;
                self.sync_last_from_stream();
                reports.extend(std::iter::repeat_n(report, chunk.len()));
                windows.push(WindowSummary { ops: chunk.len(), coalesced });
            } else {
                let inst = self.inst.as_mut().expect("cold service owns an instance");
                let batch = delta::coalesce::coalesce(inst, chunk)
                    .map_err(|e| ServiceError::delta(start + e.op_index, e.source))?;
                for op in &batch {
                    delta::apply(inst, op).map_err(|e| ServiceError::delta(start, e))?;
                }
                self.ops_applied += chunk.len() as u64;
                self.last = None;
                windows.push(WindowSummary { ops: chunk.len(), coalesced: batch.len() });
            }
        }
        Ok((reports, windows))
    }

    /// Arms (or reuses) the incremental repairer at `(k, threads, gate)`
    /// and reports the maintained schedule. A warm repairer with matching
    /// parameters is reused as-is (idempotent, no work); any mismatch —
    /// or a cold service — pays one cold rebuild from the current
    /// instance. `cfg.profile` is ignored (the repairer is not
    /// instrumented for phase timing).
    ///
    /// # Errors
    /// Currently infallible; the `Result` reserves room for
    /// resource-limit rejections.
    pub fn repair(&mut self, k: usize, cfg: RunConfig) -> Result<RepairOutcome, ServiceError> {
        let warm = match &self.stream {
            Some(s) => s.k() == k && s.threads() == cfg.threads && s.bound_gate() == cfg.bound_gate,
            None => false,
        };
        if !warm {
            let inst = self.instance().clone();
            self.stream =
                Some(StreamScheduler::new(inst, k, cfg.threads).with_bound_gate(cfg.bound_gate));
            self.inst = None;
        }
        self.sync_last_from_stream();
        let report = self.stream.as_ref().expect("just armed").last_repair().clone();
        Ok(RepairOutcome { report, warm })
    }

    /// Refreshes `last` from the armed repairer's maintained schedule.
    fn sync_last_from_stream(&mut self) {
        let stream = self.stream.as_ref().expect("sync requires an armed repairer");
        self.last = Some(LastSchedule {
            algorithm: "STREAM".to_string(),
            k: stream.k(),
            schedule: stream.schedule().clone(),
            utility: stream.utility(),
        });
    }

    /// Looks up one entity of the live instance / current schedule.
    ///
    /// # Errors
    /// [`ServiceError::OutOfRange`] for a dangling index.
    pub fn query(&self, q: &Query) -> Result<QueryReply, ServiceError> {
        query_on(self.instance(), self.last.as_ref(), q)
    }

    /// The full state summary.
    pub fn snapshot(&self) -> Snapshot {
        snapshot_on(self.instance(), self.last.as_ref(), self.stream.is_some(), self.ops_applied)
    }

    /// Captures an immutable [`ReadView`] of everything a read-only
    /// request can observe. The network layer publishes one per session
    /// after each mutating request; its answers are byte-identical to
    /// [`query`](Self::query)/[`snapshot`](Self::snapshot) at capture
    /// time (all three route through the same functions).
    pub fn read_view(&self) -> ReadView {
        ReadView {
            inst: self.instance().clone(),
            last: self.last.clone(),
            warm: self.stream.is_some(),
            ops_applied: self.ops_applied,
        }
    }

    /// Serializes the full session state for a durable snapshot (see
    /// [`SessionState`]): the authoritative instance (cold) or the
    /// repairer's warm state (warm), the current schedule, and the
    /// lifetime counters. Scratch pools are excluded (pure capacity).
    /// For a seeded session the state is deterministic byte for byte.
    pub fn to_state(&self) -> SessionState {
        SessionState {
            version: SESSION_STATE_VERSION,
            inst: self.inst.clone(),
            stream: self.stream.as_ref().map(|s| s.to_state()),
            last: self.last.as_ref().map(|l| ScheduleState {
                algorithm: l.algorithm.clone(),
                k: l.k,
                utility: l.utility,
                assignments: l.schedule.assignments().to_vec(),
            }),
            ops_applied: self.ops_applied,
            requests_handled: self.requests_handled,
        }
    }

    /// Rebuilds a session from a persisted state, re-validating everything
    /// checkable: layout version, the authority invariant (exactly one
    /// owner), the instance's invariants, the repairer's caches (see
    /// [`StreamScheduler::from_state`]), and the recorded schedule — which
    /// is replayed through the feasibility gate and must reproduce the
    /// stored utility bits. A state that passes answers subsequent
    /// requests **byte-identically** to the session that produced it.
    ///
    /// # Errors
    /// [`ServiceError::Corrupt`] naming the first failing check.
    pub fn from_state(state: SessionState, default_threads: Threads) -> Result<Self, ServiceError> {
        let corrupt = |what: &str| ServiceError::corrupt(format!("session state: {what}"));
        if state.version != SESSION_STATE_VERSION {
            return Err(corrupt(&format!(
                "layout version {} (this build speaks {SESSION_STATE_VERSION})",
                state.version
            )));
        }
        let (inst, stream) = match (state.inst, state.stream) {
            (Some(inst), None) => {
                inst.validate().map_err(|e| corrupt(&format!("instance fails validation: {e}")))?;
                (Some(inst), None)
            }
            (None, Some(s)) => (None, Some(StreamScheduler::from_state(s)?)),
            (Some(_), Some(_)) => return Err(corrupt("two instance owners (cold and warm)")),
            (None, None) => return Err(corrupt("no instance owner")),
        };
        let last = match state.last {
            None => None,
            Some(s) => {
                let live = authority(&stream, &inst);
                let mut schedule = Schedule::new(live);
                for a in &s.assignments {
                    schedule
                        .assign(live, a.event, a.interval)
                        .map_err(|e| corrupt(&format!("schedule replay: {e}")))?;
                }
                let utility = ses_core::scoring::utility::total_utility(live, &schedule);
                if utility.to_bits() != s.utility.to_bits() {
                    return Err(corrupt("stored utility does not match the schedule"));
                }
                Some(LastSchedule { algorithm: s.algorithm, k: s.k, schedule, utility: s.utility })
            }
        };
        let registry = SchedulerRegistry::standard();
        let mut scratches = Vec::new();
        scratches.resize_with(registry.len(), Scratch::new);
        Ok(Self {
            registry,
            scratches,
            misc_scratch: Scratch::new(),
            inst,
            stream,
            last,
            default_threads,
            ops_applied: state.ops_applied,
            requests_handled: state.requests_handled,
        })
    }

    /// Drops all warm state — the armed repairer, the scratch pools, the
    /// last schedule — keeping the live instance (every applied op
    /// included) and the lifetime counters.
    pub fn reset(&mut self) {
        if let Some(stream) = self.stream.take() {
            self.inst = Some(stream.instance().clone());
        }
        self.last = None;
        for s in &mut self.scratches {
            *s = Scratch::new();
        }
        self.misc_scratch = Scratch::new();
    }

    /// Answers one typed request. Failures come back as
    /// [`Response::Error`] (the service never panics on bad input), so the
    /// serve loop can keep going.
    pub fn handle(&mut self, req: &Request) -> Response {
        self.requests_handled += 1;
        match self.dispatch(req) {
            Ok(resp) => resp,
            Err(e) => Response::Error { code: e.code().to_string(), message: e.to_string() },
        }
    }

    fn dispatch(&mut self, req: &Request) -> Result<Response, ServiceError> {
        match req {
            Request::Schedule { algorithm, k, threads, gate, profile, constraints } => {
                if let Some(cs) = constraints {
                    self.set_constraints(cs.clone())?;
                }
                let cfg = RunConfig::threaded(self.resolve_threads(*threads))
                    .with_bound_gate(*gate)
                    .with_profile(*profile);
                let res = self.schedule(algorithm, *k, cfg)?;
                Ok(Response::Scheduled {
                    algorithm: res.algorithm.to_string(),
                    k: res.k,
                    utility: res.utility,
                    assignments: res.schedule.assignments().to_vec(),
                    stats: res.stats,
                })
            }
            Request::ApplyOps { ops, window } => {
                let (reports, windows) = match window {
                    Some(w) => self.apply_ops_windowed(ops, *w)?,
                    None => (self.apply_ops(ops)?, Vec::new()),
                };
                Ok(Response::Applied {
                    applied: ops.len(),
                    repairs: reports.iter().map(RepairSummary::from).collect(),
                    windows,
                })
            }
            Request::Repair { k, threads, gate } => {
                let cfg =
                    RunConfig::threaded(self.resolve_threads(*threads)).with_bound_gate(*gate);
                let out = self.repair(*k, cfg)?;
                let stream = self.stream.as_ref().expect("repair arms the repairer");
                Ok(Response::Repaired {
                    k: *k,
                    warm: out.warm,
                    rescored: out.report.rescored,
                    utility: out.report.utility,
                    assignments: stream.schedule().assignments().to_vec(),
                    stats: out.report.stats,
                })
            }
            Request::Query { query } => Ok(Response::Info { reply: self.query(query)? }),
            Request::Snapshot => Ok(Response::State { snapshot: self.snapshot() }),
            Request::Reset => {
                self.reset();
                Ok(Response::ResetDone)
            }
            // Durability is opt-in per session; a plain service has no
            // state directory to persist to. `ses serve --state-dir`
            // wraps the session in a `DurableService`, which intercepts
            // these before dispatch.
            Request::Persist | Request::Restore => {
                Err(ServiceError::invalid("session is not durable (start serve with --state-dir)"))
            }
            // Session control only makes sense where sessions are plural;
            // the network layer's `SessionManager` intercepts these
            // before they ever reach a single service.
            Request::OpenSession { .. } | Request::CloseSession { .. } | Request::ListSessions => {
                Err(ServiceError::invalid(
                    "session control requires a multi-session server (start serve with --listen)",
                ))
            }
        }
    }

    /// The serve-loop body: decode one request line, handle it, encode the
    /// response line. Malformed lines come back as encoded `Error`
    /// responses rather than failures.
    pub fn handle_line(&mut self, line: &str) -> String {
        let resp = match wire::decode_request(line) {
            Ok(req) => self.handle(&req),
            Err(e) => Response::Error { code: e.code().to_string(), message: e.to_string() },
        };
        wire::encode_response(&resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scheduler;
    use crate::inc::Inc;
    use crate::SchedulerKind;
    use ses_core::model::{running_example, Event};
    use ses_core::LocationId;

    fn service() -> SesService {
        SesService::new(running_example()).with_threads(Threads::sequential())
    }

    /// Equality on everything but the wall clock.
    fn assert_reports_match(a: &RepairReport, b: &RepairReport) {
        assert_eq!(RepairSummary::from(a), RepairSummary::from(b));
        assert_eq!(a.utility.to_bits(), b.utility.to_bits());
    }

    fn seq_cfg() -> RunConfig {
        RunConfig::threaded(Threads::sequential())
    }

    #[test]
    fn schedule_matches_direct_run_bitwise() {
        let mut svc = service();
        for _ in 0..3 {
            let via = svc.schedule("inc", 3, seq_cfg()).unwrap();
            let direct = Inc.run_configured(&running_example(), 3, seq_cfg(), &mut Scratch::new());
            assert_eq!(via.algorithm, "INC");
            assert_eq!(via.schedule.assignments(), direct.schedule.assignments());
            assert_eq!(via.utility.to_bits(), direct.utility.to_bits());
            assert_eq!(via.stats, direct.stats);
        }
    }

    #[test]
    fn unknown_algorithm_is_typed() {
        let mut svc = service();
        let err = svc.schedule("greedy9000", 2, seq_cfg()).unwrap_err();
        assert_eq!(err.code(), "unknown-algorithm");
    }

    #[test]
    fn apply_ops_cold_then_repair_matches_direct_stream() {
        let op = DeltaOp::ShiftInterest { event: EventId::new(0), user: 1, interest: 0.9 };
        // Service path: cold op, then arm the repairer.
        let mut svc = service();
        svc.apply_ops(std::slice::from_ref(&op)).unwrap();
        let out = svc.repair(3, seq_cfg()).unwrap();
        assert!(!out.warm);
        // Direct path: materialize, cold StreamScheduler.
        let mut inst = running_example();
        delta::apply(&mut inst, &op).unwrap();
        let direct = StreamScheduler::new(inst, 3, Threads::sequential());
        assert_reports_match(&out.report, direct.last_repair());
        assert_eq!(svc.current_schedule().unwrap(), direct.schedule());
    }

    #[test]
    fn warm_apply_ops_match_direct_stream_repairs() {
        let ops = vec![
            DeltaOp::ShiftInterest { event: EventId::new(2), user: 0, interest: 0.7 },
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(3), 1.0),
                interest: vec![0.5, 0.4],
            },
            DeltaOp::RemoveEvent { event: EventId::new(1) },
        ];
        let mut svc = service();
        svc.repair(3, seq_cfg()).unwrap();
        let mut direct = StreamScheduler::new(running_example(), 3, Threads::sequential());
        for op in &ops {
            let reports = svc.apply_ops(std::slice::from_ref(op)).unwrap();
            let direct_report = direct.apply(op).unwrap().clone();
            assert_eq!(reports.len(), 1);
            assert_eq!(reports[0].stats, direct_report.stats);
            assert_eq!(reports[0].utility.to_bits(), direct_report.utility.to_bits());
            assert_eq!(svc.current_schedule().unwrap(), direct.schedule());
        }
        // A matching repair request reuses the warm repairer verbatim.
        let out = svc.repair(3, seq_cfg()).unwrap();
        assert!(out.warm);
        assert_reports_match(&out.report, direct.last_repair());
        // A k change pays a cold rebuild.
        let out = svc.repair(2, seq_cfg()).unwrap();
        assert!(!out.warm);
        let rebuilt = StreamScheduler::new(direct.instance().clone(), 2, Threads::sequential());
        assert_reports_match(&out.report, rebuilt.last_repair());
    }

    #[test]
    fn batch_failure_reports_op_index_and_keeps_prefix() {
        let mut svc = service();
        let ops = vec![
            DeltaOp::ShiftInterest { event: EventId::new(0), user: 0, interest: 0.3 },
            DeltaOp::RemoveEvent { event: EventId::new(99) },
        ];
        let err = svc.apply_ops(&ops).unwrap_err();
        match err {
            ServiceError::Delta { op_index, .. } => assert_eq!(op_index, 1),
            other => panic!("wrong error {other:?}"),
        }
        // The valid prefix stayed applied.
        assert_eq!(svc.instance().event_interest.value(0, 0), 0.3);
        assert_eq!(svc.ops_applied(), 1);
    }

    /// Windowed ingestion must land on the op-at-a-time result: same
    /// instance, same maintained schedule, same utility bits — with one
    /// report per original op and the coalescing visible per window.
    #[test]
    fn windowed_apply_matches_op_at_a_time() {
        let ops = vec![
            DeltaOp::ShiftInterest { event: EventId::new(2), user: 0, interest: 0.7 },
            DeltaOp::ShiftInterest { event: EventId::new(2), user: 0, interest: 0.1 },
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(3), 1.0),
                interest: vec![0.5, 0.4],
            },
            DeltaOp::RemoveEvent { event: EventId::new(1) },
            DeltaOp::ShiftInterest { event: EventId::new(0), user: 1, interest: 0.2 },
        ];
        let mut windowed = service();
        let mut serial = service();
        windowed.repair(3, seq_cfg()).unwrap();
        serial.repair(3, seq_cfg()).unwrap();
        serial.apply_ops(&ops).unwrap();
        let (reports, windows) = windowed.apply_ops_windowed(&ops, 3).unwrap();
        assert_eq!(reports.len(), ops.len());
        assert_eq!(
            windows,
            // Window two's drift restores the running example's base
            // interest at (0, 1), so it coalesces away entirely.
            vec![WindowSummary { ops: 3, coalesced: 2 }, WindowSummary { ops: 2, coalesced: 1 }]
        );
        assert_eq!(windowed.instance(), serial.instance());
        assert_eq!(windowed.current_schedule(), serial.current_schedule());
        assert_eq!(windowed.ops_applied(), serial.ops_applied());
        // Ops of one window share their flush repair's report.
        assert_reports_match(&reports[0], &reports[2]);
    }

    /// Cold windowed ingestion coalesces too, and counts original ops.
    #[test]
    fn windowed_apply_cold_coalesces() {
        let ops = vec![
            DeltaOp::ShiftInterest { event: EventId::new(0), user: 0, interest: 0.4 },
            DeltaOp::ShiftInterest { event: EventId::new(0), user: 0, interest: 0.6 },
        ];
        let mut svc = service();
        let (reports, windows) = svc.apply_ops_windowed(&ops, 8).unwrap();
        assert!(reports.is_empty(), "cold path has no repairs to report");
        assert_eq!(windows, vec![WindowSummary { ops: 2, coalesced: 1 }]);
        assert_eq!(svc.instance().event_interest.value(0, 0), 0.6);
        assert_eq!(svc.ops_applied(), 2);
        assert_eq!(svc.apply_ops_windowed(&[], 0).unwrap_err().code(), "invalid-argument");
    }

    /// A rejected op voids its whole window but keeps prior windows.
    #[test]
    fn windowed_failure_is_window_atomic() {
        let mut svc = service();
        svc.repair(3, seq_cfg()).unwrap();
        let ops = vec![
            DeltaOp::ShiftInterest { event: EventId::new(0), user: 0, interest: 0.3 },
            DeltaOp::ShiftInterest { event: EventId::new(2), user: 1, interest: 0.8 },
            DeltaOp::RemoveEvent { event: EventId::new(99) },
        ];
        let err = svc.apply_ops_windowed(&ops, 2).unwrap_err();
        match err {
            ServiceError::Delta { op_index, .. } => assert_eq!(op_index, 2),
            other => panic!("wrong error {other:?}"),
        }
        // Window one (ops 0–1) flushed; window two applied nothing.
        assert_eq!(svc.instance().event_interest.value(0, 0), 0.3);
        assert_eq!(svc.instance().num_events(), 4);
        assert_eq!(svc.ops_applied(), 2);
    }

    /// v1 `ApplyOps` lines (no `window` member) must parse and answer
    /// with byte-stable `Applied` responses (no `windows` member).
    #[test]
    fn windowless_wire_lines_stay_v1_compatible() {
        let mut svc = service();
        let resp = svc.handle_line(
            r#"{"v":1,"req":{"ApplyOps":{"ops":[{"ShiftInterest":{"event":0,"user":0,"interest":0.5}}]}}}"#,
        );
        assert_eq!(resp, r#"{"v":1,"resp":{"Applied":{"applied":1,"repairs":[]}}}"#);
        let resp = svc.handle_line(
            r#"{"v":1,"req":{"ApplyOps":{"ops":[{"ShiftInterest":{"event":0,"user":0,"interest":0.25}},{"ShiftInterest":{"event":0,"user":0,"interest":0.75}}],"window":4}}}"#,
        );
        assert!(resp.contains(r#""windows":[{"ops":2,"coalesced":1}]"#), "{resp}");
    }

    #[test]
    fn query_and_snapshot_track_state() {
        let mut svc = service();
        let snap = svc.snapshot();
        assert_eq!((snap.users, snap.events, snap.intervals), (2, 4, 2));
        assert!(!snap.warm);
        assert!(snap.schedule.is_none());

        svc.schedule("hor", 2, seq_cfg()).unwrap();
        let snap = svc.snapshot();
        let sched = snap.schedule.expect("schedule recorded");
        assert_eq!(sched.algorithm, "HOR");
        assert_eq!(sched.assignments.len(), 2);

        // Event query reflects the schedule.
        let placed = sched.assignments[0];
        match svc.query(&Query::Event { event: placed.event.index() }).unwrap() {
            QueryReply::Event { scheduled_at, .. } => {
                assert_eq!(scheduled_at, Some(placed.interval.index()));
            }
            other => panic!("wrong reply {other:?}"),
        }
        match svc.query(&Query::Interval { interval: placed.interval.index() }).unwrap() {
            QueryReply::Interval { scheduled, used_resources, .. } => {
                assert!(scheduled.contains(&placed.event.index()));
                assert!(used_resources > 0.0);
            }
            other => panic!("wrong reply {other:?}"),
        }
        match svc.query(&Query::User { user: 0 }).unwrap() {
            QueryReply::User { weight, favorite_event, .. } => {
                assert_eq!(weight, 1.0);
                assert!(favorite_event.is_some());
            }
            other => panic!("wrong reply {other:?}"),
        }
        assert_eq!(svc.query(&Query::User { user: 99 }).unwrap_err().code(), "out-of-range");
    }

    /// Dense services omit `storage`/`heap_bytes` entirely (old transcripts
    /// stay byte-identical); non-dense services report both.
    #[test]
    fn snapshot_reports_storage_only_when_not_dense() {
        let mut svc = service();
        let snap = svc.snapshot();
        assert_eq!(snap.storage, None);
        assert_eq!(snap.heap_bytes, None);
        let line = svc.handle_line(r#"{"v":1,"req":"Snapshot"}"#);
        assert!(!line.contains("storage") && !line.contains("heap_bytes"), "{line}");

        for kind in [ses_core::model::StorageKind::Sparse, ses_core::model::StorageKind::Compressed]
        {
            let mut inst = running_example();
            inst.event_interest = inst.event_interest.convert_to(kind);
            let expected = inst.heap_bytes() as u64;
            let mut svc = SesService::new(inst).with_threads(Threads::sequential());
            let snap = svc.snapshot();
            assert_eq!(snap.storage.as_deref(), Some(kind.name()));
            assert_eq!(snap.heap_bytes, Some(expected));
            let line = svc.handle_line(r#"{"v":1,"req":"Snapshot"}"#);
            assert!(line.contains(&format!(r#""storage":"{}""#, kind.name())), "{line}");
        }
    }

    #[test]
    fn reset_keeps_instance_drops_warm_state() {
        let mut svc = service();
        svc.repair(2, seq_cfg()).unwrap();
        svc.apply_ops(&[DeltaOp::ShiftInterest { event: EventId::new(0), user: 0, interest: 0.9 }])
            .unwrap();
        assert!(svc.is_warm());
        svc.reset();
        assert!(!svc.is_warm());
        assert!(svc.current_schedule().is_none());
        // The applied op survived the reset.
        assert_eq!(svc.instance().event_interest.value(0, 0), 0.9);
        assert_eq!(svc.ops_applied(), 1);
        // The service still serves after a reset.
        assert!(svc.schedule("alg", 2, seq_cfg()).is_ok());
    }

    #[test]
    fn schedule_kind_pools_unregistered_kinds() {
        let mut svc = service();
        let res = svc.schedule_kind(SchedulerKind::Rand(7), 2, seq_cfg());
        assert_eq!(res.algorithm, "RAND");
        let direct = SchedulerKind::Rand(7).run_configured(
            &running_example(),
            2,
            seq_cfg(),
            &mut Scratch::new(),
        );
        assert_eq!(res.schedule.assignments(), direct.schedule.assignments());
        assert_eq!(res.utility.to_bits(), direct.utility.to_bits());
    }

    /// A `Schedule` request's constraints block installs on whichever side
    /// owns the instance — cold or warm — persists across requests, and an
    /// invalid set is rejected with the `build` code, state untouched.
    #[test]
    fn schedule_request_installs_constraints() {
        use ses_core::constraints::ConstraintSet;
        let mut cs = ConstraintSet::new();
        cs.add_conflict(EventId::new(0), EventId::new(1));
        cs.set_venue_capacity(LocationId::new(0), 1);

        // Cold path: the run respects the rules, and they persist.
        let mut svc = service();
        let resp = svc.handle(&Request::Schedule {
            algorithm: "inc".into(),
            k: 3,
            threads: None,
            gate: false,
            profile: false,
            constraints: Some(cs.clone()),
        });
        let Response::Scheduled { assignments, .. } = resp else {
            panic!("wrong response {resp:?}");
        };
        let placed: Vec<usize> = assignments.iter().map(|a| a.event.index()).collect();
        assert!(!(placed.contains(&0) && placed.contains(&1)), "conflict violated");
        assert_eq!(svc.instance().constraints, cs);
        assert_eq!(svc.snapshot().constraints, 2);
        // Direct run on an equivalently constrained instance: bit-identical.
        let direct = Inc.run_configured(
            &{
                let mut i = running_example();
                i.constraints = cs.clone();
                i
            },
            3,
            seq_cfg(),
            &mut Scratch::new(),
        );
        assert_eq!(svc.current_schedule().unwrap(), &direct.schedule);

        // Warm path routes through the repairer.
        svc.repair(3, seq_cfg()).unwrap();
        svc.handle(&Request::Schedule {
            algorithm: "alg".into(),
            k: 2,
            threads: None,
            gate: false,
            profile: false,
            constraints: Some(ConstraintSet::new()),
        });
        assert!(svc.is_warm());
        assert!(svc.instance().constraints.is_empty());
        assert_eq!(svc.snapshot().constraints, 0);

        // Invalid set: typed `build` error, constraints unchanged.
        let mut bad = ConstraintSet::new();
        bad.add_precedence(EventId::new(0), EventId::new(42));
        let resp = svc.handle(&Request::Schedule {
            algorithm: "inc".into(),
            k: 2,
            threads: None,
            gate: false,
            profile: false,
            constraints: Some(bad),
        });
        match resp {
            Response::Error { code, .. } => assert_eq!(code, "build"),
            other => panic!("wrong response {other:?}"),
        }
        assert!(svc.instance().constraints.is_empty());
    }

    #[test]
    fn handle_converts_failures_to_error_responses() {
        let mut svc = service();
        let resp = svc.handle(&Request::Schedule {
            algorithm: "nope".into(),
            k: 2,
            threads: None,
            gate: false,
            profile: false,
            constraints: None,
        });
        match resp {
            Response::Error { code, message } => {
                assert_eq!(code, "unknown-algorithm");
                assert!(message.contains("nope"));
            }
            other => panic!("wrong response {other:?}"),
        }
        assert_eq!(svc.requests_handled(), 1);
    }
}
