//! The durable session wrapper: `ses serve --state-dir` runs a
//! [`SesService`] behind this layer, which makes every acknowledged
//! state-mutating request crash-safe.
//!
//! ## Protocol
//!
//! State on disk is the generation-pair scheme of [`ses_core::durable`]:
//! `snapshot-G.ses` holds the folded [`SessionState`] at the moment
//! generation `G` began, `wal-G.log` appends the wire encoding of every
//! mutating request (`Schedule`, `ApplyOps`, `Repair`, `Reset`) handled
//! since — **before** the request is applied or answered, fsynced. A
//! record the log acknowledged therefore survives any crash, and replaying
//! the log through a fresh service reproduces the exact post-crash state:
//! requests are deterministic (no wall clock in any response), and even a
//! request that *failed* validation is logged, so replay reproduces the
//! same partial effects and the same error. Read-only requests (`Query`,
//! `Snapshot`) touch nothing an answer can observe and are not logged.
//!
//! ## Recovery
//!
//! [`DurableService::open`] walks snapshots newest-first until one passes
//! every integrity check (container checksums, layout version, instance
//! validation, cache re-derivation, schedule replay — see
//! [`SesService::from_state`]), then replays the logs of that generation
//! and every newer one in order. A torn final log record (crash
//! mid-append) is truncated and forgotten — its request was never
//! acknowledged. Anything else wrong — a bit flip, a log that fails its
//! checksums in place, a missing log between generations — is a loud
//! [`ServiceError::Corrupt`]; recovery never guesses. When recovery had
//! to fall back past an unreadable newest snapshot it immediately
//! compacts, so the repaired state becomes the durable baseline.
//!
//! ## Compaction
//!
//! [`Request::Persist`] (or the `snapshot_every` auto-trigger) folds the
//! live state into a fresh snapshot generation, starts an empty log, and
//! retires generations older than the previous one — the two newest pairs
//! stay on disk so a snapshot that later turns out unreadable can fall
//! back losslessly.

use super::{wire, Request, Response, SesService, SessionState, Snapshot};
use ses_core::durable::{
    generations, read_snapshot, read_wal, retire_generations, snapshot_path, wal_generations,
    wal_path, write_snapshot, WalWriter,
};
use ses_core::error::ServiceError;
use ses_core::model::Instance;
use ses_core::parallel::Threads;
use std::path::{Path, PathBuf};

/// What [`DurableService::open`] (or a [`Request::Restore`] reload) did to
/// bring the session up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `true` when the state directory was empty and the session started
    /// fresh from the provided instance (nothing to recover).
    pub fresh: bool,
    /// The snapshot generation the state was loaded from (the generation
    /// just created, when `fresh`).
    pub generation: u64,
    /// Log records replayed on top of the snapshot.
    pub replayed: u64,
    /// Byte offset of a torn final log record that was found (and, outside
    /// [`inspect`], truncated). `None` when the log ended cleanly.
    pub torn: Option<u64>,
    /// Newer snapshot generations that failed validation and were fallen
    /// back past. Zero on a clean recovery.
    pub fell_back: u64,
}

/// Read-only findings of [`inspect`] — what `ses recover` prints.
#[derive(Debug, Clone, PartialEq)]
pub struct Inspection {
    /// Snapshot generations present in the directory, ascending.
    pub generations: Vec<u64>,
    /// Write-ahead-log generations present, ascending.
    pub wal_generations: Vec<u64>,
    /// What a recovery from this directory would do.
    pub report: RecoveryReport,
    /// State summary of the recovered session.
    pub snapshot: Snapshot,
}

/// A [`SesService`] whose acknowledged mutations survive crashes. See the
/// module docs for the on-disk protocol.
#[derive(Debug)]
pub struct DurableService {
    svc: SesService,
    dir: PathBuf,
    /// Generation whose log new records append to.
    generation: u64,
    wal: WalWriter,
    /// Records in the current log (compaction trigger).
    wal_records: u64,
    /// Auto-compact when the log reaches this many records (0 = only on
    /// explicit `Persist`).
    snapshot_every: u64,
    default_threads: Threads,
}

/// The result of loading a state directory into a fresh service.
struct Loaded {
    svc: SesService,
    generation: u64,
    replayed: u64,
    torn: Option<u64>,
    fell_back: u64,
    /// Records in the newest replayed log (seed for the compaction
    /// trigger).
    newest_records: u64,
}

impl DurableService {
    /// Opens (creating if needed) the state directory and brings up the
    /// session: recovery when snapshots exist, otherwise a fresh session
    /// over `inst` with its generation-0 snapshot written immediately.
    ///
    /// # Errors
    /// [`ServiceError::Io`] on filesystem failures, [`ServiceError::Corrupt`]
    /// when state exists but no uncorrupted recovery path does.
    pub fn open(
        dir: &Path,
        inst: Instance,
        default_threads: Threads,
        snapshot_every: u64,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ServiceError::Io { detail: format!("{}: {e}", dir.display()) })?;
        if generations(dir)?.is_empty() {
            if !wal_generations(dir)?.is_empty() {
                return Err(ServiceError::corrupt(format!(
                    "state dir {}: write-ahead logs present but no snapshot",
                    dir.display()
                )));
            }
            let svc = SesService::new(inst).with_threads(default_threads);
            write_snapshot(dir, 0, &state_bytes(&svc)?)?;
            let wal = WalWriter::open(&wal_path(dir, 0), None)?;
            let this = Self {
                svc,
                dir: dir.to_path_buf(),
                generation: 0,
                wal,
                wal_records: 0,
                snapshot_every,
                default_threads,
            };
            let report = RecoveryReport {
                fresh: true,
                generation: 0,
                replayed: 0,
                torn: None,
                fell_back: 0,
            };
            return Ok((this, report));
        }
        let (svc, generation, wal, wal_records, report) = attach(dir, default_threads)?;
        let mut this = Self {
            svc,
            dir: dir.to_path_buf(),
            generation,
            wal,
            wal_records,
            snapshot_every,
            default_threads,
        };
        if report.fell_back > 0 {
            // The newest snapshot was unreadable; make the repaired state
            // the durable baseline right away (and retire the bad file).
            this.compact()?;
        }
        Ok((this, report))
    }

    /// The wrapped session.
    pub fn service(&self) -> &SesService {
        &self.svc
    }

    /// The generation whose log new records currently append to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Folds the live state into snapshot generation `G+1`, starts that
    /// generation's empty log, and retires generations older than the one
    /// just left (keeping two pairs). Returns `(new_generation,
    /// records_folded)`.
    ///
    /// # Errors
    /// [`ServiceError::Io`] on filesystem failures. The old generation
    /// pair stays intact until the new snapshot is durable, so a failure
    /// (or a crash) at any point loses nothing.
    pub fn compact(&mut self) -> Result<(u64, u64), ServiceError> {
        let folded = self.wal_records;
        let prev = self.generation;
        // Strictly above every file on disk: after a fallback recovery the
        // corrupt newer generation's files still exist, and reusing their
        // numbers would resurrect stale log records on the next recovery.
        let mut next = self.generation;
        for g in generations(&self.dir)?.into_iter().chain(wal_generations(&self.dir)?) {
            next = next.max(g);
        }
        next += 1;
        write_snapshot(&self.dir, next, &state_bytes(&self.svc)?)?;
        self.wal = WalWriter::open(&wal_path(&self.dir, next), None)?;
        self.generation = next;
        self.wal_records = 0;
        retire_generations(&self.dir, prev)?;
        Ok((next, folded))
    }

    /// Drops the in-memory state and re-runs recovery from disk — the
    /// [`Request::Restore`] path.
    ///
    /// # Errors
    /// As [`open`](Self::open); on error the live state is untouched.
    pub fn reload(&mut self) -> Result<RecoveryReport, ServiceError> {
        let (svc, generation, wal, wal_records, report) = attach(&self.dir, self.default_threads)?;
        self.svc = svc;
        self.generation = generation;
        self.wal = wal;
        self.wal_records = wal_records;
        if report.fell_back > 0 {
            self.compact()?;
        }
        Ok(report)
    }

    /// Answers one request, making any state mutation durable **before**
    /// it is applied or acknowledged. `Persist`/`Restore` are served here
    /// (compaction / reload); read-only requests pass straight through. A
    /// durability I/O failure comes back as a [`Response::Error`] and the
    /// request is not applied.
    pub fn handle(&mut self, req: &Request) -> Response {
        match req {
            Request::Persist => match self.compact() {
                Ok((generation, folded)) => Response::Persisted { generation, folded },
                Err(e) => error_response(&e),
            },
            Request::Restore => match self.reload() {
                Ok(r) => Response::Restored { generation: r.generation, replayed: r.replayed },
                Err(e) => error_response(&e),
            },
            Request::Schedule { .. }
            | Request::ApplyOps { .. }
            | Request::Repair { .. }
            | Request::Reset => {
                if let Err(e) = self.wal.append(wire::encode_request(req).as_bytes()) {
                    return error_response(&e);
                }
                self.wal_records += 1;
                let resp = self.svc.handle(req);
                if self.snapshot_every > 0 && self.wal_records >= self.snapshot_every {
                    if let Err(e) = self.compact() {
                        // The record is durable in the log either way, but
                        // a session that can no longer write snapshots
                        // should say so rather than grow the log silently.
                        return error_response(&e);
                    }
                }
                resp
            }
            Request::Query { .. } | Request::Snapshot => self.svc.handle(req),
            // Session control is the network layer's business; a lone
            // durable session answers with the same typed error a plain
            // service does (and logs nothing — no state changed).
            Request::OpenSession { .. } | Request::CloseSession { .. } | Request::ListSessions => {
                self.svc.handle(req)
            }
        }
    }

    /// Forces the write-ahead log to stable storage — the graceful-
    /// shutdown wind-down. Every acknowledged mutation is already fsynced
    /// individually, so this only matters as a belt-and-braces barrier
    /// before the process exits.
    ///
    /// # Errors
    /// [`ServiceError::Io`] when the sync fails.
    pub fn sync_wal(&mut self) -> Result<(), ServiceError> {
        self.wal.sync()
    }

    /// The serve-loop body, like [`SesService::handle_line`] but durable.
    pub fn handle_line(&mut self, line: &str) -> String {
        let resp = match wire::decode_request(line) {
            Ok(req) => self.handle(&req),
            Err(e) => error_response(&e),
        };
        wire::encode_response(&resp)
    }
}

/// Read-only dry run of recovery for `ses recover`: reports what a real
/// recovery would load and replay **without** truncating torn tails,
/// compacting, or writing anything at all.
///
/// # Errors
/// Exactly the errors a real recovery would surface.
pub fn inspect(dir: &Path, default_threads: Threads) -> Result<Inspection, ServiceError> {
    let gens = generations(dir)?;
    let wals = wal_generations(dir)?;
    let loaded = load(dir, default_threads)?;
    Ok(Inspection {
        generations: gens,
        wal_generations: wals,
        snapshot: loaded.svc.snapshot(),
        report: RecoveryReport {
            fresh: false,
            generation: loaded.generation,
            replayed: loaded.replayed,
            torn: loaded.torn,
            fell_back: loaded.fell_back,
        },
    })
}

/// [`load`] plus the write-side attach: truncate the torn tail (if any)
/// and open the newest log for appending.
fn attach(
    dir: &Path,
    default_threads: Threads,
) -> Result<(SesService, u64, WalWriter, u64, RecoveryReport), ServiceError> {
    let loaded = load(dir, default_threads)?;
    // New records append to the newest existing log so replay order is
    // preserved; when the newest log belongs to a *newer* generation than
    // the snapshot we recovered from (fallback), the caller compacts
    // immediately and never appends here.
    let append_gen = wal_generations(dir)?.into_iter().max().unwrap_or(loaded.generation);
    let append_gen = append_gen.max(loaded.generation);
    let wal = WalWriter::open(&wal_path(dir, append_gen), loaded.torn)?;
    let report = RecoveryReport {
        fresh: false,
        generation: loaded.generation,
        replayed: loaded.replayed,
        torn: loaded.torn,
        fell_back: loaded.fell_back,
    };
    Ok((loaded.svc, loaded.generation, wal, loaded.newest_records, report))
}

/// The recovery core (pure read): newest valid snapshot, then replay every
/// log of that generation and newer, in order.
fn load(dir: &Path, default_threads: Threads) -> Result<Loaded, ServiceError> {
    let gens = generations(dir)?;
    if gens.is_empty() {
        return Err(ServiceError::corrupt(format!(
            "state dir {}: no snapshot to recover from",
            dir.display()
        )));
    }
    // Walk newest-first; a snapshot that fails any integrity check falls
    // back to its predecessor (its log is still on disk, so nothing is
    // lost). I/O failures are not corruption and stop the walk.
    let mut first_err: Option<ServiceError> = None;
    let mut fell_back = 0u64;
    let mut chosen: Option<(u64, SesService)> = None;
    for &g in gens.iter().rev() {
        let attempt = read_snapshot(&snapshot_path(dir, g)).and_then(|payload| {
            let text = std::str::from_utf8(&payload).map_err(|_| {
                ServiceError::corrupt(format!("snapshot generation {g}: payload is not UTF-8"))
            })?;
            let state: SessionState = serde_json::from_str(text).map_err(|e| {
                ServiceError::corrupt(format!("snapshot generation {g}: bad session state: {e}"))
            })?;
            SesService::from_state(state, default_threads)
        });
        match attempt {
            Ok(svc) => {
                chosen = Some((g, svc));
                break;
            }
            Err(e @ ServiceError::Corrupt { .. }) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
                fell_back += 1;
            }
            Err(e) => return Err(e),
        }
    }
    let Some((base, mut svc)) = chosen else {
        return Err(first_err.expect("at least one generation was attempted"));
    };

    let wal_gens: Vec<u64> = wal_generations(dir)?.into_iter().filter(|&g| g >= base).collect();
    if let Some(&last) = wal_gens.last() {
        // Replay must cover every generation from the snapshot onward
        // contiguously: a hole (including a missing base log while newer
        // logs exist) means acknowledged records are gone, which silent
        // replay would paper over. A base log missing with *nothing*
        // newer is the legitimate crash window between a compaction's
        // snapshot write and its log creation — no records existed yet.
        for g in base..=last {
            if !wal_gens.contains(&g) {
                return Err(ServiceError::corrupt(format!(
                    "state dir {}: log for generation {g} is missing",
                    dir.display()
                )));
            }
        }
    }
    let newest = wal_gens.last().copied();
    let mut replayed = 0u64;
    let mut torn = None;
    let mut newest_records = 0u64;
    for &g in &wal_gens {
        let path = wal_path(dir, g);
        let contents = read_wal(&path)?;
        if let Some(t) = contents.torn_at {
            if Some(g) == newest {
                // A crash mid-append tore the final record; it was never
                // acknowledged, so truncating it loses nothing.
                torn = Some(t);
            } else {
                return Err(ServiceError::corrupt(format!(
                    "wal {}: torn tail in a non-final log",
                    path.display()
                )));
            }
        }
        for record in &contents.records {
            let line = std::str::from_utf8(record).map_err(|_| {
                ServiceError::corrupt(format!("wal {}: record is not UTF-8", path.display()))
            })?;
            let req = wire::decode_request(line).map_err(|e| {
                ServiceError::corrupt(format!(
                    "wal {}: record is not a request: {e}",
                    path.display()
                ))
            })?;
            // Replaying through the normal dispatch reproduces the exact
            // live history — including requests that failed validation
            // (their error, and any partial effect, is deterministic).
            let _ = svc.handle(&req);
            replayed += 1;
        }
        if Some(g) == newest {
            newest_records = contents.records.len() as u64;
        }
    }
    Ok(Loaded { svc, generation: base, replayed, torn, fell_back, newest_records })
}

/// Serializes the session for a snapshot payload.
fn state_bytes(svc: &SesService) -> Result<Vec<u8>, ServiceError> {
    serde_json::to_string(&svc.to_state())
        .map(String::into_bytes)
        .map_err(|e| ServiceError::Io { detail: format!("serialize session state: {e}") })
}

/// Renders a failure the way [`SesService::handle`] does.
fn error_response(e: &ServiceError) -> Response {
    Response::Error { code: e.code().to_string(), message: e.to_string() }
}
