//! Versioned JSON-lines wire codec for the service protocol.
//!
//! One request or response per line, wrapped in a tiny version envelope:
//!
//! ```text
//! {"v":1,"req":{"Schedule":{"algorithm":"INC","k":5,"threads":null,"gate":false,"profile":false}}}
//! {"v":1,"resp":{"Scheduled":{"algorithm":"INC","k":5,...}}}
//! ```
//!
//! The payload under `req`/`resp` is the externally-tagged serde encoding
//! of [`Request`]/[`Response`]. Rules:
//!
//! * Every line **must** carry `"v"`; a missing or non-integer version is
//!   a [`ServiceError::Protocol`] error, a version other than
//!   [`VERSION`] is [`ServiceError::UnsupportedVersion`] — so a v2 client
//!   gets a precise rejection instead of a field-level parse error.
//! * Encoding is deterministic: object keys keep declaration order and
//!   floats print in Rust's shortest round-trip form, so equal values
//!   encode to equal bytes (the golden-transcript tests byte-compare whole
//!   response logs).
//! * Decoding ignores unknown envelope keys (forward-compatible padding)
//!   but is strict about the payload shape.

use super::{Request, Response};
use serde::{Deserialize, Serialize, Value};
use ses_core::error::{ServiceError, SERVICE_PROTOCOL_VERSION};

/// The protocol version this build speaks.
pub const VERSION: u64 = SERVICE_PROTOCOL_VERSION;

/// Hard ceiling on JSON nesting depth accepted on the wire. The parser's
/// recursion is bounded by input depth, so a pathological `[[[[…` line
/// must be rejected by a flat pre-scan before parsing ever starts —
/// answering a protocol error instead of overflowing the stack.
pub const MAX_DEPTH: usize = 128;

/// Flat single-pass depth check: counts `{`/`[` nesting outside string
/// literals (escape-aware). Runs in O(len) with no allocation.
fn depth_guard(line: &str) -> Result<(), ServiceError> {
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for b in line.bytes() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => {
                depth += 1;
                if depth > MAX_DEPTH {
                    return Err(ServiceError::protocol(format!(
                        "JSON nesting deeper than {MAX_DEPTH} levels"
                    )));
                }
            }
            b'}' | b']' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    Ok(())
}

/// Ordered-object key lookup.
fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Wraps a payload in the `{"v":VERSION, <key>: payload}` envelope.
fn encode(key: &str, payload: Value) -> String {
    let envelope =
        Value::Object(vec![("v".to_string(), Value::UInt(VERSION)), (key.to_string(), payload)]);
    serde_json::to_string(&envelope).expect("wire payloads contain only finite floats")
}

/// Unwraps the `{"v":VERSION, <key>: payload}` envelope, moving the
/// payload out of the parsed tree (no clone — `ApplyOps` batches can
/// carry full per-user interest vectors).
fn decode(line: &str, key: &str) -> Result<Value, ServiceError> {
    depth_guard(line)?;
    let value: Value =
        serde_json::from_str(line).map_err(|e| ServiceError::protocol(e.to_string()))?;
    let Value::Object(mut obj) = value else {
        return Err(ServiceError::protocol("envelope must be a JSON object"));
    };
    let v = get(&obj, "v").ok_or_else(|| ServiceError::protocol("missing version field \"v\""))?;
    let got = v
        .as_u64()
        .ok_or_else(|| ServiceError::protocol("version field \"v\" must be an integer"))?;
    if got != VERSION {
        return Err(ServiceError::UnsupportedVersion { got, supported: VERSION });
    }
    let idx = obj
        .iter()
        .position(|(k, _)| k == key)
        .ok_or_else(|| ServiceError::protocol(format!("missing payload field \"{key}\"")))?;
    Ok(obj.swap_remove(idx).1)
}

/// Encodes one request line.
pub fn encode_request(req: &Request) -> String {
    encode("req", req.to_value())
}

/// Encodes one request line addressed to a named session: the same
/// envelope as [`encode_request`] plus a `"session"` key. Stdio servers
/// (which pre-date the field) decode it unchanged — unknown envelope keys
/// are forward-compatible padding by rule.
pub fn encode_request_for(session: &str, req: &Request) -> String {
    let envelope = Value::Object(vec![
        ("v".to_string(), Value::UInt(VERSION)),
        ("session".to_string(), Value::String(session.to_string())),
        ("req".to_string(), req.to_value()),
    ]);
    serde_json::to_string(&envelope).expect("wire payloads contain only finite floats")
}

/// Decodes one request line.
///
/// # Errors
/// [`ServiceError::Protocol`] for malformed lines,
/// [`ServiceError::UnsupportedVersion`] for a version mismatch.
pub fn decode_request(line: &str) -> Result<Request, ServiceError> {
    let payload = decode(line, "req")?;
    Request::from_value(&payload).map_err(|e| ServiceError::protocol(e.to_string()))
}

/// Decodes one request line together with the optional `"session"`
/// envelope field — the address a multi-session server routes on. A line
/// without the field is exactly the v1 stdio shape and comes back as
/// `None` (the connection's default session), which is what lets v1
/// transcripts replay byte-identically against a networked server.
///
/// # Errors
/// As [`decode_request`]; additionally [`ServiceError::Protocol`] when
/// `"session"` is present but not a string.
pub fn decode_request_routed(line: &str) -> Result<(Request, Option<String>), ServiceError> {
    depth_guard(line)?;
    let value: Value =
        serde_json::from_str(line).map_err(|e| ServiceError::protocol(e.to_string()))?;
    let Value::Object(mut obj) = value else {
        return Err(ServiceError::protocol("envelope must be a JSON object"));
    };
    let v = get(&obj, "v").ok_or_else(|| ServiceError::protocol("missing version field \"v\""))?;
    let got = v
        .as_u64()
        .ok_or_else(|| ServiceError::protocol("version field \"v\" must be an integer"))?;
    if got != VERSION {
        return Err(ServiceError::UnsupportedVersion { got, supported: VERSION });
    }
    let session = match get(&obj, "session") {
        None => None,
        Some(Value::String(s)) => Some(s.clone()),
        Some(_) => {
            return Err(ServiceError::protocol("envelope field \"session\" must be a string"))
        }
    };
    let idx = obj
        .iter()
        .position(|(k, _)| k == "req")
        .ok_or_else(|| ServiceError::protocol("missing payload field \"req\""))?;
    let payload = obj.swap_remove(idx).1;
    let req = Request::from_value(&payload).map_err(|e| ServiceError::protocol(e.to_string()))?;
    Ok((req, session))
}

/// Encodes one response line.
pub fn encode_response(resp: &Response) -> String {
    encode("resp", resp.to_value())
}

/// Decodes one response line.
///
/// # Errors
/// [`ServiceError::Protocol`] for malformed lines,
/// [`ServiceError::UnsupportedVersion`] for a version mismatch.
pub fn decode_response(line: &str) -> Result<Response, ServiceError> {
    let payload = decode(line, "resp")?;
    Response::from_value(&payload).map_err(|e| ServiceError::protocol(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Query;
    use ses_core::delta::DeltaOp;
    use ses_core::stats::Stats;
    use ses_core::EventId;

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Schedule {
                algorithm: "INC".into(),
                k: 5,
                threads: Some(4),
                gate: true,
                profile: false,
                constraints: None,
            },
            Request::Schedule {
                algorithm: "ALG".into(),
                k: 3,
                threads: None,
                gate: false,
                profile: false,
                constraints: Some({
                    let mut cs = ses_core::constraints::ConstraintSet::new();
                    cs.set_venue_capacity(ses_core::LocationId::new(0), 2);
                    cs.add_conflict(EventId::new(0), EventId::new(1));
                    cs.add_precedence(EventId::new(1), EventId::new(2));
                    cs
                }),
            },
            Request::ApplyOps {
                ops: vec![DeltaOp::ShiftInterest {
                    event: EventId::new(1),
                    user: 0,
                    interest: 0.25,
                }],
                window: None,
            },
            Request::ApplyOps {
                ops: vec![DeltaOp::RemoveEvent { event: EventId::new(3) }],
                window: Some(16),
            },
            Request::Repair { k: 3, threads: None, gate: false },
            Request::Query { query: Query::Event { event: 2 } },
            Request::Snapshot,
            Request::Reset,
        ];
        for req in reqs {
            let line = encode_request(&req);
            assert!(line.starts_with("{\"v\":1,"), "{line}");
            assert!(!line.contains('\n'));
            assert_eq!(decode_request(&line).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Scheduled {
                algorithm: "HOR".into(),
                k: 2,
                utility: 1.5,
                assignments: vec![],
                stats: Stats::new(),
            },
            Response::ResetDone,
            Response::Error { code: "delta".into(), message: "op 3: bad".into() },
        ];
        for resp in resps {
            let line = encode_response(&resp);
            assert_eq!(decode_response(&line).unwrap(), resp);
        }
    }

    #[test]
    fn omitted_optional_fields_take_defaults() {
        let req =
            decode_request(r#"{"v":1,"req":{"Schedule":{"algorithm":"inc","k":4}}}"#).unwrap();
        assert_eq!(
            req,
            Request::Schedule {
                algorithm: "inc".into(),
                k: 4,
                threads: None,
                gate: false,
                profile: false,
                constraints: None,
            }
        );
        let req = decode_request(r#"{"v":1,"req":{"Repair":{"k":2}}}"#).unwrap();
        assert_eq!(req, Request::Repair { k: 2, threads: None, gate: false });
    }

    #[test]
    fn version_is_mandatory_and_checked() {
        let err = decode_request(r#"{"req":{"Snapshot":null}}"#).unwrap_err();
        assert_eq!(err.code(), "protocol");
        let err = decode_request(r#"{"v":2,"req":{"Snapshot":null}}"#).unwrap_err();
        assert_eq!(err, ServiceError::UnsupportedVersion { got: 2, supported: 1 });
        let err = decode_request(r#"{"v":"one","req":{"Snapshot":null}}"#).unwrap_err();
        assert_eq!(err.code(), "protocol");
    }

    #[test]
    fn malformed_lines_are_protocol_errors() {
        for line in ["", "not json", "[1,2,3]", r#"{"v":1}"#, r#"{"v":1,"req":{"Nope":{}}}"#] {
            let err = decode_request(line).unwrap_err();
            assert_eq!(err.code(), "protocol", "line {line:?} gave {err:?}");
        }
    }

    #[test]
    fn pathological_nesting_is_rejected_flat() {
        // Deeper than MAX_DEPTH: rejected by the pre-scan (a recursive
        // parse would risk the stack), answered as a protocol error.
        let deep = format!(r#"{{"v":1,"req":{}{}"#, "[".repeat(500), "]".repeat(500));
        let err = decode_request(&deep).unwrap_err();
        assert_eq!(err.code(), "protocol");
        assert!(err.to_string().contains("nesting"), "{err}");
        // Unterminated-deep (no closers at all) is rejected the same way.
        let open = format!(r#"{{"v":1,"req":{}"#, "[".repeat(100_000));
        assert_eq!(decode_request(&open).unwrap_err().code(), "protocol");
        // Brackets inside strings don't count toward depth.
        let bracket_string = format!(r#"{{"v":1,"req":{{"Nope":"{}"}}}}"#, r"[\\[".repeat(300));
        let err = decode_request(&bracket_string).unwrap_err();
        assert!(!err.to_string().contains("nesting"), "{err}");
        // Depth within the cap parses normally.
        assert!(decode_request(r#"{"v":1,"req":"Snapshot"}"#).is_ok());
    }

    #[test]
    fn session_envelope_round_trips_and_defaults() {
        // Addressed: the session comes back alongside the request.
        let line = encode_request_for("night-shift", &Request::Snapshot);
        assert_eq!(line, r#"{"v":1,"session":"night-shift","req":"Snapshot"}"#);
        let (req, session) = decode_request_routed(&line).unwrap();
        assert_eq!(req, Request::Snapshot);
        assert_eq!(session.as_deref(), Some("night-shift"));
        // Unaddressed: exactly the v1 shape, session defaults to None.
        let line = encode_request(&Request::Snapshot);
        let (req, session) = decode_request_routed(&line).unwrap();
        assert_eq!(req, Request::Snapshot);
        assert_eq!(session, None);
        // Key order is irrelevant (decode ignores envelope ordering).
        let (_, session) =
            decode_request_routed(r#"{"req":"Snapshot","session":"s","v":1}"#).unwrap();
        assert_eq!(session.as_deref(), Some("s"));
        // A non-string session is a protocol error, not a silent default.
        let err = decode_request_routed(r#"{"v":1,"session":7,"req":"Snapshot"}"#).unwrap_err();
        assert_eq!(err.code(), "protocol");
    }

    #[test]
    fn stdio_decoder_ignores_the_session_key() {
        // The pre-session decoder must keep accepting addressed lines —
        // unknown envelope keys are forward-compatible padding.
        let line = encode_request_for("x", &Request::Snapshot);
        assert_eq!(decode_request(&line).unwrap(), Request::Snapshot);
    }

    #[test]
    fn session_control_requests_round_trip() {
        for req in [
            Request::OpenSession { session: "a".into() },
            Request::CloseSession { session: "a".into() },
            Request::ListSessions,
        ] {
            let line = encode_request(&req);
            assert_eq!(decode_request(&line).unwrap(), req);
        }
        let resp = Response::Sessions {
            sessions: vec![crate::service::SessionInfo {
                session: "a".into(),
                warm: true,
                ops_applied: 9,
                durable: false,
            }],
        };
        let line = encode_response(&resp);
        assert_eq!(decode_response(&line).unwrap(), resp);
    }

    #[test]
    fn unit_variants_encode_compactly() {
        assert_eq!(encode_request(&Request::Snapshot), r#"{"v":1,"req":"Snapshot"}"#);
        assert_eq!(encode_response(&Response::ResetDone), r#"{"v":1,"resp":"ResetDone"}"#);
    }
}
