//! `ses_net` — the multi-session network layer behind `ses serve --listen`.
//!
//! Promotes the single stdio session into a TCP server in which **many
//! named sessions live in one process**, each owning its own
//! [`SesService`] (live instance, scheduler registry, warm repairer
//! caches) and — under `--state-dir` — its own [`DurableService`] in
//! `<state-dir>/<name>`. The wire protocol is the existing v1 JSON-lines
//! envelope with one forward-compatible addition: an optional `"session"`
//! envelope key naming the target session. Lines without the key address
//! the `default` session, which is why a committed v1 transcript replays
//! byte-identically against a networked server.
//!
//! ## Concurrency model: serialized writes, published reads
//!
//! Every session is a [`NetSession`]: a writer [`Mutex`] around the
//! backing service plus an immutable **published** [`ReadView`] behind an
//! `RwLock<Arc<…>>`. Mutating requests (`Schedule`/`ApplyOps`/`Repair`/
//! `Reset`, and the durable `Persist`/`Restore`) serialize on the writer
//! lock and republish a fresh view before releasing it; read-only
//! requests (`Query`/`Snapshot`, classified by [`is_read_only`]) clone
//! the published `Arc` and answer from it without ever touching the
//! writer lock. The consequences, which `tests/net_service.rs` proves:
//!
//! * **Reads never block on writes** — a `Query` during a long `Schedule`
//!   answers immediately from the pre-mutation view.
//! * **Reads never observe a torn state** — a view is an immutable value;
//!   the only transition is the atomic `Arc` swap, so every read answer
//!   is bit-identical to the serialized answer either before or after the
//!   in-flight mutation, never a blend.
//! * Both paths route through the same `query_on`/`snapshot_on`
//!   functions, so the equivalence is by construction, not by test alone.
//!
//! ## Shutdown state machine
//!
//! `SIGTERM`/`SIGINT` set one process-wide flag ([`request_shutdown`]).
//! The accept loop stops accepting and closes the listener; each
//! connection finishes the request it is answering (in-flight requests
//! drain), notices the flag at its next read tick, and closes; the server
//! then joins every connection thread, fsyncs every durable session's
//! write-ahead log, and returns cleanly — the process exits 0.
//!
//! ## Connection guards
//!
//! The stdio stdin guards apply per connection: `--max-line-bytes` bounds
//! what one line can buffer (over-cap lines are drained, answered with a
//! protocol `Error`, and the connection lives on), an idle timeout closes
//! connections that send nothing, and `--max-connections` answers excess
//! connects with exactly one protocol `Error` line before closing.

use super::durable::DurableService;
use super::{is_read_only, wire, ReadView, Request, Response, SesService, SessionInfo};
use ses_core::error::ServiceError;
use ses_core::model::Instance;
use ses_core::parallel::Threads;
use std::collections::BTreeMap;
use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// The session a request without a `"session"` envelope key addresses —
/// also the one session a server is guaranteed to have from boot.
pub const DEFAULT_SESSION: &str = "default";

/// Longest accepted session name (names become directory names under
/// `--state-dir`, so they are kept short and filesystem-safe).
pub const MAX_SESSION_NAME: usize = 64;

/// How often a blocked connection read wakes to poll the shutdown flag
/// and the idle clock.
const READ_TICK: Duration = Duration::from_millis(200);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(50);

// ---------------------------------------------------------------------------
// Shutdown flag + signal handling
// ---------------------------------------------------------------------------

/// Process-wide graceful-shutdown request flag (see the module docs).
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Requests a graceful shutdown of a running [`serve`] loop — exactly
/// what the `SIGTERM`/`SIGINT` handlers do, callable from tests.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Whether a graceful shutdown has been requested.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Async-signal-safe handler: one atomic store, nothing else.
extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the `SIGTERM`/`SIGINT` handlers via libc's `signal(2)` —
/// declared by hand because the workspace vendors no libc crate. Only the
/// `--listen` server installs these; stdio serve keeps the default
/// die-on-signal behavior (its EOF contract is the clean exit).
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    // SIGINT = 2, SIGTERM = 15 (POSIX-mandated values).
    unsafe {
        signal(2, on_signal);
        signal(15, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

// ---------------------------------------------------------------------------
// Capped line reading (shared with stdio serve)
// ---------------------------------------------------------------------------

/// One capped line read.
pub enum LineRead {
    /// Clean end of input.
    Eof,
    /// A complete line within the cap (without the terminator).
    Line(String),
    /// The line exceeded the cap; its bytes were drained, not buffered.
    Oversized,
}

/// Reads one `\n`-terminated line, buffering at most `cap` bytes. An
/// over-cap line is consumed chunk by chunk (bounded memory) and reported
/// as [`LineRead::Oversized`] so the caller can answer an error and keep
/// the session alive. Used by the stdio serve loop; the TCP path uses
/// [`ConnReader`], which adds shutdown/idle ticks.
///
/// # Errors
/// Propagates the reader's I/O errors (including invalid UTF-8).
pub fn read_capped_line(reader: &mut impl BufRead, cap: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF. A final unterminated line still counts as a line.
            return Ok(if overflowed {
                LineRead::Oversized
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(finish_line(buf)?)
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !overflowed {
            if buf.len() + take > cap {
                overflowed = true;
                buf = Vec::new(); // drop what was buffered; keep draining
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        let consumed = take + usize::from(newline.is_some());
        reader.consume(consumed);
        if newline.is_some() {
            return Ok(if overflowed {
                LineRead::Oversized
            } else {
                LineRead::Line(finish_line(buf)?)
            });
        }
    }
}

/// UTF-8 conversion with the same error shape `BufRead::lines` produces,
/// and the same trailing-`\r` trim.
fn finish_line(mut buf: Vec<u8>) -> std::io::Result<String> {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "stream did not contain valid UTF-8")
    })
}

// ---------------------------------------------------------------------------
// Session backend (shared with stdio serve)
// ---------------------------------------------------------------------------

/// The two session flavors a serve loop can host: plain in-memory, or
/// durable (write-ahead logged + snapshotted under a state directory).
pub enum SessionBackend {
    /// In-memory session; state dies with the process.
    Plain(SesService),
    /// Durable session over a state directory (see [`DurableService`]).
    Durable(DurableService),
}

impl SessionBackend {
    /// Answers one request (the durable flavor logs mutations first).
    pub fn handle(&mut self, req: &Request) -> Response {
        match self {
            SessionBackend::Plain(s) => s.handle(req),
            SessionBackend::Durable(s) => s.handle(req),
        }
    }

    /// The serve-loop body: decode, handle, encode.
    pub fn handle_line(&mut self, line: &str) -> String {
        match self {
            SessionBackend::Plain(s) => s.handle_line(line),
            SessionBackend::Durable(s) => s.handle_line(line),
        }
    }

    /// The backing service, for state inspection.
    pub fn service(&self) -> &SesService {
        match self {
            SessionBackend::Plain(s) => s,
            SessionBackend::Durable(s) => s.service(),
        }
    }

    /// Delta ops applied over the session's lifetime.
    pub fn ops_applied(&self) -> u64 {
        self.service().ops_applied()
    }

    /// Whether this session persists to disk.
    pub fn is_durable(&self) -> bool {
        matches!(self, SessionBackend::Durable(_))
    }

    /// Forces a durable session's write-ahead log to stable storage; a
    /// plain session has nothing to sync. The graceful-shutdown wind-down
    /// calls this for every session.
    ///
    /// # Errors
    /// [`ServiceError::Io`] when the durable sync fails.
    pub fn sync_wal(&mut self) -> Result<(), ServiceError> {
        match self {
            SessionBackend::Plain(_) => Ok(()),
            SessionBackend::Durable(s) => s.sync_wal(),
        }
    }
}

// ---------------------------------------------------------------------------
// NetSession: serialized writes, published reads
// ---------------------------------------------------------------------------

/// One live named session: the writer-locked backend plus the published
/// read view (see the module docs for the locking discipline).
pub struct NetSession {
    writer: Mutex<SessionBackend>,
    published: RwLock<Arc<ReadView>>,
    durable: bool,
}

impl NetSession {
    /// Wraps a backend, publishing its current state as the first view.
    pub fn new(backend: SessionBackend) -> Self {
        let durable = backend.is_durable();
        let published = RwLock::new(Arc::new(backend.service().read_view()));
        Self { writer: Mutex::new(backend), published, durable }
    }

    /// Whether the session persists to disk.
    pub fn durable(&self) -> bool {
        self.durable
    }

    /// The currently published read view (an immutable value — hold it as
    /// long as you like without blocking anyone).
    pub fn view(&self) -> Arc<ReadView> {
        Arc::clone(&self.published.read().expect("read-view lock poisoned"))
    }

    /// Answers one request under the session's concurrency rules:
    /// read-only requests answer from the published view without touching
    /// the writer lock; everything else serializes on the writer lock and
    /// republishes before releasing it. Republication happens even when
    /// the request failed — a failed `ApplyOps` may still have applied a
    /// prefix, and the published view must never lag observable state.
    pub fn handle(&self, req: &Request) -> Response {
        if is_read_only(req) {
            return self.view().answer(req);
        }
        let mut writer = self.writer.lock().expect("session writer lock poisoned");
        let resp = writer.handle(req);
        let fresh = Arc::new(writer.service().read_view());
        *self.published.write().expect("read-view lock poisoned") = fresh;
        resp
    }

    /// One [`Response::Sessions`] row, from the published view.
    pub fn info(&self, name: &str) -> SessionInfo {
        let view = self.view();
        SessionInfo {
            session: name.to_string(),
            warm: view.warm(),
            ops_applied: view.ops_applied(),
            durable: self.durable,
        }
    }

    /// Locks the writer and fsyncs the WAL (shutdown wind-down).
    ///
    /// # Errors
    /// [`ServiceError::Io`] when the durable sync fails.
    pub fn sync_wal(&self) -> Result<(), ServiceError> {
        self.writer.lock().expect("session writer lock poisoned").sync_wal()
    }
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

/// What bringing one session up at boot found — the material for the
/// server's per-session stderr diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionBoot {
    /// The session's name.
    pub session: String,
    /// Whether it persists to the state directory.
    pub durable: bool,
    /// Whether existing on-disk state was recovered into it.
    pub recovered: bool,
    /// Log records replayed during recovery (0 for fresh sessions).
    pub replayed: u64,
    /// Snapshot generation recovered from (0 for fresh sessions).
    pub generation: u64,
}

/// The process-wide registry of named sessions: opens, closes, lists,
/// and routes requests. Shared across connection threads behind an
/// `Arc`; the map lock is held only for resolution, never while a
/// request executes.
pub struct SessionManager {
    /// Fresh sessions start from a copy of this boot instance.
    template: Instance,
    threads: Threads,
    state_dir: Option<PathBuf>,
    snapshot_every: u64,
    max_sessions: usize,
    sessions: RwLock<BTreeMap<String, Arc<NetSession>>>,
}

impl SessionManager {
    /// A manager whose sessions start from `template`. With `state_dir`,
    /// every session is durable under `<state_dir>/<name>`. Opens the
    /// `default` session immediately and — with a state directory —
    /// recovers **every** session found on disk, so a restarted server
    /// resumes exactly the sessions it was killed with. Returns the boot
    /// report, one row per session brought up, sorted by name.
    ///
    /// # Errors
    /// [`ServiceError::Io`] for an unusable state directory, any
    /// per-session recovery error, or [`ServiceError::InvalidArgument`]
    /// when the disk holds more sessions than `max_sessions`.
    pub fn new(
        template: Instance,
        threads: Threads,
        state_dir: Option<PathBuf>,
        snapshot_every: u64,
        max_sessions: usize,
    ) -> Result<(Self, Vec<SessionBoot>), ServiceError> {
        let manager = Self {
            template,
            threads,
            state_dir,
            snapshot_every,
            max_sessions: max_sessions.max(1),
            sessions: RwLock::new(BTreeMap::new()),
        };
        let mut names = vec![DEFAULT_SESSION.to_string()];
        if let Some(dir) = &manager.state_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| ServiceError::Io { detail: format!("{}: {e}", dir.display()) })?;
            let entries = std::fs::read_dir(dir)
                .map_err(|e| ServiceError::Io { detail: format!("{}: {e}", dir.display()) })?;
            for entry in entries {
                let entry = entry
                    .map_err(|e| ServiceError::Io { detail: format!("{}: {e}", dir.display()) })?;
                let is_dir = entry
                    .file_type()
                    .map_err(|e| ServiceError::Io { detail: format!("{}: {e}", dir.display()) })?
                    .is_dir();
                let name = entry.file_name().to_string_lossy().into_owned();
                if is_dir && validate_session_name(&name).is_ok() && !names.contains(&name) {
                    names.push(name);
                }
            }
        }
        names.sort();
        if names.len() > manager.max_sessions {
            return Err(ServiceError::invalid(format!(
                "state directory holds {} sessions but --max-sessions is {}",
                names.len(),
                manager.max_sessions,
            )));
        }
        let mut boots = Vec::with_capacity(names.len());
        for name in &names {
            boots.push(manager.open(name)?);
        }
        Ok((manager, boots))
    }

    /// Opens (or re-resolves) the named session. Opening an existing name
    /// is idempotent: it reports the live session (`recovered: false`)
    /// rather than erroring, so client scripts can open-then-use without
    /// coordinating who goes first.
    ///
    /// # Errors
    /// [`ServiceError::InvalidArgument`] for a malformed name or when the
    /// session cap is reached; recovery errors for a durable session.
    pub fn open(&self, name: &str) -> Result<SessionBoot, ServiceError> {
        validate_session_name(name)?;
        let mut sessions = self.sessions.write().expect("session map lock poisoned");
        if let Some(existing) = sessions.get(name) {
            return Ok(SessionBoot {
                session: name.to_string(),
                durable: existing.durable(),
                recovered: false,
                replayed: 0,
                generation: 0,
            });
        }
        if sessions.len() >= self.max_sessions {
            return Err(ServiceError::invalid(format!(
                "session limit reached (--max-sessions {})",
                self.max_sessions
            )));
        }
        let (backend, boot) = match &self.state_dir {
            None => {
                let svc = SesService::new(self.template.clone()).with_threads(self.threads);
                let boot = SessionBoot {
                    session: name.to_string(),
                    durable: false,
                    recovered: false,
                    replayed: 0,
                    generation: 0,
                };
                (SessionBackend::Plain(svc), boot)
            }
            Some(dir) => {
                let (svc, report) = DurableService::open(
                    &dir.join(name),
                    self.template.clone(),
                    self.threads,
                    self.snapshot_every,
                )?;
                let boot = SessionBoot {
                    session: name.to_string(),
                    durable: true,
                    recovered: !report.fresh,
                    replayed: report.replayed,
                    generation: report.generation,
                };
                (SessionBackend::Durable(svc), boot)
            }
        };
        sessions.insert(name.to_string(), Arc::new(NetSession::new(backend)));
        Ok(boot)
    }

    /// Closes the named session: the name stops resolving and the live
    /// state drops (a durable session's on-disk state stays, and a later
    /// open recovers it).
    ///
    /// # Errors
    /// [`ServiceError::UnknownSession`] when the name is not live.
    pub fn close(&self, name: &str) -> Result<(), ServiceError> {
        let mut sessions = self.sessions.write().expect("session map lock poisoned");
        match sessions.remove(name) {
            Some(_) => Ok(()),
            None => Err(ServiceError::UnknownSession { name: name.to_string() }),
        }
    }

    /// Resolves a live session.
    ///
    /// # Errors
    /// [`ServiceError::UnknownSession`] when the name is not live.
    pub fn resolve(&self, name: &str) -> Result<Arc<NetSession>, ServiceError> {
        let sessions = self.sessions.read().expect("session map lock poisoned");
        sessions
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownSession { name: name.to_string() })
    }

    /// Every live session's summary, sorted by name (the map is ordered).
    pub fn list(&self) -> Vec<SessionInfo> {
        let sessions = self.sessions.read().expect("session map lock poisoned");
        sessions.iter().map(|(name, s)| s.info(name)).collect()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.read().expect("session map lock poisoned").len()
    }

    /// Whether no session is live (only possible after closing `default`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Routes one request: session-control requests are served by the
    /// manager itself; everything else resolves the addressed session
    /// (`None` = [`DEFAULT_SESSION`]) and runs under its concurrency
    /// rules. A control request's own `session` envelope key is ignored —
    /// control is server-scoped, the target is in the request body.
    pub fn handle_routed(&self, session: Option<&str>, req: &Request) -> Response {
        match req {
            Request::OpenSession { session: name } => match self.open(name) {
                Ok(boot) => Response::SessionOpened {
                    session: boot.session,
                    durable: boot.durable,
                    recovered: boot.recovered,
                },
                Err(e) => error_response(&e),
            },
            Request::CloseSession { session: name } => match self.close(name) {
                Ok(()) => Response::SessionClosed { session: name.clone() },
                Err(e) => error_response(&e),
            },
            Request::ListSessions => Response::Sessions { sessions: self.list() },
            _ => {
                let name = session.unwrap_or(DEFAULT_SESSION);
                match self.resolve(name) {
                    Ok(s) => s.handle(req),
                    Err(e) => error_response(&e),
                }
            }
        }
    }

    /// The serve-loop body: decode one request line (with its optional
    /// session address), route it, encode the response line. The response
    /// never echoes the session — per-connection request/response
    /// ordering already disambiguates, and it keeps single-session
    /// transcripts byte-identical to the stdio goldens.
    pub fn handle_line(&self, line: &str) -> String {
        let resp = match wire::decode_request_routed(line) {
            Ok((req, session)) => self.handle_routed(session.as_deref(), &req),
            Err(e) => error_response(&e),
        };
        wire::encode_response(&resp)
    }

    /// Fsyncs every durable session's write-ahead log (shutdown
    /// wind-down), stopping at the first failure.
    ///
    /// # Errors
    /// [`ServiceError::Io`] when a sync fails.
    pub fn sync_all(&self) -> Result<(), ServiceError> {
        let sessions: Vec<Arc<NetSession>> = {
            let map = self.sessions.read().expect("session map lock poisoned");
            map.values().cloned().collect()
        };
        for s in sessions {
            s.sync_wal()?;
        }
        Ok(())
    }
}

/// Session names become directory names under `--state-dir`, so the
/// accepted alphabet is deliberately narrow: `[A-Za-z0-9_-]`, 1 to
/// [`MAX_SESSION_NAME`] chars. Rejects path traversal by construction.
///
/// # Errors
/// [`ServiceError::InvalidArgument`] describing the violation.
pub fn validate_session_name(name: &str) -> Result<(), ServiceError> {
    if name.is_empty() {
        return Err(ServiceError::invalid("session name must not be empty"));
    }
    if name.len() > MAX_SESSION_NAME {
        return Err(ServiceError::invalid(format!(
            "session name longer than {MAX_SESSION_NAME} chars"
        )));
    }
    if !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-') {
        return Err(ServiceError::invalid(format!(
            "session name '{name}' contains characters outside [A-Za-z0-9_-]"
        )));
    }
    Ok(())
}

fn error_response(e: &ServiceError) -> Response {
    Response::Error { code: e.code().to_string(), message: e.to_string() }
}

// ---------------------------------------------------------------------------
// TCP server
// ---------------------------------------------------------------------------

/// `ses serve --listen` configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind (`host:port`; port 0 picks a free port, reported
    /// on stderr).
    pub listen: String,
    /// Session cap ([`SessionManager`]); opens beyond it error.
    pub max_sessions: usize,
    /// Concurrent-connection cap; excess connects are answered with one
    /// protocol `Error` line and closed.
    pub max_connections: usize,
    /// Per-connection request-line byte cap (the stdio guard, per
    /// socket).
    pub max_line_bytes: usize,
    /// Close connections idle longer than this (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Durable state directory; sessions live in `<dir>/<name>`.
    pub state_dir: Option<PathBuf>,
    /// Durable auto-snapshot cadence (WAL records per fold).
    pub snapshot_every: u64,
    /// Worker-thread default for every session.
    pub threads: Threads,
}

/// What a finished [`serve`] loop did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted and served (not counting over-cap rejects).
    pub connections: u64,
    /// Connections turned away at the `--max-connections` cap.
    pub rejected: u64,
}

/// Runs the TCP serve loop until a graceful-shutdown signal, then drains
/// (see the module docs for the state machine). Diagnostics go to stderr
/// with `[session:NAME]` prefixes where attributable; sockets carry
/// nothing but response lines.
///
/// # Errors
/// [`ServiceError::Io`] for bind/accept failures; per-session recovery
/// errors at boot.
pub fn serve(cfg: &NetConfig, template: Instance) -> Result<ServeReport, ServiceError> {
    SHUTDOWN.store(false, Ordering::SeqCst);
    install_signal_handlers();
    let (manager, boots) = SessionManager::new(
        template,
        cfg.threads,
        cfg.state_dir.clone(),
        cfg.snapshot_every,
        cfg.max_sessions,
    )?;
    for b in &boots {
        if b.recovered {
            eprintln!(
                "# ses serve [session:{}]: recovered generation {} ({} log records replayed)",
                b.session, b.generation, b.replayed,
            );
        } else {
            eprintln!(
                "# ses serve [session:{}]: fresh {} session",
                b.session,
                if b.durable { "durable" } else { "in-memory" },
            );
        }
    }
    let manager = Arc::new(manager);
    let listener = TcpListener::bind(&cfg.listen)
        .map_err(|e| ServiceError::Io { detail: format!("bind {}: {e}", cfg.listen) })?;
    let local = listener
        .local_addr()
        .map_err(|e| ServiceError::Io { detail: format!("local_addr: {e}") })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServiceError::Io { detail: format!("set_nonblocking: {e}") })?;
    eprintln!(
        "# ses serve: listening on {local} ({} sessions, max {}, max {} connections)",
        boots.len(),
        cfg.max_sessions,
        cfg.max_connections,
    );

    let active = Arc::new(AtomicUsize::new(0));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut report = ServeReport { connections: 0, rejected: 0 };
    while !shutdown_requested() {
        match listener.accept() {
            Ok((stream, peer)) => {
                if active.load(Ordering::SeqCst) >= cfg.max_connections {
                    report.rejected += 1;
                    eprintln!(
                        "# ses serve: rejecting {peer} (--max-connections {})",
                        cfg.max_connections
                    );
                    reject_connection(stream, cfg.max_connections);
                    continue;
                }
                report.connections += 1;
                active.fetch_add(1, Ordering::SeqCst);
                let manager = Arc::clone(&manager);
                let active = Arc::clone(&active);
                let (cap, idle) = (cfg.max_line_bytes, cfg.idle_timeout);
                handles.push(std::thread::spawn(move || {
                    serve_connection(stream, &manager, cap, idle);
                    active.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                handles.retain(|h| !h.is_finished());
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(ServiceError::Io { detail: format!("accept: {e}") });
            }
        }
    }
    // Shutdown: stop accepting (listener drops), drain connections, sync.
    drop(listener);
    eprintln!(
        "# ses serve: shutdown requested; draining {} connection(s)",
        active.load(Ordering::SeqCst)
    );
    for h in handles {
        let _ = h.join();
    }
    manager.sync_all()?;
    eprintln!(
        "# ses serve: drained; {} connection(s) served, {} rejected; WALs synced; exiting",
        report.connections, report.rejected,
    );
    Ok(report)
}

/// Answers an over-cap connect with exactly one protocol `Error` line;
/// dropping the stream closes it.
fn reject_connection(mut stream: TcpStream, cap: usize) {
    let err = ServiceError::protocol(format!("connection limit reached (--max-connections {cap})"));
    let line = wire::encode_response(&error_response(&err));
    let _ = writeln!(stream, "{line}");
    let _ = stream.flush();
}

/// One connection's serve loop: read framed lines (with shutdown/idle
/// ticks), route each through the manager, answer on the same socket.
/// Write failures end the connection silently — the peer is gone.
fn serve_connection(
    stream: TcpStream,
    manager: &SessionManager,
    max_line_bytes: usize,
    idle_timeout: Option<Duration>,
) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = ConnReader::new(read_half);
    let mut out = stream;
    loop {
        if shutdown_requested() {
            return;
        }
        match reader.read_line(max_line_bytes, idle_timeout) {
            Ok(NetRead::Line(line)) => {
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                let resp = manager.handle_line(trimmed);
                if writeln!(out, "{resp}").is_err() || out.flush().is_err() {
                    return;
                }
            }
            Ok(NetRead::Oversized) => {
                let err = ServiceError::protocol(format!(
                    "request line exceeds --max-line-bytes ({max_line_bytes})"
                ));
                let line = wire::encode_response(&error_response(&err));
                if writeln!(out, "{line}").is_err() || out.flush().is_err() {
                    return;
                }
            }
            Ok(NetRead::IdleTimeout) => {
                let err = ServiceError::protocol("idle timeout; closing connection");
                let line = wire::encode_response(&error_response(&err));
                let _ = writeln!(out, "{line}");
                let _ = out.flush();
                return;
            }
            Ok(NetRead::Eof) | Ok(NetRead::Shutdown) => return,
            Err(e) => {
                // Answer in-protocol (best effort) and close, mirroring
                // the stdio read-failure contract.
                let err = ServiceError::from(e);
                let line = wire::encode_response(&error_response(&err));
                let _ = writeln!(out, "{line}");
                let _ = out.flush();
                return;
            }
        }
    }
}

/// What one TCP line read produced.
enum NetRead {
    /// A complete line within the cap.
    Line(String),
    /// The line exceeded the cap; drained, not buffered.
    Oversized,
    /// The peer closed its write half.
    Eof,
    /// No bytes for the configured idle window.
    IdleTimeout,
    /// A graceful shutdown was requested mid-read (any partial line is
    /// abandoned — it was never answered, and the peer sees the close).
    Shutdown,
}

/// Line framing over a read-timeout socket: accumulates bytes across
/// timeout ticks (polling the shutdown flag and the idle clock at each),
/// enforcing the line cap with bounded memory exactly like
/// [`read_capped_line`].
struct ConnReader {
    stream: TcpStream,
    /// Bytes received but not yet returned as lines.
    pending: Vec<u8>,
    /// The line being read already blew the cap and is draining.
    overflowed: bool,
}

impl ConnReader {
    fn new(stream: TcpStream) -> Self {
        Self { stream, pending: Vec::new(), overflowed: false }
    }

    fn read_line(&mut self, cap: usize, idle: Option<Duration>) -> std::io::Result<NetRead> {
        let mut last_activity = Instant::now();
        loop {
            // A buffered complete line answers without touching the socket.
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop(); // the newline
                if self.overflowed || line.len() > cap {
                    self.overflowed = false;
                    return Ok(NetRead::Oversized);
                }
                return finish_line(line).map(NetRead::Line);
            }
            if self.pending.len() > cap {
                // Partial line already over the cap: switch to draining.
                self.pending.clear();
                self.overflowed = true;
            }
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.overflowed {
                        self.overflowed = false;
                        return Ok(NetRead::Oversized);
                    }
                    if self.pending.is_empty() {
                        return Ok(NetRead::Eof);
                    }
                    // A final unterminated line still counts as a line.
                    let line = std::mem::take(&mut self.pending);
                    return finish_line(line).map(NetRead::Line);
                }
                Ok(n) => {
                    last_activity = Instant::now();
                    if self.overflowed {
                        // Drain until the newline; keep what follows it.
                        if let Some(pos) = chunk[..n].iter().position(|&b| b == b'\n') {
                            self.pending.extend_from_slice(&chunk[pos + 1..n]);
                            self.overflowed = false;
                            return Ok(NetRead::Oversized);
                        }
                    } else {
                        self.pending.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Read tick: poll shutdown, then the idle clock.
                    if shutdown_requested() {
                        return Ok(NetRead::Shutdown);
                    }
                    if let Some(limit) = idle {
                        if last_activity.elapsed() >= limit {
                            return Ok(NetRead::IdleTimeout);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    if shutdown_requested() {
                        return Ok(NetRead::Shutdown);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Query;
    use ses_core::model::running_example;

    fn manager() -> SessionManager {
        SessionManager::new(running_example(), Threads::sequential(), None, 1024, 8)
            .expect("boot")
            .0
    }

    #[test]
    fn boot_opens_the_default_session() {
        let (m, boots) = SessionManager::new(running_example(), Threads::sequential(), None, 8, 8)
            .expect("boot");
        assert_eq!(boots.len(), 1);
        assert_eq!(boots[0].session, DEFAULT_SESSION);
        assert!(!boots[0].durable);
        assert_eq!(m.len(), 1);
        assert!(m.resolve(DEFAULT_SESSION).is_ok());
    }

    #[test]
    fn open_is_idempotent_and_capped() {
        let m = manager();
        assert!(!m.open("a").expect("open a").recovered);
        assert!(!m.open("a").expect("reopen a").recovered);
        assert_eq!(m.len(), 2);
        for i in 0..6 {
            m.open(&format!("cap{i}")).expect("fill");
        }
        let err = m.open("one-too-many").unwrap_err();
        assert_eq!(err.code(), "invalid-argument");
        assert!(err.to_string().contains("--max-sessions"), "{err}");
    }

    #[test]
    fn names_are_validated() {
        for bad in ["", "../escape", "a/b", "dot.dot", "x y", &"n".repeat(65)] {
            assert!(validate_session_name(bad).is_err(), "{bad:?}");
        }
        for good in ["a", "A-1_b", &"n".repeat(64)] {
            assert!(validate_session_name(good).is_ok(), "{good:?}");
        }
    }

    #[test]
    fn unknown_sessions_answer_the_typed_error() {
        let m = manager();
        let resp = m.handle_routed(Some("ghost"), &Request::Snapshot);
        let Response::Error { code, message } = resp else { panic!("expected error") };
        assert_eq!(code, "unknown-session");
        assert!(message.contains("ghost"), "{message}");
        assert!(m.close("ghost").is_err());
    }

    #[test]
    fn routing_defaults_to_the_default_session() {
        let m = manager();
        let a = m.handle_routed(None, &Request::Snapshot);
        let b = m.handle_routed(Some(DEFAULT_SESSION), &Request::Snapshot);
        assert_eq!(a, b);
    }

    #[test]
    fn sessions_are_isolated() {
        let m = manager();
        m.open("a").expect("open a");
        m.open("b").expect("open b");
        let mutate = Request::Schedule {
            algorithm: "INC".into(),
            k: 2,
            threads: None,
            gate: false,
            profile: false,
            constraints: None,
        };
        let before_b = m.handle_routed(Some("b"), &Request::Snapshot);
        m.handle_routed(Some("a"), &mutate);
        // B's state is untouched by A's mutation.
        assert_eq!(m.handle_routed(Some("b"), &Request::Snapshot), before_b);
        let list = m.list();
        assert_eq!(
            list.iter().map(|s| s.session.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", DEFAULT_SESSION],
        );
    }

    #[test]
    fn close_then_reuse_errors_until_reopen() {
        let m = manager();
        m.open("tmp").expect("open");
        m.close("tmp").expect("close");
        let resp = m.handle_routed(Some("tmp"), &Request::Snapshot);
        assert!(matches!(resp, Response::Error { ref code, .. } if code == "unknown-session"));
        m.open("tmp").expect("reopen");
        assert!(matches!(m.handle_routed(Some("tmp"), &Request::Snapshot), Response::State { .. }));
    }

    #[test]
    fn published_view_answers_match_the_live_service() {
        let m = manager();
        let session = m.resolve(DEFAULT_SESSION).expect("resolve");
        let mutate = Request::Schedule {
            algorithm: "HOR".into(),
            k: 3,
            threads: None,
            gate: false,
            profile: false,
            constraints: None,
        };
        session.handle(&mutate);
        // The published view and a fresh serialized answer agree bit-for-bit.
        let q = Request::Query { query: Query::Event { event: 0 } };
        let via_view = session.view().answer(&q);
        let via_session = session.handle(&q);
        assert_eq!(wire::encode_response(&via_view), wire::encode_response(&via_session));
        let snap_view = session.view().answer(&Request::Snapshot);
        let snap_live = session.handle(&Request::Snapshot);
        assert_eq!(wire::encode_response(&snap_view), wire::encode_response(&snap_live));
    }

    #[test]
    fn handle_line_routes_sessions_and_hides_them_in_responses() {
        let m = manager();
        m.open("x").expect("open");
        let line = wire::encode_request_for("x", &Request::Snapshot);
        let resp = m.handle_line(&line);
        assert!(!resp.contains("session"), "{resp}");
        // Identical to what the default session would answer (same template).
        assert_eq!(resp, m.handle_line(&wire::encode_request(&Request::Snapshot)));
    }

    #[test]
    fn control_requests_route_through_handle_line() {
        let m = manager();
        let open = wire::encode_request(&Request::OpenSession { session: "wired".into() });
        let resp = m.handle_line(&open);
        assert!(resp.contains("SessionOpened"), "{resp}");
        assert!(resp.contains("\"durable\":false"), "{resp}");
        let list = m.handle_line(&wire::encode_request(&Request::ListSessions));
        assert!(list.contains("wired"), "{list}");
        let close = wire::encode_request(&Request::CloseSession { session: "wired".into() });
        assert!(m.handle_line(&close).contains("SessionClosed"));
    }

    #[test]
    fn durable_sessions_live_under_named_subdirs_and_recover() {
        let dir = std::env::temp_dir().join(format!("ses-net-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (m, boots) = SessionManager::new(
                running_example(),
                Threads::sequential(),
                Some(dir.clone()),
                4,
                8,
            )
            .expect("boot");
            assert!(boots.iter().all(|b| b.durable && !b.recovered));
            m.open("alpha").expect("open alpha");
            let mutate = Request::Schedule {
                algorithm: "INC".into(),
                k: 2,
                threads: None,
                gate: false,
                profile: false,
                constraints: None,
            };
            assert!(matches!(m.handle_routed(Some("alpha"), &mutate), Response::Scheduled { .. }));
            assert!(dir.join("alpha").is_dir());
            assert!(dir.join(DEFAULT_SESSION).is_dir());
        }
        // A new manager over the same dir recovers both sessions at boot.
        let (m, boots) =
            SessionManager::new(running_example(), Threads::sequential(), Some(dir.clone()), 4, 8)
                .expect("reboot");
        assert_eq!(boots.len(), 2);
        assert!(boots.iter().all(|b| b.durable && b.recovered));
        let names: Vec<_> = m.list().into_iter().map(|s| s.session).collect();
        assert_eq!(names, vec!["alpha", DEFAULT_SESSION]);
        m.sync_all().expect("sync");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capped_line_reader_matches_the_stdio_contract() {
        let data = b"short\nway too long for the cap\nafter\n";
        let mut r = std::io::BufReader::new(&data[..]);
        assert!(matches!(read_capped_line(&mut r, 10).unwrap(), LineRead::Line(l) if l == "short"));
        assert!(matches!(read_capped_line(&mut r, 10).unwrap(), LineRead::Oversized));
        assert!(matches!(read_capped_line(&mut r, 10).unwrap(), LineRead::Line(l) if l == "after"));
        assert!(matches!(read_capped_line(&mut r, 10).unwrap(), LineRead::Eof));
    }
}
