//! The scheduler registry: one canonical name → boxed-scheduler table.
//!
//! Before the service existed, the CLI, the experiment harness, and the
//! test suites each kept their own ad-hoc `match`/array tables mapping
//! scheduler names to constructors. [`SchedulerRegistry`] replaces them:
//! it owns one boxed instance of every registered scheduler, resolves
//! (aliased, case-insensitive) names through the single parser
//! ([`SchedulerKind::parse`]), and runs entries through the same
//! [`Scheduler::run_configured`] path every caller uses — so a result
//! obtained via the registry is bit-identical to one obtained by calling
//! the concrete scheduler directly.

use crate::common::{RunConfig, ScheduleResult, Scheduler, Scratch};
use crate::SchedulerKind;
use ses_core::error::ServiceError;
use ses_core::model::Instance;
use std::fmt;

/// Boxes the concrete scheduler behind a [`SchedulerKind`] tag.
fn boxed(kind: SchedulerKind) -> Box<dyn Scheduler + Send + Sync> {
    match kind {
        SchedulerKind::Alg => Box::new(crate::alg::Alg),
        SchedulerKind::Inc => Box::new(crate::inc::Inc),
        SchedulerKind::Hor => Box::new(crate::hor::Hor),
        SchedulerKind::HorI => Box::new(crate::hor_i::HorI),
        SchedulerKind::Top => Box::new(crate::top::Top),
        SchedulerKind::Rand(seed) => Box::new(crate::random::Rand::with_seed(seed)),
        SchedulerKind::Exact => Box::new(crate::exact::Exact),
        SchedulerKind::Lazy => Box::new(crate::lazy::LazyGreedy),
        SchedulerKind::RefinedHor => Box::new(crate::refine::Refined::new(crate::hor::Hor)),
    }
}

/// One registered scheduler: its kind tag, canonical display name, and the
/// boxed implementation (constructed once, reused for every run).
struct RegistryEntry {
    kind: SchedulerKind,
    name: &'static str,
    scheduler: Box<dyn Scheduler + Send + Sync>,
}

/// Name → boxed-scheduler registry (see the module docs).
///
/// Entries are addressed by index so callers (notably [`SesService`],
/// which keeps one warm [`Scratch`] per entry) can attach per-scheduler
/// state without re-resolving names.
///
/// [`SesService`]: crate::service::SesService
pub struct SchedulerRegistry {
    entries: Vec<RegistryEntry>,
}

impl SchedulerRegistry {
    /// The full standard registry: every [`SchedulerKind`], with `RAND`
    /// seeded 0 (the seed [`SchedulerKind::parse`] assigns).
    pub fn standard() -> Self {
        Self::from_kinds([
            SchedulerKind::Alg,
            SchedulerKind::Inc,
            SchedulerKind::Hor,
            SchedulerKind::HorI,
            SchedulerKind::Top,
            SchedulerKind::Rand(0),
            SchedulerKind::Exact,
            SchedulerKind::Lazy,
            SchedulerKind::RefinedHor,
        ])
    }

    /// A registry over an explicit kind list (order is preserved and
    /// becomes the entry indexing).
    pub fn from_kinds(kinds: impl IntoIterator<Item = SchedulerKind>) -> Self {
        let entries = kinds
            .into_iter()
            .map(|kind| RegistryEntry { kind, name: kind.name(), scheduler: boxed(kind) })
            .collect();
        Self { entries }
    }

    /// Number of registered schedulers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The canonical display names, in entry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// The registered kinds, in entry order.
    pub fn kinds(&self) -> Vec<SchedulerKind> {
        self.entries.iter().map(|e| e.kind).collect()
    }

    /// The kind tag of entry `idx`.
    pub fn kind(&self, idx: usize) -> SchedulerKind {
        self.entries[idx].kind
    }

    /// The canonical display name of entry `idx`.
    pub fn name(&self, idx: usize) -> &'static str {
        self.entries[idx].name
    }

    /// Resolves a (case-insensitive, alias-tolerant) scheduler name to an
    /// entry index.
    ///
    /// # Errors
    /// [`ServiceError::UnknownAlgorithm`] carrying the canonical names this
    /// registry does know.
    pub fn resolve(&self, name: &str) -> Result<usize, ServiceError> {
        SchedulerKind::parse(name).and_then(|kind| self.resolve_kind(kind)).ok_or_else(|| {
            ServiceError::UnknownAlgorithm { name: name.to_string(), known: self.names() }
        })
    }

    /// The entry index of an exact kind (including `Rand`'s seed), if
    /// registered.
    pub fn resolve_kind(&self, kind: SchedulerKind) -> Option<usize> {
        self.entries.iter().position(|e| e.kind == kind)
    }

    /// Direct trait-object access to a registered scheduler by name.
    pub fn get(&self, name: &str) -> Option<&(dyn Scheduler + Send + Sync)> {
        let idx = self.resolve(name).ok()?;
        Some(self.entries[idx].scheduler.as_ref())
    }

    /// Runs entry `idx` with full configuration control. Identical to
    /// calling the concrete scheduler's `run_configured` — same schedule,
    /// utility bits, and [`Stats`] — except the result's `algorithm` label
    /// is normalized to the entry's canonical name (`HOR+LS` rather than
    /// the `Refined` wrapper's internal `REFINED`).
    ///
    /// [`Stats`]: ses_core::stats::Stats
    pub fn run(
        &self,
        idx: usize,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        scratch: &mut Scratch,
    ) -> ScheduleResult {
        let entry = &self.entries[idx];
        let mut res = entry.scheduler.run_configured(inst, k, cfg, scratch);
        res.algorithm = entry.name;
        res
    }

    /// Entry indices of the paper's six-method evaluation lineup (§4.1),
    /// in plot order — the subset the CLI and harness default to.
    pub fn paper_indices(&self) -> Vec<usize> {
        SchedulerKind::paper_lineup().iter().filter_map(|k| self.resolve_kind(*k)).collect()
    }
}

impl Default for SchedulerRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl fmt::Debug for SchedulerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedulerRegistry").field("names", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::model::running_example;
    use ses_core::parallel::Threads;

    #[test]
    fn standard_registry_covers_every_kind() {
        let reg = SchedulerRegistry::standard();
        assert_eq!(reg.len(), 9);
        assert_eq!(
            reg.names(),
            vec!["ALG", "INC", "HOR", "HOR-I", "TOP", "RAND", "EXACT", "LAZY", "HOR+LS"]
        );
    }

    #[test]
    fn resolve_accepts_aliases_and_rejects_unknowns() {
        let reg = SchedulerRegistry::standard();
        assert_eq!(reg.name(reg.resolve("hor-i").unwrap()), "HOR-I");
        assert_eq!(reg.name(reg.resolve("hori").unwrap()), "HOR-I");
        assert_eq!(reg.name(reg.resolve("random").unwrap()), "RAND");
        assert_eq!(reg.name(reg.resolve("refined").unwrap()), "HOR+LS");
        let err = reg.resolve("bogus").unwrap_err();
        match &err {
            ServiceError::UnknownAlgorithm { name, known } => {
                assert_eq!(name, "bogus");
                assert!(known.contains(&"INC"));
            }
            other => panic!("wrong error {other:?}"),
        }
        assert!(err.is_usage());
    }

    /// The registry path must be bit-identical to the direct
    /// `SchedulerKind::run_configured` path for every registered entry.
    #[test]
    fn registry_runs_match_direct_runs() {
        let reg = SchedulerRegistry::standard();
        let inst = running_example();
        let cfg = RunConfig::threaded(Threads::sequential());
        for idx in 0..reg.len() {
            let mut scratch = Scratch::new();
            let via_registry = reg.run(idx, &inst, 3, cfg, &mut scratch);
            let direct = reg.kind(idx).run_configured(&inst, 3, cfg, &mut Scratch::new());
            assert_eq!(via_registry.algorithm, direct.algorithm);
            assert_eq!(via_registry.schedule.assignments(), direct.schedule.assignments());
            assert_eq!(via_registry.utility.to_bits(), direct.utility.to_bits());
            assert_eq!(via_registry.stats, direct.stats);
        }
    }

    #[test]
    fn paper_indices_follow_plot_order() {
        let reg = SchedulerRegistry::standard();
        let names: Vec<&str> = reg.paper_indices().into_iter().map(|i| reg.name(i)).collect();
        assert_eq!(names, vec!["ALG", "INC", "HOR", "HOR-I", "TOP", "RAND"]);
    }

    #[test]
    fn boxed_access_by_name() {
        let reg = SchedulerRegistry::standard();
        assert_eq!(reg.get("inc").unwrap().name(), "INC");
        assert!(reg.get("nope").is_none());
    }
}
