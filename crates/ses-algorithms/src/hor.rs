//! `HOR` — the Horizontal Assignment algorithm (§3.3, Algorithm 2).
//!
//! HOR trades exactness of the greedy order for far fewer score updates via
//! the **horizontal selection policy**: selections proceed in *rounds*, and
//! within a round at most one assignment is made per interval (the top one).
//! Because a round never places two events in the same interval, no score
//! changes mid-round — all recomputation is deferred to the next round's
//! start, where the scores of all surviving `(event, interval)` pairs are
//! rebuilt from scratch.
//!
//! Consequences analyzed in the paper:
//! * when `k ≤ |T|` there is exactly one round and **zero** updates — HOR
//!   performs the bare minimum `|E|·|T|` score computations (Prop. 4);
//! * the worst case w.r.t. `k, |T|` is `k > |T|` with `k mod |T| = 1`
//!   (Prop. 5): the last round pays for `|T|` selections but uses one;
//! * HOR may deviate from ALG's schedule (it ignores that some intervals
//!   deserve more events than others), but in >70% of the paper's runs the
//!   utility is identical and the observed gap averages 0.008%.

use crate::common::{
    better, max_duration, stale_window, timed_result, Cand, RunConfig, ScheduleResult, Scheduler,
    Scratch,
};
use ses_core::model::Instance;
use ses_core::parallel::par_chunks_mut;
use ses_core::schedule::Schedule;
use ses_core::scoring::{EngineProfile, ScoringEngine};
use ses_core::stats::Stats;
use ses_core::{EventId, IntervalId};
use std::time::Instant;

/// The Horizontal Assignment algorithm (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hor;

impl Scheduler for Hor {
    fn name(&self) -> &'static str {
        "HOR"
    }

    fn run_configured(
        &self,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        scratch: &mut Scratch,
    ) -> ScheduleResult {
        timed_result(self.name(), inst, k, || run_hor(inst, k, cfg, scratch))
    }
}

/// Sorts one interval's candidate list into HOR's canonical order
/// (descending score, ties by ascending event id).
fn sort_list(list: &mut [(f64, EventId)]) {
    list.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores").then(a.1.cmp(&b.1)));
}

fn run_hor(
    inst: &Instance,
    k: usize,
    cfg: RunConfig,
    scratch: &mut Scratch,
) -> (Schedule, Stats, Option<EngineProfile>) {
    let threads = cfg.threads;
    let num_events = inst.num_events();
    let num_intervals = inst.num_intervals();
    let mut engine = ScoringEngine::with_threads(inst, threads);
    if cfg.profile {
        engine.enable_profiling();
    }
    let mut schedule = Schedule::new(inst);
    let max_dur = max_duration(inst);
    let mut first_round = true;

    while schedule.len() < k {
        // Round start: rebuild per-interval lists of valid assignments with
        // fresh scores (Algorithm 2 lines 3–8); the row buffers come from
        // the scratch, so rounds past the first allocate nothing.
        let (lists, cursor, m) = scratch.reset_rows(num_intervals);
        if first_round && !threads.is_sequential() && num_intervals >= 2 {
            // Parallel candidate generation for the score-all first round:
            // intervals are independent on the empty schedule, so each list
            // is built and sorted on its own chunk via the stat-free
            // `peek_score` (bit-identical to `assignment_score`); the Stats
            // bookkeeping is replayed afterwards. Selection still merges
            // through the canonical `Cand` order, so nothing downstream can
            // tell the rounds apart.
            let gen_start = Instant::now();
            {
                let eng = &engine;
                let sched = &schedule;
                par_chunks_mut(threads, lists, 1, |t, slot| {
                    let interval = IntervalId::new(t);
                    let list = &mut slot[0];
                    for e in 0..num_events {
                        let event = EventId::new(e);
                        if sched.is_scheduled(event)
                            || !sched.is_valid_assignment(inst, event, interval)
                        {
                            continue;
                        }
                        list.push((eng.peek_score(event, interval), event));
                    }
                    sort_list(list);
                });
            }
            let gen_ns = gen_start.elapsed().as_nanos() as u64;
            let mut generated = 0u64;
            for list in lists.iter() {
                for &(_, event) in list {
                    let cost = engine.score_cost(event);
                    engine.stats_mut().record_score(cost);
                    generated += 1;
                }
            }
            engine.add_scoring_time(gen_ns, generated);
        } else {
            #[allow(clippy::needless_range_loop)] // t indexes lists *and* names the interval
            for t in 0..num_intervals {
                let interval = IntervalId::new(t);
                for e in 0..num_events {
                    let event = EventId::new(e);
                    if schedule.is_scheduled(event)
                        || !schedule.is_valid_assignment(inst, event, interval)
                    {
                        continue;
                    }
                    let score = if first_round {
                        engine.assignment_score(event, interval)
                    } else {
                        engine.assignment_score_update(event, interval)
                    };
                    lists[t].push((score, event));
                }
                sort_list(&mut lists[t]);
            }
        }
        first_round = false;

        // M: per interval, the best not-yet-consumed entry; `cursor[t]`
        // points at the next fallback within lists[t].
        for t in 0..num_intervals {
            m[t] = lists[t].first().map(|&(s, e)| Cand::new(s, IntervalId::new(t), e));
            cursor[t] = 1;
        }

        // Selection phase (Algorithm 2 lines 9–14).
        let selected_before = schedule.len();
        loop {
            if schedule.len() >= k {
                break;
            }
            let mut top: Option<Cand> = None;
            for cand in m.iter().flatten() {
                engine.stats_mut().record_examined(1);
                top = better(top, Some(*cand));
            }
            let Some(top) = top else { break };
            let tp = top.interval.index();
            // For the paper's duration-1 model only event reuse can break a
            // round-start validity check; spanning events can additionally
            // collide with occupants placed later in the round, so the full
            // check is repeated here.
            if schedule.is_valid_assignment(inst, top.event, top.interval) {
                schedule.assign(inst, top.event, top.interval).expect("just validated");
                engine.apply(top.event, top.interval);
                // The whole stale window is done for this round: its
                // precomputed scores are void (a no-op beyond m[tp] in the
                // paper's duration-1 model).
                for ti in stale_window(inst, max_dur, top.event, top.interval) {
                    m[ti] = None;
                }
            } else {
                // The event was claimed by another interval this round:
                // fall back to the interval's next free entry (line 14).
                m[tp] = next_free(
                    inst,
                    &lists[tp],
                    &mut cursor[tp],
                    &schedule,
                    top.interval,
                    &mut engine,
                );
            }
        }

        if schedule.len() == selected_before {
            break; // nothing assignable remains
        }
    }

    let stats = *engine.stats();
    let profile = engine.take_profile();
    (schedule, stats, profile)
}

/// Advances the cursor past entries that are no longer assignable (event
/// claimed by another interval, or — under the duration extension — a span
/// collision that arose mid-round) and returns the first valid one.
fn next_free(
    inst: &Instance,
    list: &[(f64, EventId)],
    cursor: &mut usize,
    schedule: &Schedule,
    interval: IntervalId,
    engine: &mut ScoringEngine<'_>,
) -> Option<Cand> {
    while *cursor < list.len() {
        let (score, event) = list[*cursor];
        *cursor += 1;
        engine.stats_mut().record_examined(1);
        if schedule.is_valid_assignment(inst, event, interval) {
            return Some(Cand::new(score, interval, event));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::Alg;
    use ses_core::model::running_example;
    use ses_core::Assignment;

    /// Example 4: HOR selects e4@t2 then e1@t1 (round 1), updates all
    /// surviving assignments (3 of them), then selects e2@t2 — same schedule
    /// as ALG/INC.
    #[test]
    fn running_example_trace_and_updates() {
        let inst = running_example();
        let res = Hor.run(&inst, 3);
        assert_eq!(
            res.schedule.assignments(),
            &[
                Assignment::new(EventId::new(3), IntervalId::new(1)),
                Assignment::new(EventId::new(0), IntervalId::new(0)),
                Assignment::new(EventId::new(1), IntervalId::new(1)),
            ]
        );
        // Round 2 rescores: free events {e2, e3} × feasible intervals.
        // e2 is location-blocked at t1, so candidates are e2@t2, e3@t1, e3@t2.
        assert_eq!(res.stats.score_updates, 3, "Example 4: HOR performs three updates");
        assert_eq!(res.stats.score_computations, 11); // 8 initial + 3
    }

    #[test]
    fn same_utility_as_alg_on_running_example() {
        let inst = running_example();
        for k in 0..=4 {
            let a = Alg.run(&inst, k);
            let h = Hor.run(&inst, k);
            assert!(
                (a.utility - h.utility).abs() < 1e-12,
                "k = {k}: ALG {} vs HOR {}",
                a.utility,
                h.utility
            );
        }
    }

    /// Proposition 4's easy half: with k ≤ |T| HOR performs zero updates.
    #[test]
    fn no_updates_when_k_at_most_intervals() {
        let inst = running_example();
        let res = Hor.run(&inst, 2);
        assert_eq!(res.stats.score_updates, 0);
        assert_eq!(res.stats.score_computations, 8);
        assert_eq!(res.schedule.len(), 2);
    }

    #[test]
    fn horizontal_policy_spreads_events() {
        let inst = running_example();
        // k = 2 must put one event in each interval (one per interval per round).
        let res = Hor.run(&inst, 2);
        assert_eq!(res.schedule.events_at(IntervalId::new(0)).len(), 1);
        assert_eq!(res.schedule.events_at(IntervalId::new(1)).len(), 1);
    }

    #[test]
    fn saturation_is_feasible() {
        let inst = running_example();
        let res = Hor.run(&inst, 99);
        assert_eq!(res.schedule.len(), 4);
        assert!(res.schedule.verify_feasible(&inst).is_ok());
    }
}
