//! Shared scaffolding for all SES schedulers: the [`Scheduler`] trait, the
//! [`ScheduleResult`] record, candidate ordering, and per-interval candidate
//! lists.

use serde::{Deserialize, Serialize};
use ses_core::model::Instance;
use ses_core::parallel::Threads;
use ses_core::schedule::Schedule;
use ses_core::scoring::utility::total_utility;
use ses_core::stats::Stats;
use ses_core::{EventId, IntervalId};
use std::time::{Duration, Instant};

/// Everything a scheduling run produces: the schedule, its exact utility
/// Ω(S) (recomputed from scratch by the independent evaluator), the
/// instrumentation counters, and the wall-clock duration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Which algorithm produced this result.
    pub algorithm: String,
    /// The requested number of assignments `k`.
    pub k: usize,
    /// The feasible schedule found (`|S| ≤ k`; `< k` only when the instance
    /// cannot feasibly host `k` events).
    pub schedule: Schedule,
    /// Total utility Ω(S) per Eq. 3, from the independent evaluator.
    pub utility: f64,
    /// Instrumentation counters (score computations, user ops, examined).
    pub stats: Stats,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// A scheduling algorithm for the SES problem.
pub trait Scheduler {
    /// Short display name ("ALG", "INC", …) matching the paper.
    fn name(&self) -> &'static str;

    /// Computes a feasible schedule of (up to) `k` assignments with the
    /// ambient thread resolution ([`Threads::from_env`]: sequential unless
    /// `SES_THREADS` is set).
    fn run(&self, inst: &Instance, k: usize) -> ScheduleResult {
        self.run_threaded(inst, k, Threads::default())
    }

    /// Same computation with an explicit worker-thread count. Every
    /// implementation is **bit-identical** across thread counts — same
    /// schedule, same utility bits, same [`Stats`] — which
    /// `tests/parallel_equivalence.rs` enforces differentially.
    fn run_threaded(&self, inst: &Instance, k: usize, threads: Threads) -> ScheduleResult;
}

/// Helper used by every implementation: times `f`, evaluates the utility of
/// the returned schedule with the independent evaluator, and packs a
/// [`ScheduleResult`].
pub(crate) fn timed_result(
    name: &'static str,
    inst: &Instance,
    k: usize,
    f: impl FnOnce() -> (Schedule, Stats),
) -> ScheduleResult {
    let start = Instant::now();
    let (schedule, stats) = f();
    let elapsed = start.elapsed();
    let utility = total_utility(inst, &schedule);
    ScheduleResult { algorithm: name.to_string(), k, schedule, utility, stats, elapsed }
}

/// A candidate assignment with its (possibly stale) score, ordered by the
/// canonical tie-break used by **every** algorithm in this crate: larger
/// score first, then smaller interval id, then smaller event id.
///
/// A single deterministic order is what makes Proposition 3 (INC ≡ ALG) and
/// Proposition 6 (HOR-I ≡ HOR) hold as *exact schedule equality*, testable
/// without tolerance fudging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cand {
    /// Assignment score (Eq. 4) — current or an upper bound, per context.
    pub score: f64,
    /// Interval of the assignment.
    pub interval: IntervalId,
    /// Event of the assignment.
    pub event: EventId,
}

impl Cand {
    /// Creates a candidate.
    #[inline]
    pub fn new(score: f64, interval: IntervalId, event: EventId) -> Self {
        Self { score, interval, event }
    }

    /// Canonical strict ordering (see type docs).
    #[inline]
    pub fn beats(&self, other: &Cand) -> bool {
        if self.score != other.score {
            return self.score > other.score;
        }
        (self.interval, self.event) < (other.interval, other.event)
    }
}

/// Returns the better of two optional candidates under [`Cand::beats`]
/// (the paper's `getBetterAssgn`).
#[inline]
pub fn better(a: Option<Cand>, b: Option<Cand>) -> Option<Cand> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.beats(&y) { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// The largest event duration in the instance (1 in the paper's model).
pub(crate) fn max_duration(inst: &Instance) -> usize {
    inst.events.iter().map(|e| e.duration as usize).max().unwrap_or(1)
}

/// The window of *starting* intervals whose assignments may have gone stale
/// after placing `event` at `t`: any assignment whose own span intersects
/// the placed span. With the paper's duration-1 model this is exactly `{t}`.
pub(crate) fn stale_window(
    inst: &Instance,
    max_dur: usize,
    event: EventId,
    t: IntervalId,
) -> std::ops::Range<usize> {
    let span_end = t.index() + inst.events[event.index()].duration as usize;
    let lo = (t.index() + 1).saturating_sub(max_dur);
    lo..span_end.min(inst.num_intervals())
}

/// Selects the best candidate from an iterator under the canonical order.
pub fn best_candidate(iter: impl Iterator<Item = Cand>) -> Option<Cand> {
    let mut best: Option<Cand> = None;
    for c in iter {
        best = better(best, Some(c));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(score: f64, t: usize, e: usize) -> Cand {
        Cand::new(score, IntervalId::new(t), EventId::new(e))
    }

    #[test]
    fn higher_score_wins() {
        assert!(c(0.9, 5, 5).beats(&c(0.8, 0, 0)));
        assert!(!c(0.8, 0, 0).beats(&c(0.9, 5, 5)));
    }

    #[test]
    fn ties_break_on_interval_then_event() {
        assert!(c(0.5, 0, 9).beats(&c(0.5, 1, 0)));
        assert!(c(0.5, 1, 0).beats(&c(0.5, 1, 1)));
        assert!(!c(0.5, 1, 1).beats(&c(0.5, 1, 0)));
    }

    #[test]
    fn better_handles_none() {
        assert_eq!(better(None, None), None);
        let x = c(0.5, 0, 0);
        assert_eq!(better(Some(x), None), Some(x));
        assert_eq!(better(None, Some(x)), Some(x));
    }

    #[test]
    fn best_candidate_is_deterministic() {
        let cands = vec![c(0.5, 1, 0), c(0.5, 0, 2), c(0.4, 0, 0), c(0.5, 0, 1)];
        // 0.5 ties: interval 0 beats 1; event 1 beats 2.
        assert_eq!(best_candidate(cands.into_iter()), Some(c(0.5, 0, 1)));
    }

    #[test]
    fn beats_is_asymmetric_for_distinct() {
        let a = c(0.3, 0, 0);
        let b = c(0.3, 0, 1);
        assert!(a.beats(&b) ^ b.beats(&a));
        // A candidate never beats itself.
        assert!(!a.beats(&a));
    }
}
