//! Shared scaffolding for all SES schedulers: the [`Scheduler`] trait, the
//! [`ScheduleResult`] record, per-run execution options ([`RunConfig`]),
//! the reusable allocation pool ([`Scratch`]), candidate ordering, and
//! per-interval candidate lists.

use serde::{Deserialize, Serialize};
use ses_core::model::Instance;
use ses_core::parallel::Threads;
use ses_core::schedule::Schedule;
use ses_core::scoring::utility::total_utility;
use ses_core::scoring::EngineProfile;
use ses_core::stats::Stats;
use ses_core::{EventId, IntervalId};
use std::time::{Duration, Instant};

/// Everything a scheduling run produces: the schedule, its exact utility
/// Ω(S) (recomputed from scratch by the independent evaluator), the
/// instrumentation counters, and the wall-clock duration.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Which algorithm produced this result (a canonical name from
    /// [`known_algorithm_names`] — `&'static str` so packing a result
    /// allocates nothing for the label).
    pub algorithm: &'static str,
    /// The requested number of assignments `k`.
    pub k: usize,
    /// The feasible schedule found (`|S| ≤ k`; `< k` only when the instance
    /// cannot feasibly host `k` events).
    pub schedule: Schedule,
    /// Total utility Ω(S) per Eq. 3, from the independent evaluator.
    pub utility: f64,
    /// Instrumentation counters (score computations, user ops, examined).
    pub stats: Stats,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-phase engine timing, when the run opted into
    /// [`RunConfig::profile`].
    pub profile: Option<EngineProfile>,
}

/// Every canonical display name a [`ScheduleResult`] can carry — the
/// closed set deserialization resolves against so the field can stay a
/// `&'static str`.
pub fn known_algorithm_names() -> &'static [&'static str] {
    &["ALG", "INC", "HOR", "HOR-I", "TOP", "RAND", "EXACT", "LAZY", "HOR+LS", "REFINED", "PROFIT"]
}

/// Resolves a serialized algorithm label back to its canonical
/// `&'static str` (exact match only — aliases are a parsing concern, see
/// [`SchedulerKind::parse`](crate::SchedulerKind::parse)).
pub fn static_algorithm_name(name: &str) -> Option<&'static str> {
    known_algorithm_names().iter().find(|&&n| n == name).copied()
}

// Hand-written (de)serialization: the derive cannot produce a
// `&'static str` field, so `algorithm` round-trips through the
// [`static_algorithm_name`] table instead. The value layout matches what
// the derive emitted when the field was a `String`, so previously
// serialized results still load.
impl Serialize for ScheduleResult {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("algorithm".to_string(), self.algorithm.to_value()),
            ("k".to_string(), self.k.to_value()),
            ("schedule".to_string(), self.schedule.to_value()),
            ("utility".to_string(), self.utility.to_value()),
            ("stats".to_string(), self.stats.to_value()),
            ("elapsed".to_string(), self.elapsed.to_value()),
            ("profile".to_string(), self.profile.to_value()),
        ])
    }
}

impl Deserialize for ScheduleResult {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj =
            v.as_object().ok_or_else(|| serde::Error::expected("object", "ScheduleResult"))?;
        fn field<'a>(
            obj: &'a [(String, serde::Value)],
            name: &str,
        ) -> Result<&'a serde::Value, serde::Error> {
            serde::__get(obj, name)
                .ok_or_else(|| serde::Error::missing_field(name, "ScheduleResult"))
        }
        let label = String::from_value(field(obj, "algorithm")?)?;
        let algorithm = static_algorithm_name(&label)
            .ok_or_else(|| serde::Error::unknown_variant(&label, "algorithm name"))?;
        Ok(Self {
            algorithm,
            k: usize::from_value(field(obj, "k")?)?,
            schedule: Schedule::from_value(field(obj, "schedule")?)?,
            utility: f64::from_value(field(obj, "utility")?)?,
            stats: Stats::from_value(field(obj, "stats")?)?,
            elapsed: Duration::from_value(field(obj, "elapsed")?)?,
            profile: match serde::__get(obj, "profile") {
                None => None,
                Some(p) => Option::<EngineProfile>::from_value(p)?,
            },
        })
    }
}

/// Per-run execution options, threaded from the CLI / harness down to the
/// engine. `Copy` so schedulers pass it freely.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Worker threads (bit-identical results for every count).
    pub threads: Threads,
    /// Opt-in bound-first gate: before refreshing a stale candidate,
    /// consult the engine's O(duration) separable upper bound and skip the
    /// full user sweep when it cannot beat the current Φ. **Never changes
    /// the schedule or utility** (the gate is selection-neutral; see
    /// DESIGN.md §9) — only the work counters, which is why it is opt-in:
    /// the default keeps `Stats` comparable with the paper's accounting and
    /// the committed golden traces.
    pub bound_gate: bool,
    /// Opt-in per-phase (setup/score/apply) wall-clock attribution,
    /// surfaced as [`ScheduleResult::profile`] (`ses run --profile`).
    pub profile: bool,
}

impl RunConfig {
    /// Options for a plain run at the given thread count (gate and
    /// profiling off — the reference configuration every differential test
    /// pins).
    pub fn threaded(threads: Threads) -> Self {
        Self { threads, bound_gate: false, profile: false }
    }

    /// Toggles the bound-first gate.
    pub fn with_bound_gate(mut self, on: bool) -> Self {
        self.bound_gate = on;
        self
    }

    /// Toggles per-phase profiling.
    pub fn with_profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::threaded(Threads::default())
    }
}

/// A scheduling algorithm for the SES problem.
pub trait Scheduler {
    /// Short display name ("ALG", "INC", …) matching the paper.
    fn name(&self) -> &'static str;

    /// Computes a feasible schedule of (up to) `k` assignments with the
    /// ambient thread resolution ([`Threads::from_env`]: sequential unless
    /// `SES_THREADS` is set).
    fn run(&self, inst: &Instance, k: usize) -> ScheduleResult {
        self.run_threaded(inst, k, Threads::default())
    }

    /// Same computation with an explicit worker-thread count. Every
    /// implementation is **bit-identical** across thread counts — same
    /// schedule, same utility bits, same [`Stats`] — which
    /// `tests/parallel_equivalence.rs` enforces differentially.
    fn run_threaded(&self, inst: &Instance, k: usize, threads: Threads) -> ScheduleResult {
        self.run_configured(inst, k, RunConfig::threaded(threads), &mut Scratch::default())
    }

    /// Full-control entry point: explicit [`RunConfig`] plus a caller-owned
    /// [`Scratch`]. Re-running with the same scratch makes the scheduling
    /// loop allocation-free across runs (candidate tables, per-interval
    /// lists, and heaps are cleared and reused, never re-allocated) — the
    /// repeated-run mode of the stream scheduler, the sweep harness, and
    /// the benches.
    fn run_configured(
        &self,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        scratch: &mut Scratch,
    ) -> ScheduleResult;
}

/// Helper used by every implementation: times `f`, evaluates the utility of
/// the returned schedule with the independent evaluator, and packs a
/// [`ScheduleResult`].
pub(crate) fn timed_result(
    name: &'static str,
    inst: &Instance,
    k: usize,
    f: impl FnOnce() -> (Schedule, Stats, Option<EngineProfile>),
) -> ScheduleResult {
    let start = Instant::now();
    let (schedule, stats, profile) = f();
    let elapsed = start.elapsed();
    let utility = total_utility(inst, &schedule);
    ScheduleResult { algorithm: name, k, schedule, utility, stats, elapsed, profile }
}

/// One assignment of a per-interval candidate list: the shape INC, HOR-I,
/// and the stream repairer all walk (score current iff `updated`, otherwise
/// a monotonicity upper bound).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    /// The candidate event.
    pub event: EventId,
    /// Current score if `updated`, otherwise an upper bound (the score as
    /// of the last refresh).
    pub score: f64,
    /// Whether `score` is current.
    pub updated: bool,
}

/// A per-interval assignment list `L_i`, sorted descending by stored score
/// (ties: ascending event id — the canonical [`Cand`] order restricted to
/// one interval).
#[derive(Debug, Default)]
pub(crate) struct IntervalList {
    /// The (possibly stale) candidates of this interval.
    pub entries: Vec<Entry>,
    /// True iff every surviving entry is updated (lets update passes skip
    /// the interval without peeking).
    pub fully_updated: bool,
}

impl IntervalList {
    /// Restores the canonical descending-score order after refreshes.
    pub fn sort(&mut self) {
        self.entries.sort_unstable_by(|a, b| {
            b.score.partial_cmp(&a.score).expect("scores are finite").then(a.event.cmp(&b.event))
        });
    }

    /// The best stale bound of the interval (`None` when every entry is
    /// updated).
    pub fn front_stale_bound(&self) -> Option<f64> {
        self.entries.iter().find(|e| !e.updated).map(|e| e.score)
    }
}

/// A lazy-greedy heap entry: a candidate plus the epoch snapshot its score
/// was computed at. Max-heap order = the canonical [`Cand::beats`] order.
/// `FORCE_REFRESH` marks an entry whose stored score was *lowered to a
/// bound* by the gate — it must be refreshed before it can be selected.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeapEntry {
    /// The candidate (score possibly stale or bound-tightened).
    pub cand: Cand,
    /// Epoch the score was computed at; [`HeapEntry::FORCE_REFRESH`] forces
    /// a refresh on pop.
    pub epoch: u64,
}

impl HeapEntry {
    /// Sentinel epoch that can never equal a real span epoch.
    pub const FORCE_REFRESH: u64 = u64::MAX;
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cand == other.cand
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.cand.beats(&other.cand) {
            std::cmp::Ordering::Greater
        } else if other.cand.beats(&self.cand) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Equal
        }
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable allocation pool for the scheduling loops. All buffers are
/// cleared (capacity kept) by the per-run reset helpers, so a scratch
/// shared across runs makes every scheduler's main loop allocation-free
/// after its first run at a given instance shape. A scratch carries no
/// result state between runs — only capacity.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Per-interval candidate lists (INC / HOR-I / STREAM).
    pub(crate) lists: Vec<IntervalList>,
    /// Per-interval top-candidate table `M`.
    pub(crate) m: Vec<Option<Cand>>,
    /// Per-interval sorted `(score, event)` rows (HOR).
    pub(crate) rows: Vec<Vec<(f64, EventId)>>,
    /// HOR's per-interval fallback cursors.
    pub(crate) cursors: Vec<usize>,
    /// ALG's flat `|T|·|E|` score table.
    pub(crate) slots: Vec<Option<f64>>,
    /// LAZY's heap backing store.
    pub(crate) heap: Vec<HeapEntry>,
    /// Stale-interval visit order buffer (INC / STREAM).
    pub(crate) pending: Vec<(f64, usize)>,
    /// Per-interval virgin-span flags (STREAM's table write-back tracking).
    pub(crate) virgin: Vec<bool>,
}

/// Resets scratch `lists` and `m` buffers to `n` empty intervals, keeping
/// capacity. A free function so callers that destructure a [`Scratch`] into
/// disjoint field borrows can still use it.
pub(crate) fn reset_interval_lists(
    lists: &mut Vec<IntervalList>,
    m: &mut Vec<Option<Cand>>,
    n: usize,
) {
    lists.truncate(n);
    for list in lists.iter_mut() {
        list.entries.clear();
        list.fully_updated = false;
    }
    lists.resize_with(n, IntervalList::default);
    m.clear();
    m.resize(n, None);
}

/// HOR's per-round buffers, borrowed together from a [`Scratch`]:
/// `(rows, cursors, m)`.
pub(crate) type HorBuffers<'s> =
    (&'s mut Vec<Vec<(f64, EventId)>>, &'s mut Vec<usize>, &'s mut Vec<Option<Cand>>);

impl Scratch {
    /// A fresh, empty scratch (equivalent to `Default::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets HOR's row/cursor/`M` buffers to `n` intervals, keeping
    /// capacity.
    pub(crate) fn reset_rows(&mut self, n: usize) -> HorBuffers<'_> {
        self.rows.truncate(n);
        for row in &mut self.rows {
            row.clear();
        }
        self.rows.resize_with(n, Vec::new);
        self.cursors.clear();
        self.cursors.resize(n, 0);
        self.m.clear();
        self.m.resize(n, None);
        (&mut self.rows, &mut self.cursors, &mut self.m)
    }

    /// Resets ALG's flat score table to `len` dead slots, keeping capacity.
    pub(crate) fn reset_slots(&mut self, len: usize) -> &mut Vec<Option<f64>> {
        self.slots.clear();
        self.slots.resize(len, None);
        &mut self.slots
    }
}

/// A candidate assignment with its (possibly stale) score, ordered by the
/// canonical tie-break used by **every** algorithm in this crate: larger
/// score first, then smaller interval id, then smaller event id.
///
/// A single deterministic order is what makes Proposition 3 (INC ≡ ALG) and
/// Proposition 6 (HOR-I ≡ HOR) hold as *exact schedule equality*, testable
/// without tolerance fudging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cand {
    /// Assignment score (Eq. 4) — current or an upper bound, per context.
    pub score: f64,
    /// Interval of the assignment.
    pub interval: IntervalId,
    /// Event of the assignment.
    pub event: EventId,
}

impl Cand {
    /// Creates a candidate.
    #[inline]
    pub fn new(score: f64, interval: IntervalId, event: EventId) -> Self {
        Self { score, interval, event }
    }

    /// Canonical strict ordering (see type docs).
    #[inline]
    pub fn beats(&self, other: &Cand) -> bool {
        if self.score != other.score {
            return self.score > other.score;
        }
        (self.interval, self.event) < (other.interval, other.event)
    }
}

/// Returns the better of two optional candidates under [`Cand::beats`]
/// (the paper's `getBetterAssgn`).
#[inline]
pub fn better(a: Option<Cand>, b: Option<Cand>) -> Option<Cand> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.beats(&y) { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// The largest event duration in the instance (1 in the paper's model).
pub(crate) fn max_duration(inst: &Instance) -> usize {
    inst.events.iter().map(|e| e.duration as usize).max().unwrap_or(1)
}

/// The window of *starting* intervals whose assignments may have gone stale
/// after placing `event` at `t`: any assignment whose own span intersects
/// the placed span. With the paper's duration-1 model this is exactly `{t}`.
pub(crate) fn stale_window(
    inst: &Instance,
    max_dur: usize,
    event: EventId,
    t: IntervalId,
) -> std::ops::Range<usize> {
    let span_end = t.index() + inst.events[event.index()].duration as usize;
    let lo = (t.index() + 1).saturating_sub(max_dur);
    lo..span_end.min(inst.num_intervals())
}

/// Selects the best candidate from an iterator under the canonical order.
pub fn best_candidate(iter: impl Iterator<Item = Cand>) -> Option<Cand> {
    let mut best: Option<Cand> = None;
    for c in iter {
        best = better(best, Some(c));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(score: f64, t: usize, e: usize) -> Cand {
        Cand::new(score, IntervalId::new(t), EventId::new(e))
    }

    #[test]
    fn higher_score_wins() {
        assert!(c(0.9, 5, 5).beats(&c(0.8, 0, 0)));
        assert!(!c(0.8, 0, 0).beats(&c(0.9, 5, 5)));
    }

    #[test]
    fn ties_break_on_interval_then_event() {
        assert!(c(0.5, 0, 9).beats(&c(0.5, 1, 0)));
        assert!(c(0.5, 1, 0).beats(&c(0.5, 1, 1)));
        assert!(!c(0.5, 1, 1).beats(&c(0.5, 1, 0)));
    }

    #[test]
    fn better_handles_none() {
        assert_eq!(better(None, None), None);
        let x = c(0.5, 0, 0);
        assert_eq!(better(Some(x), None), Some(x));
        assert_eq!(better(None, Some(x)), Some(x));
    }

    #[test]
    fn best_candidate_is_deterministic() {
        let cands = vec![c(0.5, 1, 0), c(0.5, 0, 2), c(0.4, 0, 0), c(0.5, 0, 1)];
        // 0.5 ties: interval 0 beats 1; event 1 beats 2.
        assert_eq!(best_candidate(cands.into_iter()), Some(c(0.5, 0, 1)));
    }

    #[test]
    fn beats_is_asymmetric_for_distinct() {
        let a = c(0.3, 0, 0);
        let b = c(0.3, 0, 1);
        assert!(a.beats(&b) ^ b.beats(&a));
        // A candidate never beats itself.
        assert!(!a.beats(&a));
    }
}
