//! `INC` — the Incremental Updating algorithm (§3.2, Algorithm 1).
//!
//! INC makes the same greedy selections as [`Alg`](crate::alg::Alg)
//! (Proposition 3) while performing far fewer score computations, built on
//! two schemes:
//!
//! 1. **Incremental updating** (§3.2.1). After a selection, the scores of the
//!    selected interval's remaining assignments become *stale*. Because
//!    per-interval masses only grow, a stale score **upper-bounds** the
//!    refreshed score (the engine-level fact behind Proposition 1). With
//!    `Φ` = the score of the best *updated & valid* assignment, only stale
//!    assignments with stored score ≥ Φ can possibly be selected next
//!    (Corollary 1) — everything else keeps its stale score untouched.
//! 2. **Interval-organized assignments** (§3.2.2). Assignments live in
//!    per-interval lists kept sorted descending by stored score, plus a list
//!    `M` holding each interval's top updated & valid assignment. A
//!    partially-updated interval whose *front* stored score (the interval's
//!    best upper bound) is below Φ is skipped wholesale, and a walk inside an
//!    interval stops at the first entry below Φ.
//!
//! ### Divergence from the paper's pseudocode
//! Algorithm 1 line 18 gates interval access on `M[i].S ≤ Φ`, which is
//! vacuous (Φ is defined as `max_i M[i].S`). We implement the *intent* of
//! the §3.2.2 prose — "identify (and skip) the partially updated intervals
//! whose assignments are not going to be updated" — using the front stored
//! score as the interval's upper bound, which is both correct and effective.

use crate::common::{
    better, max_duration, stale_window, timed_result, Cand, Entry, IntervalList, RunConfig,
    ScheduleResult, Scheduler, Scratch,
};
use ses_core::model::Instance;
use ses_core::schedule::Schedule;
use ses_core::scoring::{EngineProfile, ScoringEngine};
use ses_core::stats::Stats;
use ses_core::{EventId, IntervalId};

/// The Incremental Updating algorithm (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Inc;

impl Scheduler for Inc {
    fn name(&self) -> &'static str {
        "INC"
    }

    fn run_configured(
        &self,
        inst: &Instance,
        k: usize,
        cfg: RunConfig,
        scratch: &mut Scratch,
    ) -> ScheduleResult {
        timed_result(self.name(), inst, k, || run_inc(inst, k, cfg, scratch))
    }
}

struct IncState<'a, 'b, 's> {
    inst: &'a Instance,
    engine: ScoringEngine<'b>,
    schedule: Schedule,
    lists: &'s mut Vec<IntervalList>,
    /// `M`: per interval, the top updated & valid assignment.
    m: &'s mut Vec<Option<Cand>>,
}

impl IncState<'_, '_, '_> {
    /// Re-derives `M[i]`: the first *updated and valid* entry in sorted
    /// order (= the interval's best updated score, since updated entries
    /// carry true scores). Invalid entries encountered on the way — e.g.
    /// events scheduled at other intervals in earlier rounds, left behind a
    /// walk's early break — are removed.
    fn refresh_m(&mut self, i: usize) {
        let interval = IntervalId::new(i);
        let mut found = None;
        let mut idx = 0;
        while idx < self.lists[i].entries.len() {
            let ent = self.lists[i].entries[idx];
            if !self.schedule.is_valid_assignment(self.inst, ent.event, interval) {
                self.lists[i].entries.remove(idx);
                continue;
            }
            if ent.updated {
                found = Some(Cand::new(ent.score, interval, ent.event));
                break;
            }
            idx += 1;
        }
        self.m[i] = found;
    }

    /// The Corollary-1 update pass for one interval: walk entries in
    /// descending stored order; drop invalid ones; refresh stale entries with
    /// stored score ≥ Φ; stop at the first entry below Φ. Returns the
    /// possibly-improved Φ.
    fn update_interval(&mut self, i: usize, mut phi: Option<Cand>) -> Option<Cand> {
        let interval = IntervalId::new(i);

        // Interval-level skip: even the best upper bound cannot reach Φ.
        if let (Some(p), Some(front)) = (phi, self.lists[i].entries.first()) {
            self.engine.stats_mut().record_examined(1);
            if front.score < p.score {
                return phi;
            }
        }

        let mut idx = 0;
        let mut any_refresh = false;
        while idx < self.lists[i].entries.len() {
            let ent = self.lists[i].entries[idx];
            self.engine.stats_mut().record_examined(1);
            if !self.schedule.is_valid_assignment(self.inst, ent.event, interval) {
                self.lists[i].entries.remove(idx);
                continue;
            }
            if let Some(p) = phi {
                if ent.score < p.score {
                    break; // sorted: everything below is below Φ too
                }
            }
            if !ent.updated {
                let fresh = self.engine.assignment_score_update(ent.event, interval);
                let e = &mut self.lists[i].entries[idx];
                e.score = fresh;
                e.updated = true;
                any_refresh = true;
            }
            let cand = Cand::new(self.lists[i].entries[idx].score, interval, ent.event);
            phi = better(phi, Some(cand));
            idx += 1;
        }

        let list = &mut self.lists[i];
        if any_refresh {
            list.sort();
        }
        list.fully_updated = list.entries.iter().all(|e| e.updated);
        self.refresh_m(i);
        phi
    }
}

fn run_inc(
    inst: &Instance,
    k: usize,
    cfg: RunConfig,
    scratch: &mut Scratch,
) -> (Schedule, Stats, Option<EngineProfile>) {
    let num_events = inst.num_events();
    let num_intervals = inst.num_intervals();
    let max_dur = max_duration(inst);
    let Scratch { lists, m, pending, .. } = scratch;
    crate::common::reset_interval_lists(lists, m, num_intervals);
    let mut engine = ScoringEngine::with_threads(inst, cfg.threads);
    if cfg.profile {
        engine.enable_profiling();
    }
    let mut state = IncState { inst, engine, schedule: Schedule::new(inst), lists, m };

    // Initial pass over the full |E| × |T| universe (same as ALG).
    // Duration-extension guard: spanning events that run off the calendar
    // are skipped outright.
    //
    // **Bound-first gate** (opt-in): instead of paying the full user sweep
    // per cell up front, every candidate is seeded with the engine's
    // O(duration) separable upper bound and marked stale. The Corollary-1
    // machinery below already treats stale stored values as sound upper
    // bounds, so it lazily sweeps exactly the candidates whose bound
    // survives Φ — a candidate whose bound never reaches Φ *never pays for
    // a sweep at all* (`Stats::bound_skips` counts the deferred seeds;
    // `score_updates` shows how many were eventually swept). Selection is
    // untouched: any candidate tying or beating the final Φ has
    // `bound ≥ true ≥ Φ` and is therefore refreshed before the choice.
    for t in 0..num_intervals {
        let interval = IntervalId::new(t);
        for e in 0..num_events {
            let event = EventId::new(e);
            if !state.schedule.is_valid_assignment(state.inst, event, interval) {
                continue;
            }
            if cfg.bound_gate {
                let bound = state.engine.score_bound(event, interval);
                state.engine.stats_mut().record_bound_skip();
                state.lists[t].entries.push(Entry { event, score: bound, updated: false });
            } else {
                let score = state.engine.assignment_score(event, interval);
                state.lists[t].entries.push(Entry { event, score, updated: true });
            }
        }
        state.lists[t].fully_updated = !cfg.bound_gate;
        state.lists[t].sort();
        state.refresh_m(t);
    }

    while state.schedule.len() < k {
        // Bound Φ = best over M, then the Corollary-1 update pass.
        let mut phi: Option<Cand> = None;
        for cand in state.m.iter().flatten() {
            phi = better(phi, Some(*cand));
        }
        // Visit partially-updated intervals in descending front-bound order
        // so Φ tightens as early as possible (this is what lets Example 3 get
        // away with a single update).
        pending.clear();
        pending.extend(
            (0..num_intervals).filter(|&i| !state.lists[i].fully_updated).map(|i| {
                (state.lists[i].entries.first().map_or(f64::NEG_INFINITY, |e| e.score), i)
            }),
        );
        pending.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
        for &(_, i) in pending.iter() {
            phi = state.update_interval(i, phi);
        }

        // Select the top of M (now the true greedy choice).
        let mut chosen: Option<Cand> = None;
        for cand in state.m.iter().flatten() {
            chosen = better(chosen, Some(*cand));
        }
        let Some(chosen) = chosen else { break };
        debug_assert!(
            state.schedule.is_valid_assignment(inst, chosen.event, chosen.interval),
            "M must only hold valid assignments"
        );

        state
            .schedule
            .assign(inst, chosen.event, chosen.interval)
            .expect("selected assignment must be valid");
        state.engine.apply(chosen.event, chosen.interval);

        // Bookkeeping (Algorithm 1 lines 9–15): every starting interval
        // whose assignments may span into the placed span — the stale
        // window; exactly the selected interval under duration-1 — has its
        // survivors marked stale.
        let span = stale_window(inst, max_dur, chosen.event, chosen.interval);
        for ti in span.clone() {
            let list = &mut state.lists[ti];
            list.entries.retain(|e| e.event != chosen.event);
            for e in &mut list.entries {
                e.updated = false;
            }
            list.fully_updated = list.entries.is_empty();
            state.m[ti] = None;
        }
        // ...and M entries invalidated by the selection — the chosen event's
        // other assignments, plus (under the duration extension) any entry
        // whose own span now collides with the newly placed event — are
        // re-derived.
        for i in 0..num_intervals {
            if span.contains(&i) {
                continue;
            }
            let needs_refresh = state.m[i].is_some_and(|c| {
                c.event == chosen.event
                    || !state.schedule.is_valid_assignment(state.inst, c.event, c.interval)
            });
            if needs_refresh {
                state.refresh_m(i);
            }
        }
    }

    let stats = *state.engine.stats();
    let profile = state.engine.take_profile();
    (state.schedule, stats, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::Alg;
    use ses_core::model::running_example;
    use ses_core::Assignment;

    /// Example 3: INC finds the same schedule as ALG with only one update
    /// (α_{e2}^{t2}) instead of ALG's four.
    #[test]
    fn running_example_trace_and_updates() {
        let inst = running_example();
        let res = Inc.run(&inst, 3);
        assert_eq!(
            res.schedule.assignments(),
            &[
                Assignment::new(EventId::new(3), IntervalId::new(1)),
                Assignment::new(EventId::new(0), IntervalId::new(0)),
                Assignment::new(EventId::new(1), IntervalId::new(1)),
            ]
        );
        assert_eq!(res.stats.score_updates, 1, "Example 3 performs exactly one update");
        assert_eq!(res.stats.score_computations, 9); // 8 initial + 1 update
    }

    /// Proposition 3 on the running example (exact schedule equality).
    #[test]
    fn matches_alg_on_running_example() {
        let inst = running_example();
        for k in 0..=4 {
            let a = Alg.run(&inst, k);
            let i = Inc.run(&inst, k);
            assert_eq!(a.schedule.assignments(), i.schedule.assignments(), "k = {k}");
            assert!((a.utility - i.utility).abs() < 1e-12);
        }
    }

    #[test]
    fn performs_no_more_computations_than_alg() {
        let inst = running_example();
        let a = Alg.run(&inst, 3);
        let i = Inc.run(&inst, 3);
        assert!(i.stats.score_computations <= a.stats.score_computations);
        assert!(i.stats.user_ops <= a.stats.user_ops);
    }

    #[test]
    fn k_zero_and_saturation() {
        let inst = running_example();
        assert!(Inc.run(&inst, 0).schedule.is_empty());
        let res = Inc.run(&inst, 99);
        assert_eq!(res.schedule.len(), 4);
        assert!(res.schedule.verify_feasible(&inst).is_ok());
    }
}
