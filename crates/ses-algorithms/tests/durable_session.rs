//! Durability proofs for the session service: state round trips, crash
//! recovery, and the adversarial fault-injection suite.
//!
//! The load-bearing claim (ROADMAP item 5): for a seeded session, every
//! byte of the on-disk state — the snapshot container *and* the
//! write-ahead log — can be truncated or bit-flipped at **every byte
//! boundary**, and recovery either restores a state that answers the
//! remainder of the golden transcript **byte-identically**, or fails
//! loudly with a typed `corrupt` error. Never a silent wrong answer.
//!
//! Truncation is the crash model (a torn tail is exactly what a crash
//! mid-append leaves): it may lose a *suffix* of un-folded records, and
//! the recovered session must then answer from precisely that earlier
//! point in the transcript. Bit flips are the disk-rot model: all bytes
//! are present but some lie, and recovery must refuse.

use ses_algorithms::service::durable::{inspect, DurableService};
use ses_algorithms::service::{wire, Query, Request, Response, SesService};
use ses_core::delta::DeltaOp;
use ses_core::durable::{generations, read_wal, wal_generations};
use ses_core::model::Instance;
use ses_core::parallel::Threads;
use ses_core::EventId;
use ses_datasets::ops::{self, OpStreamParams};
use ses_datasets::params::{ActivityModel, InterestModel, SyntheticParams};
use ses_datasets::synthetic;
use std::fs;
use std::path::{Path, PathBuf};

/// One explicit thread count everywhere: recovery must be driven with the
/// same determinism knobs as the original run (the repo-wide thread
/// invariance tests cover the rest).
#[allow(non_snake_case)]
fn T1() -> Threads {
    Threads::new(1)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ses-durable-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_instance() -> Instance {
    synthetic::generate(&SyntheticParams {
        k: 0,
        num_events: 5,
        num_intervals: 3,
        num_users: 12,
        competing_per_interval: (1, 2),
        num_locations: 3,
        resources: 8.0,
        max_required_resources: 4.0,
        interest: InterestModel::Uniform,
        activity: ActivityModel::Uniform,
        seed: 0xD0B,
        interest_levels: 0,
    })
}

/// The seeded transcript the fault suite replays: every mutating request
/// kind (including one that fails validation — failed requests are logged
/// too, so replay reproduces the error and any partial effect), with
/// read-only requests interleaved.
fn transcript() -> Vec<Request> {
    let base = base_instance();
    let stream = ops::generate(
        &base,
        &OpStreamParams::default().with_ops(8).with_churn(0.25).with_seed(0xFA11),
    );
    let chunk = |range: std::ops::Range<usize>| stream[range].to_vec();
    vec![
        Request::Schedule {
            algorithm: "INC".into(),
            k: 3,
            threads: None,
            gate: false,
            profile: false,
            constraints: None,
        },
        Request::Query { query: Query::Event { event: 0 } },
        Request::ApplyOps { ops: chunk(0..3), window: None },
        Request::Snapshot,
        Request::Repair { k: 3, threads: None, gate: false },
        Request::ApplyOps { ops: chunk(3..5), window: None },
        Request::Query { query: Query::User { user: 1 } },
        Request::ApplyOps { ops: chunk(5..7), window: Some(2) },
        // A request that fails validation: the dangling id is rejected,
        // the batch before it sticks (op-at-a-time atomicity).
        Request::ApplyOps {
            ops: vec![DeltaOp::RemoveEvent { event: EventId::new(9999) }],
            window: None,
        },
        Request::Snapshot,
        Request::Schedule {
            algorithm: "HOR".into(),
            k: 2,
            threads: None,
            gate: false,
            profile: false,
            constraints: None,
        },
        Request::Reset,
        Request::Repair { k: 2, threads: None, gate: false },
        Request::ApplyOps { ops: chunk(7..8), window: None },
        Request::Snapshot,
    ]
}

fn is_mutating(req: &Request) -> bool {
    matches!(
        req,
        Request::Schedule { .. }
            | Request::ApplyOps { .. }
            | Request::Repair { .. }
            | Request::Reset
    )
}

/// Request index to resume from when exactly `m` mutating requests
/// survived on disk: right after the `m`-th mutating request (read-only
/// requests in between are stateless either side of the cut).
fn resume_index(reqs: &[Request], m: usize) -> usize {
    if m == 0 {
        return 0;
    }
    let mut seen = 0;
    for (i, r) in reqs.iter().enumerate() {
        if is_mutating(r) {
            seen += 1;
            if seen == m {
                return i + 1;
            }
        }
    }
    panic!("{m} mutating requests requested, transcript has {seen}");
}

/// Runs the whole transcript on a fresh durable session in `dir`,
/// returning the encoded response per request (the golden bytes).
fn run_golden(dir: &Path, reqs: &[Request], snapshot_every: u64) -> Vec<String> {
    let (mut svc, report) =
        DurableService::open(dir, base_instance(), T1(), snapshot_every).unwrap();
    assert!(report.fresh, "expected an empty state dir");
    reqs.iter().map(|r| wire::encode_response(&svc.handle(r))).collect()
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = fs::remove_dir_all(to);
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

// ---------------------------------------------------------------------
// State round trip
// ---------------------------------------------------------------------

/// `to_state` → JSON → `from_state` at every point of the transcript: the
/// rebuilt session answers the remaining requests byte-identically, cold
/// and warm alike.
#[test]
fn session_state_roundtrips_at_every_transcript_point() {
    let reqs = transcript();
    for split in 0..=reqs.len() {
        let mut original = SesService::new(base_instance()).with_threads(T1());
        for r in &reqs[..split] {
            original.handle(r);
        }
        let json = serde_json::to_string(&original.to_state()).unwrap();
        let state = serde_json::from_str(&json).unwrap();
        let mut rebuilt = SesService::from_state(state, T1()).unwrap();
        for (i, r) in reqs[split..].iter().enumerate() {
            let a = wire::encode_response(&original.handle(r));
            let b = wire::encode_response(&rebuilt.handle(r));
            assert_eq!(a, b, "split {split}, request {i}: rebuilt session diverged");
        }
    }
}

#[test]
fn session_state_rejects_tampering() {
    let mut svc = SesService::new(base_instance()).with_threads(T1());
    svc.handle(&transcript()[0]);
    let good = svc.to_state();

    let mut wrong_version = good.clone();
    wrong_version.version = 99;
    assert_eq!(SesService::from_state(wrong_version, T1()).unwrap_err().code(), "corrupt");

    let mut no_owner = good.clone();
    no_owner.inst = None;
    no_owner.stream = None;
    assert_eq!(SesService::from_state(no_owner, T1()).unwrap_err().code(), "corrupt");

    let mut bent_utility = good.clone();
    let last = bent_utility.last.as_mut().expect("schedule request recorded a schedule");
    last.utility += 0.125;
    assert_eq!(SesService::from_state(bent_utility, T1()).unwrap_err().code(), "corrupt");

    // And the untampered state still loads.
    SesService::from_state(good, T1()).unwrap();
}

#[test]
fn plain_session_rejects_persist_and_restore() {
    let mut svc = SesService::new(base_instance()).with_threads(T1());
    for req in [Request::Persist, Request::Restore] {
        match svc.handle(&req) {
            Response::Error { code, .. } => assert_eq!(code, "invalid-argument"),
            other => panic!("expected an error, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Clean-shutdown recovery and compaction
// ---------------------------------------------------------------------

/// Stop the session after each request (drop = crash: nothing is flushed
/// beyond what `handle` already fsynced), reopen, and the remainder of
/// the transcript answers byte-identically.
#[test]
fn reopen_at_every_request_boundary_answers_identically() {
    let reqs = transcript();
    let golden_dir = tmpdir("reopen-golden");
    let golden = run_golden(&golden_dir, &reqs, 0);

    for split in 0..=reqs.len() {
        let dir = tmpdir(&format!("reopen-{split}"));
        let (mut svc, _) = DurableService::open(&dir, base_instance(), T1(), 0).unwrap();
        for (i, r) in reqs[..split].iter().enumerate() {
            assert_eq!(wire::encode_response(&svc.handle(r)), golden[i]);
        }
        drop(svc);
        let (mut svc, report) = DurableService::open(&dir, base_instance(), T1(), 0).unwrap();
        assert!(!report.fresh);
        assert_eq!(report.fell_back, 0);
        assert_eq!(report.torn, None);
        for (i, r) in reqs[split..].iter().enumerate() {
            assert_eq!(
                wire::encode_response(&svc.handle(r)),
                golden[split + i],
                "split {split}: request {} diverged after reopen",
                split + i
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&golden_dir).unwrap();
}

/// Auto-compaction keeps at most two generation pairs on disk, does not
/// change a single response byte, and the compacted dir recovers
/// identically.
#[test]
fn compaction_bounds_generations_and_preserves_bytes() {
    let reqs = transcript();
    let flat_dir = tmpdir("compact-flat");
    let golden = run_golden(&flat_dir, &reqs, 0);

    let dir = tmpdir("compact");
    let compacted = run_golden(&dir, &reqs, 3);
    assert_eq!(compacted, golden, "auto-compaction changed response bytes");
    let gens = generations(&dir).unwrap();
    assert!(gens.len() <= 2, "compaction left {gens:?} on disk");
    assert!(*gens.last().unwrap() > 0, "expected at least one compaction");

    // The compacted directory recovers to the same state.
    let (mut svc, report) = DurableService::open(&dir, base_instance(), T1(), 3).unwrap();
    assert_eq!(report.fell_back, 0);
    let probe = Request::Snapshot;
    let mut flat = {
        let (svc, _) = DurableService::open(&flat_dir, base_instance(), T1(), 0).unwrap();
        svc
    };
    assert_eq!(
        wire::encode_response(&svc.handle(&probe)),
        wire::encode_response(&flat.handle(&probe)),
    );
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&flat_dir).unwrap();
}

/// `Persist` folds and retires; `Restore` reloads from disk and the
/// session keeps answering identically.
#[test]
fn persist_and_restore_requests_round_trip() {
    let reqs = transcript();
    let dir = tmpdir("persist-restore");
    let (mut svc, _) = DurableService::open(&dir, base_instance(), T1(), 0).unwrap();
    for r in &reqs[..6] {
        svc.handle(r);
    }
    let mutations_so_far = reqs[..6].iter().filter(|r| is_mutating(r)).count() as u64;
    match svc.handle(&Request::Persist) {
        Response::Persisted { generation, folded } => {
            assert_eq!(generation, 1);
            assert_eq!(folded, mutations_so_far);
        }
        other => panic!("expected Persisted, got {other:?}"),
    }
    // Mutate some more, then reload from disk: the log since the persist
    // replays and nothing observable changes.
    let before: Vec<String> =
        reqs[6..].iter().map(|r| wire::encode_response(&svc.handle(r))).collect();
    let later_mutations = reqs[6..].iter().filter(|r| is_mutating(r)).count() as u64;
    match svc.handle(&Request::Restore) {
        Response::Restored { generation, replayed } => {
            assert_eq!(generation, 1);
            assert_eq!(replayed, later_mutations);
        }
        other => panic!("expected Restored, got {other:?}"),
    }
    // A second identical transcript suffix on a fresh uninterrupted
    // session proves the restore changed nothing: replay the whole thing.
    let flat_dir = tmpdir("persist-restore-flat");
    let (mut flat, _) = DurableService::open(&flat_dir, base_instance(), T1(), 0).unwrap();
    for r in &reqs[..6] {
        flat.handle(r);
    }
    flat.handle(&Request::Persist);
    let flat_before: Vec<String> =
        reqs[6..].iter().map(|r| wire::encode_response(&flat.handle(r))).collect();
    assert_eq!(before, flat_before);
    assert_eq!(
        wire::encode_response(&svc.handle(&Request::Snapshot)),
        wire::encode_response(&flat.handle(&Request::Snapshot)),
        "restore diverged from the uninterrupted session"
    );
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&flat_dir).unwrap();
}

/// `inspect` reports what recovery would do without writing a byte.
#[test]
fn inspect_is_read_only_and_reports_torn_tails() {
    let reqs = transcript();
    let dir = tmpdir("inspect");
    run_golden(&dir, &reqs, 0);
    let mutations = reqs.iter().filter(|r| is_mutating(r)).count() as u64;

    let files_before: Vec<(PathBuf, Vec<u8>)> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| {
            let p = e.unwrap().path();
            let bytes = fs::read(&p).unwrap();
            (p, bytes)
        })
        .collect();

    let report = inspect(&dir, T1()).unwrap();
    assert_eq!(report.generations, vec![0]);
    assert_eq!(report.wal_generations, vec![0]);
    assert_eq!(report.report.generation, 0);
    assert_eq!(report.report.replayed, mutations);
    assert_eq!(report.report.torn, None);
    assert!(report.snapshot.ops_applied > 0, "transcript applied ops");

    // Tear the log tail: inspect reports it but must NOT truncate it.
    let wal = dir.join("wal-00000000.log");
    let mut bytes = fs::read(&wal).unwrap();
    let keep = bytes.len() - 5;
    bytes.truncate(keep);
    fs::write(&wal, &bytes).unwrap();
    let torn_report = inspect(&dir, T1()).unwrap();
    assert!(torn_report.report.torn.is_some());
    assert_eq!(fs::read(&wal).unwrap().len(), keep, "inspect truncated the torn tail");

    // Restore the pristine files and confirm inspect changed nothing.
    for (p, original) in &files_before {
        fs::write(p, original).unwrap();
    }
    for (p, original) in &files_before {
        assert_eq!(&fs::read(p).unwrap(), original, "inspect modified {}", p.display());
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// A log with no snapshot, or a missing log between generations, is loud
/// corruption — replay cannot silently skip acknowledged records.
#[test]
fn structural_holes_are_loud() {
    let reqs = transcript();

    // Logs but no snapshot.
    let dir = tmpdir("hole-nosnap");
    run_golden(&dir, &reqs, 0);
    fs::remove_file(dir.join("snapshot-00000000.ses")).unwrap();
    let err = DurableService::open(&dir, base_instance(), T1(), 0).unwrap_err();
    assert_eq!(err.code(), "corrupt", "{err}");
    fs::remove_dir_all(&dir).unwrap();

    // Two generation pairs with the older log deleted while the newer
    // snapshot is unreadable: fallback would need the missing records.
    let dir = tmpdir("hole-gap");
    run_golden(&dir, &reqs, 3);
    let gens = generations(&dir).unwrap();
    assert_eq!(gens.len(), 2);
    let newest = *gens.last().unwrap();
    // Corrupt the newest snapshot so recovery wants to fall back...
    let snap = dir.join(format!("snapshot-{newest:08}.ses"));
    let mut bytes = fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&snap, &bytes).unwrap();
    // ...and delete the older generation's log out from under it.
    fs::remove_file(dir.join(format!("wal-{:08}.log", gens[0]))).unwrap();
    let err = DurableService::open(&dir, base_instance(), T1(), 0).unwrap_err();
    assert_eq!(err.code(), "corrupt", "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// The adversarial fault-injection suite
// ---------------------------------------------------------------------

/// Single-generation layout: truncate AND bit-flip the snapshot and the
/// log at every byte boundary. Truncating the log loses a suffix of
/// records (the crash model) — recovery must resume the transcript at
/// exactly the surviving-record count, byte-identically. Everything else
/// must be a typed `corrupt` failure. Zero silent divergence.
#[test]
fn fault_injection_single_generation() {
    let reqs = transcript();
    let pristine = tmpdir("fi1-pristine");
    let golden = run_golden(&pristine, &reqs, 0);
    let work = tmpdir("fi1-work");

    let snap_name = "snapshot-00000000.ses";
    let wal_name = "wal-00000000.log";
    let snap_bytes = fs::read(pristine.join(snap_name)).unwrap();
    let wal_bytes = fs::read(pristine.join(wal_name)).unwrap();

    // Snapshot faults: with a single generation there is nothing to fall
    // back to, so every truncation and every flip must fail loudly.
    for cut in 0..snap_bytes.len() {
        copy_dir(&pristine, &work);
        fs::write(work.join(snap_name), &snap_bytes[..cut]).unwrap();
        let err = DurableService::open(&work, base_instance(), T1(), 0).unwrap_err();
        assert_eq!(err.code(), "corrupt", "snapshot cut at {cut}: {err}");
    }
    for byte in 0..snap_bytes.len() {
        copy_dir(&pristine, &work);
        let mut bent = snap_bytes.clone();
        bent[byte] ^= 0x01;
        fs::write(work.join(snap_name), &bent).unwrap();
        let err = DurableService::open(&work, base_instance(), T1(), 0).unwrap_err();
        assert_eq!(err.code(), "corrupt", "snapshot flip at {byte}: {err}");
    }

    // Log flips: all declared bytes present, some lie — always loud.
    for byte in 0..wal_bytes.len() {
        copy_dir(&pristine, &work);
        let mut bent = wal_bytes.clone();
        bent[byte] ^= 0x01;
        fs::write(work.join(wal_name), &bent).unwrap();
        let err = DurableService::open(&work, base_instance(), T1(), 0).unwrap_err();
        assert_eq!(err.code(), "corrupt", "wal flip at {byte}: {err}");
    }

    // Log truncations: the crash model. Recovery succeeds with exactly
    // the surviving complete records and answers the rest of the golden
    // transcript byte for byte.
    for cut in 0..wal_bytes.len() {
        copy_dir(&pristine, &work);
        fs::write(work.join(wal_name), &wal_bytes[..cut]).unwrap();
        let survived = read_wal(&work.join(wal_name)).unwrap().records.len();
        let (mut svc, report) = DurableService::open(&work, base_instance(), T1(), 0)
            .unwrap_or_else(|e| panic!("wal cut at {cut} must recover: {e}"));
        assert_eq!(report.replayed, survived as u64, "cut at {cut}");
        let resume = resume_index(&reqs, survived);
        for (i, r) in reqs[resume..].iter().enumerate() {
            assert_eq!(
                wire::encode_response(&svc.handle(r)),
                golden[resume + i],
                "wal cut at {cut} ({survived} records): request {} diverged",
                resume + i
            );
        }
    }

    fs::remove_dir_all(&pristine).unwrap();
    fs::remove_dir_all(&work).unwrap();
}

/// Two-generation layout (auto-compaction on): a corrupted newest
/// snapshot falls back **losslessly** to the previous generation plus
/// both logs; faults in the newest log behave exactly as in the
/// single-generation suite; both snapshots corrupt is loud.
#[test]
fn fault_injection_with_fallback_generation() {
    let reqs = transcript();
    let pristine = tmpdir("fi2-pristine");
    let golden = run_golden(&pristine, &reqs, 3);
    let work = tmpdir("fi2-work");

    let gens = generations(&pristine).unwrap();
    assert_eq!(gens.len(), 2, "expected two generation pairs, got {gens:?}");
    let (old_gen, new_gen) = (gens[0], gens[1]);
    let new_snap = format!("snapshot-{new_gen:08}.ses");
    let old_snap = format!("snapshot-{old_gen:08}.ses");
    let new_wal = format!("wal-{new_gen:08}.log");
    let new_snap_bytes = fs::read(pristine.join(&new_snap)).unwrap();
    let old_snap_bytes = fs::read(pristine.join(&old_snap)).unwrap();
    let new_wal_bytes = fs::read(pristine.join(&new_wal)).unwrap();
    let total_mutations = reqs.iter().filter(|r| is_mutating(r)).count();
    let wal_records = read_wal(&pristine.join(&new_wal)).unwrap().records.len();
    // The newest snapshot folds everything before its log started.
    let folded = total_mutations - wal_records;

    // Any fault in the newest snapshot — truncation or flip — falls back
    // to the previous generation and replays BOTH logs: full recovery,
    // nothing lost. The fallback compacts immediately, making the
    // repaired state the new durable baseline.
    for (what, bent) in [
        ("cut", new_snap_bytes[..new_snap_bytes.len() / 2].to_vec()),
        ("flip", {
            let mut b = new_snap_bytes.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x01;
            b
        }),
    ] {
        copy_dir(&pristine, &work);
        fs::write(work.join(&new_snap), &bent).unwrap();
        let (mut svc, report) = DurableService::open(&work, base_instance(), T1(), 3)
            .unwrap_or_else(|e| panic!("newest snapshot {what} must fall back: {e}"));
        assert_eq!(report.fell_back, 1, "{what}");
        assert_eq!(report.generation, old_gen, "{what}");
        // Full state recovered: a probe answers exactly like the
        // uninterrupted session.
        let flat_dir = tmpdir("fi2-flat");
        let flat_golden = run_golden(&flat_dir, &reqs, 0);
        assert_eq!(flat_golden, golden);
        let (mut flat, _) = DurableService::open(&flat_dir, base_instance(), T1(), 0).unwrap();
        assert_eq!(
            wire::encode_response(&svc.handle(&Request::Snapshot)),
            wire::encode_response(&flat.handle(&Request::Snapshot)),
            "fallback after newest-snapshot {what} lost state"
        );
        fs::remove_dir_all(&flat_dir).unwrap();
    }

    // Newest log: flips are loud, truncations resume at the surviving
    // record count on top of what the newest snapshot already folded.
    for byte in 0..new_wal_bytes.len() {
        copy_dir(&pristine, &work);
        let mut bent = new_wal_bytes.clone();
        bent[byte] ^= 0x01;
        fs::write(work.join(&new_wal), &bent).unwrap();
        let err = DurableService::open(&work, base_instance(), T1(), 3).unwrap_err();
        assert_eq!(err.code(), "corrupt", "newest wal flip at {byte}: {err}");
    }
    for cut in 0..new_wal_bytes.len() {
        copy_dir(&pristine, &work);
        fs::write(work.join(&new_wal), &new_wal_bytes[..cut]).unwrap();
        let survived = read_wal(&work.join(&new_wal)).unwrap().records.len();
        let (mut svc, report) = DurableService::open(&work, base_instance(), T1(), 3)
            .unwrap_or_else(|e| panic!("newest wal cut at {cut} must recover: {e}"));
        assert_eq!(report.fell_back, 0, "cut at {cut}");
        let resume = resume_index(&reqs, folded + survived);
        for (i, r) in reqs[resume..].iter().enumerate() {
            assert_eq!(
                wire::encode_response(&svc.handle(r)),
                golden[resume + i],
                "newest wal cut at {cut}: request {} diverged",
                resume + i
            );
        }
    }

    // Both snapshots corrupt: nothing valid to recover from — loud.
    copy_dir(&pristine, &work);
    for (name, bytes) in [(&new_snap, &new_snap_bytes), (&old_snap, &old_snap_bytes)] {
        let mut bent = bytes.to_vec();
        let mid = bent.len() / 2;
        bent[mid] ^= 0x01;
        fs::write(work.join(name), &bent).unwrap();
    }
    let err = DurableService::open(&work, base_instance(), T1(), 3).unwrap_err();
    assert_eq!(err.code(), "corrupt", "{err}");

    fs::remove_dir_all(&pristine).unwrap();
    fs::remove_dir_all(&work).unwrap();
}

/// A syntactically valid snapshot container wrapping a semantically bad
/// payload (garbage JSON, wrong layout version) is caught by the state
/// validators, not the checksums — still loud, still typed.
#[test]
fn valid_container_with_bad_payload_is_loud() {
    let reqs = transcript();
    for payload in [
        b"not json at all".to_vec(),
        br#"{"version":99,"inst":null,"ops_applied":0,"requests_handled":0}"#.to_vec(),
        br#"{"version":1,"ops_applied":0,"requests_handled":0}"#.to_vec(),
    ] {
        let dir = tmpdir("badpayload");
        run_golden(&dir, &reqs[..3], 0);
        ses_core::durable::write_snapshot(&dir, 0, &payload).unwrap();
        // The log now disagrees with the rewritten snapshot too, but the
        // payload check fires first either way.
        let err = DurableService::open(&dir, base_instance(), T1(), 0).unwrap_err();
        assert_eq!(err.code(), "corrupt", "payload {:?}: {err}", String::from_utf8_lossy(&payload));
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Sanity: the generation scan helpers see what the suite expects them
/// to (guards the file-name coupling the faults above rely on).
#[test]
fn on_disk_layout_matches_the_scan() {
    let dir = tmpdir("layout");
    run_golden(&dir, &transcript(), 0);
    assert_eq!(generations(&dir).unwrap(), vec![0]);
    assert_eq!(wal_generations(&dir).unwrap(), vec![0]);
    assert!(dir.join("snapshot-00000000.ses").exists());
    assert!(dir.join("wal-00000000.log").exists());
    fs::remove_dir_all(&dir).unwrap();
}
