//! Property-based tests of the paper's propositions over randomized
//! instances drawn from the synthetic generators:
//!
//! * **Proposition 3** — INC returns exactly ALG's schedule;
//! * **Proposition 6** — HOR-I returns exactly HOR's schedule;
//! * computation dominance — INC ≤ ALG and HOR-I ≤ HOR in score work;
//! * feasibility + utility consistency for every scheduler;
//! * greedy ≤ exact optimum on tiny instances.

use proptest::prelude::*;
use ses_algorithms::prelude::*;
use ses_core::model::Instance;
use ses_core::scoring::utility::total_utility;
use ses_datasets::params::{ActivityModel, InterestModel, SyntheticParams};
use ses_datasets::synthetic;

fn model(ix: usize) -> InterestModel {
    match ix % 3 {
        0 => InterestModel::Uniform,
        1 => InterestModel::Normal,
        _ => InterestModel::Zipf { s: 2.0 },
    }
}

fn instance(seed: u64, ne: usize, nt: usize, nu: usize, model_ix: usize) -> Instance {
    synthetic::generate(&SyntheticParams {
        k: 0, // unused by the generator
        num_events: ne,
        num_intervals: nt,
        num_users: nu,
        competing_per_interval: (1, 4),
        num_locations: 4,
        resources: 12.0,
        max_required_resources: 6.0,
        interest: model(model_ix),
        activity: ActivityModel::Uniform,
        seed,
        interest_levels: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Proposition 3: INC and ALG always return the same schedule
    /// (assignment-for-assignment) and perform comparable-or-less work.
    #[test]
    fn inc_equals_alg(
        seed in 0u64..10_000,
        ne in 5usize..30,
        nt in 1usize..8,
        nu in 2usize..40,
        k in 1usize..15,
        m in 0usize..3,
    ) {
        let inst = instance(seed, ne, nt, nu, m);
        let a = Alg.run(&inst, k);
        let i = Inc.run(&inst, k);
        prop_assert_eq!(a.schedule.assignments(), i.schedule.assignments());
        prop_assert!((a.utility - i.utility).abs() < 1e-9);
        prop_assert!(
            i.stats.score_computations <= a.stats.score_computations,
            "INC {} > ALG {}", i.stats.score_computations, a.stats.score_computations
        );
    }

    /// Proposition 6: HOR-I and HOR always return the same schedule,
    /// with HOR-I doing no more score work.
    #[test]
    fn hor_i_equals_hor(
        seed in 0u64..10_000,
        ne in 5usize..30,
        nt in 1usize..8,
        nu in 2usize..40,
        k in 1usize..15,
        m in 0usize..3,
    ) {
        let inst = instance(seed, ne, nt, nu, m);
        let h = Hor.run(&inst, k);
        let hi = HorI.run(&inst, k);
        prop_assert_eq!(h.schedule.assignments(), hi.schedule.assignments());
        prop_assert!((h.utility - hi.utility).abs() < 1e-9);
        prop_assert!(
            hi.stats.score_computations <= h.stats.score_computations,
            "HOR-I {} > HOR {}", hi.stats.score_computations, h.stats.score_computations
        );
    }

    /// Every scheduler produces a feasible schedule whose reported utility
    /// matches the independent evaluator, and fills k when k is clearly
    /// feasible.
    #[test]
    fn all_schedulers_sound(
        seed in 0u64..10_000,
        nu in 2usize..30,
        m in 0usize..3,
        k in 1usize..8,
    ) {
        let inst = instance(seed, 24, 6, nu, m);
        for kind in SchedulerKind::paper_lineup() {
            let res = kind.run(&inst, k);
            prop_assert!(res.schedule.verify_feasible(&inst).is_ok(), "{}", kind.name());
            let omega = total_utility(&inst, &res.schedule);
            prop_assert!((res.utility - omega).abs() < 1e-9, "{}", kind.name());
            // 24 events over 6 intervals with 4 locations and θ=12 (ξ ≤ 6):
            // at least 2 events fit per interval, so k ≤ 8 is always
            // satisfiable for the greedy methods.
            if !matches!(kind, SchedulerKind::Rand(_)) {
                prop_assert_eq!(res.schedule.len(), k, "{} under-filled", kind.name());
            }
        }
    }

    /// No greedy heuristic ever beats the exact optimum (tiny instances).
    #[test]
    fn greedy_bounded_by_exact(
        seed in 0u64..10_000,
        ne in 3usize..7,
        nt in 1usize..3,
        nu in 2usize..10,
        k in 1usize..4,
        m in 0usize..3,
    ) {
        let inst = instance(seed, ne, nt, nu, m);
        let opt = Exact.run(&inst, k).utility;
        for kind in [SchedulerKind::Alg, SchedulerKind::Hor, SchedulerKind::Top] {
            let res = kind.run(&inst, k);
            prop_assert!(
                res.utility <= opt + 1e-9,
                "{} found {} > optimum {}", kind.name(), res.utility, opt
            );
        }
        // Note: no ALG ≥ RAND assertion — greedy is myopic and proptest
        // readily finds tiny instances where a lucky random assignment
        // beats it (cf. the running example, where greedy is ~1.5% below
        // the optimum). The guarantees worth asserting are the exact-bound
        // above and the pairwise equivalences.
    }

    /// The weighted-user extension scales every algorithm's utility linearly
    /// when all weights are equal.
    #[test]
    fn uniform_weights_scale_linearly(
        seed in 0u64..10_000,
        w in 1u32..5,
    ) {
        let base = instance(seed, 12, 4, 10, 0);
        let mut weighted = base.clone();
        weighted.user_weights = Some(vec![w as f64; weighted.num_users()]);
        for kind in [SchedulerKind::Alg, SchedulerKind::Hor] {
            let a = kind.run(&base, 5);
            let b = kind.run(&weighted, 5);
            // Equal weights don't change the argmax, only the scale.
            prop_assert_eq!(a.schedule.assignments(), b.schedule.assignments());
            prop_assert!((b.utility - w as f64 * a.utility).abs() < 1e-6);
        }
    }
}

/// Deterministic regression: tie-heavy instances (identical interests
/// everywhere) exercise the canonical tie-break path in all algorithms.
#[test]
fn tie_heavy_instance_equivalences_hold() {
    use ses_core::ids::{IntervalId, LocationId};
    use ses_core::model::{ActivityMatrix, CompetingEvent, DenseInterest, Event, InstanceBuilder};

    let (ne, nt, nu) = (6usize, 3usize, 4usize);
    let mut b = InstanceBuilder::new();
    for i in 0..ne {
        b.add_event(Event::new(LocationId::new(i % 3), 1.0));
    }
    b.add_intervals(nt);
    for t in 0..nt {
        b.add_competing(CompetingEvent::new(IntervalId::new(t)));
    }
    let inst = b
        .event_interest(DenseInterest::from_fn(ne, nu, |_, _| 0.5))
        .competing_interest(DenseInterest::from_fn(nt, nu, |_, _| 0.5))
        .activity(ActivityMatrix::constant(nu, nt, 0.5))
        .resources(10.0)
        .build()
        .unwrap();

    for k in 0..=6 {
        let a = Alg.run(&inst, k);
        let i = Inc.run(&inst, k);
        let h = Hor.run(&inst, k);
        let hi = HorI.run(&inst, k);
        assert_eq!(a.schedule.assignments(), i.schedule.assignments(), "k = {k}");
        assert_eq!(h.schedule.assignments(), hi.schedule.assignments(), "k = {k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The CELF-style lazy greedy is a third implementation of the same
    /// greedy order: it must match ALG (and therefore INC) exactly.
    #[test]
    fn lazy_equals_alg(
        seed in 0u64..10_000,
        ne in 5usize..25,
        nt in 1usize..6,
        nu in 2usize..30,
        k in 1usize..12,
        m in 0usize..3,
    ) {
        let inst = instance(seed, ne, nt, nu, m);
        let a = Alg.run(&inst, k);
        let l = LazyGreedy.run(&inst, k);
        prop_assert_eq!(a.schedule.assignments(), l.schedule.assignments());
        prop_assert!(
            l.stats.score_computations <= a.stats.score_computations,
            "LAZY {} > ALG {}", l.stats.score_computations, a.stats.score_computations
        );
    }

    /// Local-search refinement never lowers utility, preserves |S| and
    /// feasibility, and reaches a fixed point.
    #[test]
    fn refinement_monotone_and_stable(
        seed in 0u64..10_000,
        nu in 2usize..25,
        k in 1usize..10,
        m in 0usize..3,
    ) {
        let inst = instance(seed, 20, 5, nu, m);
        let base = Hor.run(&inst, k);
        let mut schedule = base.schedule.clone();
        let search = LocalSearch::default();
        let (gain, _) = search.refine(&inst, &mut schedule);
        prop_assert!(gain >= -1e-9, "refinement regressed: {gain}");
        prop_assert_eq!(schedule.len(), base.schedule.len());
        prop_assert!(schedule.verify_feasible(&inst).is_ok());
        let before = total_utility(&inst, &base.schedule);
        let after = total_utility(&inst, &schedule);
        prop_assert!(after >= before - 1e-9, "{before} -> {after}");
        prop_assert!((after - (before + gain)).abs() < 1e-6, "gain accounting drifted");
        // Fixed point: a second pass finds nothing.
        let (gain2, _) = search.refine(&inst, &mut schedule);
        prop_assert!(gain2.abs() <= 1e-9, "not a fixed point: {gain2}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pairwise equivalences survive the duration extension: random
    /// events spanning 1–3 intervals, both k regimes.
    #[test]
    fn equivalences_hold_with_durations(
        seed in 0u64..10_000,
        k in 1usize..12,
        m in 0usize..3,
        d_seed in 0u64..1000,
    ) {
        let mut inst = instance(seed, 18, 6, 12, m);
        // Deterministically sprinkle durations over the events.
        let mut x = d_seed;
        for e in &mut inst.events {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            e.duration = 1 + ((x >> 33) % 3) as u32;
        }
        let a = Alg.run(&inst, k);
        let i = Inc.run(&inst, k);
        let l = LazyGreedy.run(&inst, k);
        let h = Hor.run(&inst, k);
        let hi = HorI.run(&inst, k);
        prop_assert_eq!(a.schedule.assignments(), i.schedule.assignments());
        prop_assert_eq!(a.schedule.assignments(), l.schedule.assignments());
        prop_assert_eq!(h.schedule.assignments(), hi.schedule.assignments());
        for res in [&a, &h] {
            prop_assert!(res.schedule.verify_feasible(&inst).is_ok());
            let omega = total_utility(&inst, &res.schedule);
            prop_assert!((res.utility - omega).abs() < 1e-9);
        }
    }
}
