//! Property-based thread-invariance for **constrained** scheduling:
//! random constraint families over random instances must not disturb the
//! workspace's bit-identity discipline. Every probed scheduler, on dense
//! *and* sparse interest layouts, returns the same assignment sequence,
//! the same utility mantissa, and the same full `Stats` record at 1, 2,
//! and 8 worker threads — with a constraint set in play, so the
//! feasibility gate runs inside the hot path on every candidate.

use proptest::prelude::*;
use ses_algorithms::SchedulerKind;
use ses_core::parallel::{Threads, PAR_BLOCK};
use ses_core::Instance;
use ses_datasets::{ConstraintFamily, Dataset};

/// Thread widths beyond the sequential reference.
const THREAD_COUNTS: [usize; 2] = [2, 8];

fn family(ix: usize) -> ConstraintFamily {
    ConstraintFamily::ALL[ix % ConstraintFamily::ALL.len()]
}

/// A constrained instance whose dense columns span ≥ 2 reduction blocks,
/// so the threaded sweeps genuinely split work.
fn constrained_instance(seed: u64, events: usize, fam: usize) -> Instance {
    let mut inst = Dataset::Unf.build(PAR_BLOCK + 211, events, 6, seed);
    family(fam).apply(&mut inst, seed ^ 0x17);
    inst
}

fn assert_bit_identical(kind: SchedulerKind, inst: &Instance, k: usize, layout: &str) {
    let seq = kind.run_threaded(inst, k, Threads::sequential());
    seq.schedule.verify_feasible(inst).expect("constrained schedule must be feasible");
    for &n in &THREAD_COUNTS {
        let par = kind.run_threaded(inst, k, Threads::new(n));
        assert_eq!(
            seq.schedule.assignments(),
            par.schedule.assignments(),
            "{layout}/{}/t{n}: constrained schedule diverged",
            kind.name()
        );
        assert_eq!(
            seq.utility.to_bits(),
            par.utility.to_bits(),
            "{layout}/{}/t{n}: constrained utility bits diverged ({} vs {})",
            kind.name(),
            seq.utility,
            par.utility
        );
        assert_eq!(
            seq.stats,
            par.stats,
            "{layout}/{}/t{n}: constrained stats diverged",
            kind.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Constrained scheduling is thread-invariant, bit for bit, on the
    /// dense interest layout.
    #[test]
    fn constrained_dense_bit_identical_across_threads(
        seed in 0u64..10_000,
        events in 16usize..28,
        fam in 0usize..4,
        k in 6usize..10,
    ) {
        let inst = constrained_instance(seed, events, fam);
        for kind in [SchedulerKind::Alg, SchedulerKind::Inc, SchedulerKind::Hor, SchedulerKind::HorI] {
            assert_bit_identical(kind, &inst, k, "dense");
        }
    }

    /// The sparse (non-zero-list) layout drives the positional reduction
    /// variant; the constrained gate must stay bit-invariant there too.
    #[test]
    fn constrained_sparse_bit_identical_across_threads(
        seed in 0u64..10_000,
        events in 16usize..28,
        fam in 0usize..4,
        k in 6usize..10,
    ) {
        let dense = constrained_instance(seed, events, fam);
        let mut sparse = dense.clone();
        sparse.event_interest = dense.event_interest.to_sparse().into();
        sparse.competing_interest = dense.competing_interest.to_sparse().into();
        for kind in [SchedulerKind::Inc, SchedulerKind::HorI, SchedulerKind::Lazy] {
            assert_bit_identical(kind, &sparse, k, "sparse");
        }
    }
}
