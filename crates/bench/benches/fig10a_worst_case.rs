//! **Fig 10a** (HOR/HOR-I worst case): `k = 40`, `|T| = 39`
//! (`k mod |T| = 1`, Propositions 5 & 7) on all four datasets. Expected:
//! HOR-I still outperforms every method except TOP; on Unf the bound-based
//! methods (INC, HOR-I) lose their edge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_algorithms::SchedulerKind;
use ses_bench::{instance, threaded_label, Threads, BENCH_THREADS};
use ses_datasets::Dataset;
use std::hint::black_box;

const K: usize = 40;
const INTERVALS: usize = 39; // k mod |T| = 1

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10a_worst_case");
    group.sample_size(10);
    for dataset in Dataset::ALL {
        let inst = instance(dataset, 5 * K, INTERVALS, 0xF1A);
        for kind in [
            SchedulerKind::Alg,
            SchedulerKind::Inc,
            SchedulerKind::Hor,
            SchedulerKind::HorI,
            SchedulerKind::Top,
        ] {
            for threads in BENCH_THREADS {
                let id = BenchmarkId::new(threaded_label(kind.name(), threads), dataset.name());
                group.bench_with_input(id, &dataset, |b, _| {
                    b.iter(|| black_box(kind.run_threaded(&inst, K, Threads::new(threads))))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
