//! **Fig 9b** (time vs locations): Unf, `k = 40`, `|T| = 26`, sweeping the
//! number of available locations. Expected: every method slows as the number
//! of locations grows (more feasible assignments survive pruning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_algorithms::SchedulerKind;
use ses_bench::{threaded_label, Threads, BENCH_THREADS, BENCH_USERS};
use ses_datasets::params::{InterestModel, SyntheticParams};
use ses_datasets::synthetic;
use std::hint::black_box;

const K: usize = 40;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_time_vs_locations/Unf");
    group.sample_size(10);
    for locations in [5usize, 10, 25, 50] {
        let inst = synthetic::generate(&SyntheticParams {
            num_users: BENCH_USERS,
            num_events: 200,
            num_intervals: 26,
            num_locations: locations,
            interest: InterestModel::Uniform,
            seed: 0xF19 + locations as u64,
            ..SyntheticParams::default()
        });
        for kind in [
            SchedulerKind::Alg,
            SchedulerKind::Inc,
            SchedulerKind::Hor,
            SchedulerKind::HorI,
            SchedulerKind::Top,
        ] {
            for threads in BENCH_THREADS {
                let id = BenchmarkId::new(threaded_label(kind.name(), threads), locations);
                group.bench_with_input(id, &locations, |b, _| {
                    b.iter(|| black_box(kind.run_threaded(&inst, K, Threads::new(threads))))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
