//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Sparse vs dense interest storage** — the same Meetup-like instance
//!    scored through both layouts. Sparse wins in proportion to sparsity;
//!    this is the engineering choice the paper's `|U|`-per-score accounting
//!    abstracts away.
//! 2. **Bound effectiveness by dataset** — the full incremental-scheme
//!    decomposition ALG → LAZY (upper-bound laziness only) → INC (+ interval
//!    organization), and HOR → HOR-I, on Zip vs Unf: the paper's §4.2.8
//!    finding that bound-based pruning pays on skewed interest and fizzles
//!    on uniform — plus where the organization itself matters.
//! 3. **Quality recovery** — HOR vs HOR+LS (local-search refinement) vs ALG.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_algorithms::SchedulerKind;
use ses_bench::{instance, threaded_label, Threads, BENCH_THREADS, BENCH_USERS};
use ses_datasets::{meetup, Dataset, MeetupParams};
use std::hint::black_box;

fn storage_ablation(c: &mut Criterion) {
    let params = MeetupParams {
        num_users: BENCH_USERS,
        num_events: 150,
        num_intervals: 20,
        ..MeetupParams::default()
    };
    let sparse_inst = meetup::generate(&params);
    let mut dense_inst = sparse_inst.clone();
    dense_inst.event_interest = sparse_inst.event_interest.to_dense().into();
    dense_inst.competing_interest = sparse_inst.competing_interest.to_dense().into();

    let mut group = c.benchmark_group("ablation_storage/Meetup");
    group.sample_size(10);
    for (label, inst) in [("sparse", &sparse_inst), ("dense", &dense_inst)] {
        for threads in BENCH_THREADS {
            let t = Threads::new(threads);
            let hor_i = BenchmarkId::new(threaded_label("HOR-I", threads), label);
            group.bench_with_input(hor_i, label, |b, _| {
                b.iter(|| black_box(SchedulerKind::HorI.run_threaded(inst, 30, t)))
            });
            let alg = BenchmarkId::new(threaded_label("ALG", threads), label);
            group.bench_with_input(alg, label, |b, _| {
                b.iter(|| black_box(SchedulerKind::Alg.run_threaded(inst, 30, t)))
            });
        }
    }
    group.finish();
}

fn bound_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bounds");
    group.sample_size(10);
    // k > |T| so both incremental schemes actually do update work.
    let k = 40;
    for dataset in [Dataset::Zip, Dataset::Unf] {
        let inst = instance(dataset, 200, 20, 0xAB1);
        for kind in [
            SchedulerKind::Alg,  // no bounds, full updates
            SchedulerKind::Lazy, // upper-bound laziness, no organization
            SchedulerKind::Inc,  // laziness + interval organization
            SchedulerKind::Hor,  // horizontal policy, no bounds
            SchedulerKind::HorI, // horizontal policy + per-interval bounds
        ] {
            for threads in BENCH_THREADS {
                let id = BenchmarkId::new(threaded_label(kind.name(), threads), dataset.name());
                group.bench_with_input(id, &dataset, |b, _| {
                    b.iter(|| black_box(kind.run_threaded(&inst, k, Threads::new(threads))))
                });
            }
        }
    }
    group.finish();
}

fn refinement_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_refinement");
    group.sample_size(10);
    let inst = instance(Dataset::Unf, 200, 60, 0xAB2);
    for kind in [SchedulerKind::Hor, SchedulerKind::RefinedHor, SchedulerKind::Alg] {
        for threads in BENCH_THREADS {
            group.bench_function(threaded_label(kind.name(), threads), |b| {
                b.iter(|| black_box(kind.run_threaded(&inst, 40, Threads::new(threads))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, storage_ablation, bound_ablation, refinement_ablation);
criterion_main!(benches);
