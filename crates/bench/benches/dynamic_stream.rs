//! Dynamic-workload bench: the cost of one incremental repair vs one full
//! recompute, per delta-op kind — the wall-clock side of the
//! examined-counter comparison the `dynamic` figure records.
//!
//! `repair/*` applies one op to a warm [`StreamScheduler`] (interest drift
//! toggles between two values so state never drifts across iterations;
//! add/remove pairs cancel out). `full_rebuild` is the cold-build baseline
//! a static system would pay per op. The t1/t4 dimension matches the other
//! benches — results are bit-identical across it.

use criterion::{criterion_group, criterion_main, Criterion};
use ses_algorithms::stream::StreamScheduler;
use ses_bench::{threaded_label, Threads, BENCH_THREADS};
use ses_core::delta::DeltaOp;
use ses_core::model::Event;
use ses_core::{EventId, LocationId};
use ses_datasets::Dataset;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Table-1 shape ratios at k = 20: |E| = 100, |T| = 30.
    let base = ses_bench::instance(Dataset::Unf, 100, 30, 0xD7);
    let k = 20;

    let mut group = c.benchmark_group("dynamic_stream");
    for threads in BENCH_THREADS {
        let t = Threads::new(threads);

        let mut stream = StreamScheduler::new(base.clone(), k, t);
        let mut flip = false;
        group.bench_function(threaded_label("repair/shift_interest", threads), |b| {
            b.iter(|| {
                flip = !flip;
                let op = DeltaOp::ShiftInterest {
                    event: EventId::new(7),
                    user: 11,
                    interest: if flip { 0.9 } else { 0.1 },
                };
                black_box(stream.apply(&op).expect("valid op"));
            })
        });

        let mut stream = StreamScheduler::new(base.clone(), k, t);
        group.bench_function(threaded_label("repair/event_churn", threads), |b| {
            b.iter(|| {
                let interest = vec![0.4; stream.instance().num_users()];
                let add =
                    DeltaOp::AddEvent { event: Event::new(LocationId::new(3), 1.0), interest };
                stream.apply(&add).expect("valid op");
                let last = EventId::new(stream.instance().num_events() - 1);
                black_box(stream.apply(&DeltaOp::RemoveEvent { event: last }).expect("valid op"));
            })
        });

        group.bench_function(threaded_label("full_rebuild", threads), |b| {
            b.iter(|| black_box(StreamScheduler::new(base.clone(), k, t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
