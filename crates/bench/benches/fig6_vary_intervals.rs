//! **Fig 6e–h** (time vs `|T|`): fixed `k = 40`, `|E| = 200`, varying the
//! number of candidate intervals. Expected: HOR/HOR-I ≈ TOP and 2–5×
//! faster than ALG, with the largest factors at few intervals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_algorithms::SchedulerKind;
use ses_bench::{instance, threaded_label, Threads, BENCH_THREADS};
use ses_datasets::Dataset;
use std::hint::black_box;

const K: usize = 40;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_time_vs_intervals/Zip");
    group.sample_size(10);
    for intervals in [8usize, 20, 40, 60] {
        let inst = instance(Dataset::Zip, 200, intervals, 0xF16 + intervals as u64);
        for kind in [
            SchedulerKind::Alg,
            SchedulerKind::Inc,
            SchedulerKind::Hor,
            SchedulerKind::HorI,
            SchedulerKind::Top,
        ] {
            for threads in BENCH_THREADS {
                let id = BenchmarkId::new(threaded_label(kind.name(), threads), intervals);
                group.bench_with_input(id, &intervals, |b, _| {
                    b.iter(|| black_box(kind.run_threaded(&inst, K, Threads::new(threads))))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
