//! **Scale baseline, 1M users** — the far end of the paper's Table-1 user
//! axis. A dense layout at this shape would need `48 events × 1M users ×
//! 8 B = 384 MB` for the event matrix alone; the compressed layout holds
//! the same bits in ~2 B/entry u16 codes, and the counter-based streaming
//! generator never materializes more than one `|U|`-long scratch column.
//! Compressed only (that is the point of the axis), tiny sample count:
//! this target exists to pin build time and resident bytes in
//! BENCH_BASELINE.json, not to resolve microsecond noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_bench::{record_gauge, threaded_label, Threads, BENCH_THREADS};
use ses_core::model::StorageKind;
use ses_core::scoring::ScoringEngine;
use ses_core::{EventId, IntervalId};
use ses_datasets::{scale, InterestModel, SyntheticParams};
use std::hint::black_box;

fn params() -> SyntheticParams {
    // Mirrors the `one_million_users_build_compressed` proof test in
    // ses-datasets: Unf interest, 48 events, 8 intervals, 256 levels.
    SyntheticParams {
        num_users: 1_000_000,
        num_events: 48,
        num_intervals: 8,
        competing_per_interval: (1, 4),
        interest: InterestModel::Uniform,
        interest_levels: 256,
        seed: 0x1_000_000,
        ..SyntheticParams::default()
    }
}

fn bench(c: &mut Criterion) {
    let p = params();
    let mut group = c.benchmark_group("scale_1m");
    group.sample_size(2);

    group.bench_with_input(BenchmarkId::new("build", "compressed"), &p, |b, p| {
        b.iter(|| black_box(scale::build(p, StorageKind::Compressed)))
    });

    let inst = scale::build(&p, StorageKind::Compressed);
    record_gauge("scale_1m/heap_bytes/compressed", inst.event_interest.heap_bytes() as u64);
    record_gauge("scale_1m/heap_bytes/instance_compressed", inst.heap_bytes() as u64);

    group.sample_size(5);
    for threads in BENCH_THREADS {
        let t = threaded_label("compressed", threads);
        let mut engine = ScoringEngine::with_threads(&inst, Threads::new(threads));
        engine.apply(EventId::new(1), IntervalId::new(0));
        group.bench_with_input(BenchmarkId::new("assignment_score", &t), &t, |b, _| {
            b.iter(|| black_box(engine.assignment_score(EventId::new(0), IntervalId::new(0))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
