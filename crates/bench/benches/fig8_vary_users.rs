//! **Fig 8a–b** (time vs `|U|`): Unf dataset, `k = 40`; (a) `|T| = 60`
//! (k < |T|, no HOR-I) and (b) `|T| = 26` (the "average case" where HOR-I
//! participates). Expected: every method scales linearly in `|U|`; HOR and
//! HOR-I pull away from ALG as users grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_algorithms::SchedulerKind;
use ses_bench::{threaded_label, Threads, BENCH_THREADS};
use ses_datasets::Dataset;
use std::hint::black_box;

const K: usize = 40;
const EVENTS: usize = 200;

fn bench(c: &mut Criterion) {
    for (label, intervals, with_hor_i) in [("T60", 60usize, false), ("T26", 26usize, true)] {
        let mut group = c.benchmark_group(format!("fig8_time_vs_users/{label}"));
        group.sample_size(10);
        for users in [100usize, 250, 500] {
            let inst = Dataset::Unf.build(users, EVENTS, intervals, 0xF18 + users as u64);
            let mut kinds = vec![SchedulerKind::Alg, SchedulerKind::Inc, SchedulerKind::Hor];
            if with_hor_i {
                kinds.push(SchedulerKind::HorI);
            }
            kinds.push(SchedulerKind::Top);
            for kind in kinds {
                for threads in BENCH_THREADS {
                    let id = BenchmarkId::new(threaded_label(kind.name(), threads), users);
                    group.bench_with_input(id, &users, |b, _| {
                        b.iter(|| black_box(kind.run_threaded(&inst, K, Threads::new(threads))))
                    });
                }
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
