//! **Durability baseline, 100k users** — the cost of crash safety at the
//! paper's scale axis: snapshot write (`Persist` = fold + fsync + rename),
//! snapshot load (`Restore` = read + checksum + parse + rebuild), log
//! replay on top of a snapshot, and the per-request write-ahead-log
//! append that every acknowledged mutation pays. Gauges record the
//! snapshot's on-disk size alongside the timings.
//!
//! The session state is a 100k-user Zipf instance in the sparse layout
//! (mutation replay is layout-dependent; sparse keeps a `ShiftInterest`
//! cheap, which isolates the durability cost from storage-layout cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_algorithms::{DurableService, Request, Response};
use ses_bench::{record_gauge, Threads};
use ses_core::delta::DeltaOp;
use ses_core::durable::{generations, snapshot_path};
use ses_core::model::StorageKind;
use ses_core::EventId;
use ses_datasets::{scale, InterestModel, SyntheticParams};
use std::hint::black_box;

const USERS: usize = 100_000;

fn params() -> SyntheticParams {
    SyntheticParams {
        num_users: USERS,
        num_events: 60,
        num_intervals: 18,
        competing_per_interval: (1, 3),
        interest: InterestModel::Zipf { s: 2.0 },
        interest_levels: 256,
        seed: 0x9E_5157,
        ..SyntheticParams::default()
    }
}

fn shift(i: u64) -> Request {
    Request::ApplyOps {
        ops: vec![DeltaOp::ShiftInterest {
            event: EventId::new((i % 60) as usize),
            user: (i as usize * 7919) % USERS,
            interest: (i % 11) as f64 / 10.0,
        }],
        window: None,
    }
}

fn assert_ok(resp: &Response) {
    assert!(!matches!(resp, Response::Error { .. }), "{resp:?}");
}

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("ses-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let inst = scale::build(&params(), StorageKind::Sparse);
    // snapshot_every = 0 disables auto-compaction: the bench triggers
    // every fold explicitly through `Persist`.
    let (mut svc, report) =
        DurableService::open(&dir, inst, Threads::new(1), 0).expect("open state dir");
    assert!(report.fresh);

    // Warm state worth snapshotting: a schedule plus a few logged ops.
    assert_ok(&svc.handle(&Request::Schedule {
        algorithm: "INC".into(),
        k: 12,
        threads: None,
        gate: false,
        profile: false,
        constraints: None,
    }));
    for i in 0..4 {
        assert_ok(&svc.handle(&shift(i)));
    }

    let mut group = c.benchmark_group("persist_restore");
    group.sample_size(5);

    // Fold-to-snapshot: serialize session state, write-to-temp, checksum,
    // fsync, atomic rename, retire old generations.
    group.bench_with_input(BenchmarkId::new("persist", "100k"), &USERS, |b, _| {
        b.iter(|| assert_ok(&black_box(svc.handle(&Request::Persist))))
    });

    // Snapshot size on disk, riding the same baseline stream.
    let gen = generations(&dir).unwrap().last().copied().unwrap();
    let snapshot_bytes = std::fs::metadata(snapshot_path(&dir, gen)).unwrap().len();
    record_gauge("persist_restore/snapshot_bytes/100k", snapshot_bytes);

    // Pure snapshot load: the log is empty right after a Persist, so
    // Restore measures read + CRC check + parse + service rebuild.
    group.bench_with_input(BenchmarkId::new("restore", "100k"), &USERS, |b, _| {
        b.iter(|| assert_ok(&black_box(svc.handle(&Request::Restore))))
    });

    // The write-ahead tax per acknowledged mutation: encode + append +
    // fsync + apply.
    let mut i = 100u64;
    group.bench_with_input(BenchmarkId::new("logged_apply", "100k"), &USERS, |b, _| {
        b.iter(|| {
            i += 1;
            assert_ok(&black_box(svc.handle(&shift(i))))
        })
    });

    // Recovery with a log tail: compact, append 64 records, then restore
    // repeatedly — each iteration replays all 64 on top of the snapshot.
    assert_ok(&svc.handle(&Request::Persist));
    for i in 0..64 {
        assert_ok(&svc.handle(&shift(1000 + i)));
    }
    group.sample_size(3);
    group.bench_with_input(BenchmarkId::new("restore_replay64", "100k"), &USERS, |b, _| {
        b.iter(|| assert_ok(&black_box(svc.handle(&Request::Restore))))
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
