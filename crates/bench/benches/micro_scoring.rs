//! Microbenchmarks of the scoring engine — the inner loop every algorithm
//! spends its time in: one Eq.-4 evaluation over a dense vs sparse column,
//! one mass `apply`, and the engine construction (competing-mass
//! aggregation, the `O(|U|·|C|)` setup term).
//!
//! Every engine bench carries a threads dimension (`t1` vs `t4`): scores
//! are bit-identical across it (fixed-block reduction), so the ratio
//! isolates the pure dispatch cost / fan-out payoff. The `dense` instance
//! (2 000 users = 4 summation blocks) sits near the break-even point; the
//! `dense20k` instance (40 blocks) is where per-score fan-out pays on
//! multi-core hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_bench::{threaded_label, Threads, BENCH_THREADS};
use ses_core::scoring::ScoringEngine;
use ses_core::{EventId, IntervalId};
use ses_datasets::{meetup, Dataset, MeetupParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Dense instance: 2 000 users, every column full.
    let dense = Dataset::Concerts.build(2_000, 50, 10, 0x3C0);
    // Large dense instance: 20 000 users — enough reduction blocks for the
    // per-score fan-out to amortize pool dispatch.
    let dense_large = Dataset::Concerts.build(20_000, 20, 10, 0x3C1);
    // Sparse instance: Meetup-like, ~30% fill.
    let sparse = meetup::generate(&MeetupParams {
        num_users: 2_000,
        num_events: 50,
        num_intervals: 10,
        ..MeetupParams::default()
    });

    let mut group = c.benchmark_group("micro_scoring");
    for (label, inst) in [("dense", &dense), ("dense20k", &dense_large), ("sparse", &sparse)] {
        for threads in BENCH_THREADS {
            let t = threaded_label(label, threads);
            let mut engine = ScoringEngine::with_threads(inst, Threads::new(threads));
            engine.apply(EventId::new(1), IntervalId::new(0));
            group.bench_with_input(BenchmarkId::new("assignment_score", &t), &t, |b, _| {
                b.iter(|| black_box(engine.assignment_score(EventId::new(0), IntervalId::new(0))))
            });
            group.bench_with_input(BenchmarkId::new("score_bound", &t), &t, |b, _| {
                b.iter(|| black_box(engine.score_bound(EventId::new(0), IntervalId::new(0))))
            });
            group.bench_with_input(BenchmarkId::new("apply_unapply", &t), &t, |b, _| {
                b.iter(|| {
                    engine.apply(EventId::new(2), IntervalId::new(3));
                    engine.unapply(EventId::new(2), IntervalId::new(3));
                })
            });
            group.bench_with_input(BenchmarkId::new("engine_new", &t), &t, |b, _| {
                b.iter(|| black_box(ScoringEngine::with_threads(inst, Threads::new(threads))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
