//! Microbenchmarks of the scoring engine — the inner loop every algorithm
//! spends its time in: one Eq.-4 evaluation over a dense vs sparse column,
//! one mass `apply`, and the engine construction (competing-mass
//! aggregation, the `O(|U|·|C|)` setup term).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_core::scoring::ScoringEngine;
use ses_core::{EventId, IntervalId};
use ses_datasets::{meetup, Dataset, MeetupParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Dense instance: 2 000 users, every column full.
    let dense = Dataset::Concerts.build(2_000, 50, 10, 0x3C0);
    // Sparse instance: Meetup-like, ~30% fill.
    let sparse = meetup::generate(&MeetupParams {
        num_users: 2_000,
        num_events: 50,
        num_intervals: 10,
        ..MeetupParams::default()
    });

    let mut group = c.benchmark_group("micro_scoring");
    for (label, inst) in [("dense", &dense), ("sparse", &sparse)] {
        let mut engine = ScoringEngine::new(inst);
        engine.apply(EventId::new(1), IntervalId::new(0));
        group.bench_with_input(BenchmarkId::new("assignment_score", label), label, |b, _| {
            b.iter(|| black_box(engine.assignment_score(EventId::new(0), IntervalId::new(0))))
        });
        group.bench_with_input(BenchmarkId::new("apply_unapply", label), label, |b, _| {
            b.iter(|| {
                engine.apply(EventId::new(2), IntervalId::new(3));
                engine.unapply(EventId::new(2), IntervalId::new(3));
            })
        });
        group.bench_with_input(BenchmarkId::new("engine_new", label), label, |b, _| {
            b.iter(|| black_box(ScoringEngine::new(inst)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
