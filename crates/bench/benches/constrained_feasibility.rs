//! Constraint-layer bench: what the feasibility gate costs, micro and
//! macro.
//!
//! `gate/*` times a sweep of `Schedule::check_assign` over the full
//! assignment universe against a half-built schedule — `empty` is the
//! short-circuit path every unconstrained run takes (the hook must be
//! free when unused), `mixed` pays real capacity/conflict/precedence
//! lookups on every candidate. `inc/*` is the macro view: one end-to-end
//! INC run, free vs the seeded `mixed` family, across the t1/t4
//! dimension (results are bit-identical across it, as everywhere).

use criterion::{criterion_group, criterion_main, Criterion};
use ses_algorithms::SchedulerKind;
use ses_bench::{threaded_label, Threads, BENCH_THREADS};
use ses_core::schedule::Schedule;
use ses_datasets::{ConstraintFamily, Dataset};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Table-1 shape ratios at k = 20: |E| = 100, |T| = 30.
    let free = ses_bench::instance(Dataset::Unf, 100, 30, 0xC6);
    let mut constrained = free.clone();
    ConstraintFamily::Mixed.apply(&mut constrained, 0xC6);
    let k = 20;

    let mut group = c.benchmark_group("constrained_feasibility");

    // Micro: the admission gate over every (event, interval) candidate,
    // probed against a half-full greedy schedule.
    for (label, inst) in [("gate/empty", &free), ("gate/mixed", &constrained)] {
        let mut schedule = Schedule::new(inst);
        for (e, t) in inst.assignment_universe() {
            if schedule.len() < k / 2 && schedule.check_assign(inst, e, t).is_ok() {
                schedule.assign(inst, e, t).expect("checked valid");
            }
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                let admitted = inst
                    .assignment_universe()
                    .filter(|&(e, t)| schedule.check_assign(inst, e, t).is_ok())
                    .count();
                black_box(admitted)
            })
        });
    }

    // Macro: a full INC run with the gate live on every candidate.
    for threads in BENCH_THREADS {
        let t = Threads::new(threads);
        for (label, inst) in [("inc/free", &free), ("inc/mixed", &constrained)] {
            group.bench_function(threaded_label(label, threads), |b| {
                b.iter(|| black_box(SchedulerKind::Inc.run_threaded(inst, k, t)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
