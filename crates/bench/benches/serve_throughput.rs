//! **Network-serving baseline** — sustained requests/sec through the
//! multi-session [`SessionManager`] at N sessions × M concurrent clients,
//! measured at the wire boundary (`handle_line`: decode, route, answer,
//! encode) so the number is what a TCP connection thread actually pays,
//! minus only the socket itself.
//!
//! Three traffic shapes bracket the design space of the published-view
//! concurrency model:
//!
//! * `reads_1s4c` — four clients hammering `Query`/`Snapshot` on one
//!   session: the lock-free read path under maximal sharing;
//! * `mixed_4s4c` — four sessions, one client each, every client mixing
//!   mutations and reads: the multiplexing steady state with no
//!   cross-client contention;
//! * `contended_1s4c` — one session, one mutating client racing three
//!   readers: reads answering from the published view while the writer
//!   serializes (the tentpole's reads-never-block claim, as a timing).
//!
//! Each iteration drives a fixed batch of requests per client, so the
//! reported time is `batch × clients` requests; requests/sec falls out as
//! `(REQS_PER_CLIENT × clients) / time`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_algorithms::service::wire;
use ses_algorithms::service::Query;
use ses_algorithms::{Request, SessionManager};
use ses_bench::{instance, Threads};
use ses_core::delta::DeltaOp;
use ses_core::EventId;
use ses_datasets::Dataset;
use std::hint::black_box;
use std::sync::Arc;

/// Requests each client sends per measured iteration.
const REQS_PER_CLIENT: usize = 64;

fn manager(sessions: &[&str]) -> Arc<SessionManager> {
    let inst = instance(Dataset::Unf, 24, 6, 0x5E5);
    let (m, _) = SessionManager::new(inst, Threads::new(1), None, 1024, 16).expect("boot");
    for s in sessions {
        m.open(s).expect("open");
    }
    Arc::new(m)
}

/// A deterministic read-mostly request mix addressed to one session.
fn read_lines(session: &str) -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..REQS_PER_CLIENT {
        let req = match i % 4 {
            0 => Request::Snapshot,
            1 => Request::Query { query: Query::Event { event: i % 24 } },
            2 => Request::Query { query: Query::User { user: (i * 7) % 150 } },
            _ => Request::Query { query: Query::Interval { interval: i % 6 } },
        };
        lines.push(wire::encode_request_for(session, &req));
    }
    lines
}

/// A mutation-heavy mix: small op batches with reads interleaved.
fn write_lines(session: &str) -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..REQS_PER_CLIENT {
        let req = if i % 4 == 3 {
            Request::Snapshot
        } else {
            Request::ApplyOps {
                ops: vec![DeltaOp::ShiftInterest {
                    event: EventId::new(i % 24),
                    user: (i * 13) % 150,
                    interest: (i % 10) as f64 / 10.0,
                }],
                window: None,
            }
        };
        lines.push(wire::encode_request_for(session, &req));
    }
    lines
}

/// Runs one client batch on the calling thread.
fn drive(m: &SessionManager, lines: &[String]) {
    for line in lines {
        let resp = m.handle_line(line);
        debug_assert!(!resp.contains("\"Error\""), "{resp}");
        black_box(resp);
    }
}

/// Fans `scripts` out to one thread each and joins — one measured
/// iteration of an N-session × M-client burst.
fn drive_concurrent(m: &Arc<SessionManager>, scripts: &[Arc<Vec<String>>]) {
    let handles: Vec<_> = scripts
        .iter()
        .map(|script| {
            let m = Arc::clone(m);
            let script = Arc::clone(script);
            std::thread::spawn(move || drive(&m, &script))
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);

    // Lock-free reads, one shared session, four clients.
    {
        let m = manager(&[]);
        // Publish a schedule so reads observe a non-trivial state.
        let warm = wire::encode_request(&Request::Schedule {
            algorithm: "INC".into(),
            k: 6,
            threads: None,
            gate: false,
            profile: false,
            constraints: None,
        });
        assert!(!m.handle_line(&warm).contains("\"Error\""));
        let scripts: Vec<Arc<Vec<String>>> =
            (0..4).map(|_| Arc::new(read_lines("default"))).collect();
        group.bench_with_input(BenchmarkId::new("reads_1s4c", REQS_PER_CLIENT * 4), &0, |b, _| {
            b.iter(|| drive_concurrent(&m, &scripts))
        });
    }

    // Multiplexed steady state: four sessions, one client each, mixed
    // mutate/read traffic.
    {
        let names = ["s0", "s1", "s2", "s3"];
        let m = manager(&names);
        let scripts: Vec<Arc<Vec<String>>> =
            names.iter().map(|s| Arc::new(write_lines(s))).collect();
        group.bench_with_input(BenchmarkId::new("mixed_4s4c", REQS_PER_CLIENT * 4), &0, |b, _| {
            b.iter(|| drive_concurrent(&m, &scripts))
        });
    }

    // Contended single session: one writer, three readers.
    {
        let m = manager(&[]);
        let mut scripts = vec![Arc::new(write_lines("default"))];
        scripts.extend((0..3).map(|_| Arc::new(read_lines("default"))));
        group.bench_with_input(
            BenchmarkId::new("contended_1s4c", REQS_PER_CLIENT * 4),
            &0,
            |b, _| b.iter(|| drive_concurrent(&m, &scripts)),
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
