//! **Fig 10b** (search space): ALG vs INC across the nine parameter
//! configurations, on the simulated Meetup dataset. Criterion measures
//! time here; the assignments-examined counts the paper plots are printed
//! once per configuration before sampling (and regenerated exactly by
//! `ses experiment fig10b`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_algorithms::SchedulerKind;
use ses_bench::{threaded_label, Threads, BENCH_THREADS, BENCH_USERS};
use ses_datasets::Dataset;
use std::hint::black_box;

/// Bench-scale renditions of the paper's nine Fig-10b configurations
/// (label, k, |E|, |T|) — one-fifth of the paper's sizes.
const CONFIGS: [(&str, usize, usize, usize); 9] = [
    ("k=10", 10, 50, 15),
    ("k=20", 20, 100, 30),
    ("k=40", 40, 200, 60),
    ("T=20", 20, 100, 20),
    ("T=40", 20, 100, 40),
    ("T=60", 20, 100, 60),
    ("E=20", 20, 20, 30),
    ("E=100", 20, 100, 30),
    ("E=200", 20, 200, 30),
];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10b_search_space/Meetup");
    group.sample_size(10);
    for (i, (label, k, events, intervals)) in CONFIGS.into_iter().enumerate() {
        let inst = Dataset::Meetup.build(BENCH_USERS, events, intervals, 0xF1B + i as u64);
        for kind in [SchedulerKind::Alg, SchedulerKind::Inc] {
            // Print the figure's actual metric once, outside sampling.
            let examined = kind.run(&inst, k).stats.assignments_examined;
            eprintln!("fig10b {label} {}: {examined} assignments examined", kind.name());
            for threads in BENCH_THREADS {
                let id = BenchmarkId::new(threaded_label(kind.name(), threads), label);
                group.bench_with_input(id, &k, |b, &k| {
                    b.iter(|| black_box(kind.run_threaded(&inst, k, Threads::new(threads))))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
