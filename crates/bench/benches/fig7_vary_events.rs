//! **Fig 7c–d** (time vs `|E|`): fixed `k = 40`, `|T| = 60` (k < |T| ⇒
//! HOR-I ≡ HOR, dropped per the paper), varying the candidate pool.
//! Expected: the ALG-vs-proposed gap widens with `|E|` (more update work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_algorithms::SchedulerKind;
use ses_bench::{instance, threaded_label, Threads, BENCH_THREADS};
use ses_datasets::Dataset;
use std::hint::black_box;

const K: usize = 40;
const INTERVALS: usize = 60;

fn bench(c: &mut Criterion) {
    for dataset in [Dataset::Concerts, Dataset::Unf] {
        let mut group = c.benchmark_group(format!("fig7_time_vs_events/{}", dataset.name()));
        group.sample_size(10);
        for events in [50usize, 150, 300] {
            let inst = instance(dataset, events, INTERVALS, 0xF17 + events as u64);
            for kind in
                [SchedulerKind::Alg, SchedulerKind::Inc, SchedulerKind::Hor, SchedulerKind::Top]
            {
                for threads in BENCH_THREADS {
                    let id = BenchmarkId::new(threaded_label(kind.name(), threads), events);
                    group.bench_with_input(id, &events, |b, _| {
                        b.iter(|| black_box(kind.run_threaded(&inst, K, Threads::new(threads))))
                    });
                }
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
