//! **Scale baseline, 100k users** — the first point on the paper's
//! million-user axis (Table 1 runs |U| up to 1M; the committed figure
//! benches stop at bench scale). One Zipf workload, quantized to 256
//! interest levels, measured three ways:
//!
//! * build time for the sparse and compressed layouts via the
//!   counter-based streaming generator ([`ses_datasets::scale::build`]);
//! * resident interest bytes for both layouts, recorded as gauges riding
//!   the same baseline stream as the timings — the bench **asserts** the
//!   acceptance bar `compressed ≤ sparse / 3` before recording;
//! * steady-state work on the compressed layout: one Eq.-4
//!   `assignment_score` (t1/t4, bit-identical across the dimension) and
//!   one INC end-to-end schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_algorithms::SchedulerKind;
use ses_bench::{record_gauge, threaded_label, Threads, BENCH_THREADS};
use ses_core::model::StorageKind;
use ses_core::scoring::ScoringEngine;
use ses_core::{EventId, IntervalId};
use ses_datasets::{scale, InterestModel, SyntheticParams};
use std::hint::black_box;

const USERS: usize = 100_000;
const K: usize = 12;

fn params() -> SyntheticParams {
    SyntheticParams {
        num_users: USERS,
        num_events: 5 * K,
        num_intervals: 3 * K / 2,
        competing_per_interval: (1, 3),
        interest: InterestModel::Zipf { s: 2.0 },
        interest_levels: 256,
        seed: 0x100_000,
        ..SyntheticParams::default()
    }
}

fn bench(c: &mut Criterion) {
    let p = params();
    let mut group = c.benchmark_group("scale_100k");
    group.sample_size(5);

    for kind in [StorageKind::Sparse, StorageKind::Compressed] {
        group.bench_with_input(BenchmarkId::new("build", kind.name()), &kind, |b, &k| {
            b.iter(|| black_box(scale::build(&p, k)))
        });
    }

    let sparse = scale::build(&p, StorageKind::Sparse);
    let compressed = scale::build(&p, StorageKind::Compressed);
    let (sb, cb) = (sparse.event_interest.heap_bytes(), compressed.event_interest.heap_bytes());
    assert!(
        cb * 3 <= sb,
        "acceptance bar: compressed interest ({cb} B) must be <= 1/3 of sparse ({sb} B)"
    );
    record_gauge("scale_100k/heap_bytes/sparse", sb as u64);
    record_gauge("scale_100k/heap_bytes/compressed", cb as u64);
    record_gauge("scale_100k/heap_bytes/instance_compressed", compressed.heap_bytes() as u64);
    drop(sparse);

    for threads in BENCH_THREADS {
        let t = threaded_label("compressed", threads);
        let mut engine = ScoringEngine::with_threads(&compressed, Threads::new(threads));
        engine.apply(EventId::new(1), IntervalId::new(0));
        group.bench_with_input(BenchmarkId::new("assignment_score", &t), &t, |b, _| {
            b.iter(|| black_box(engine.assignment_score(EventId::new(0), IntervalId::new(0))))
        });
    }

    // One end-to-end INC schedule at 100k users: the layer every layout
    // change must leave bit-identical, timed on the compressed backend.
    group.sample_size(3);
    group.bench_with_input(BenchmarkId::new("inc_end_to_end", "compressed/t4"), &K, |b, &k| {
        b.iter(|| black_box(SchedulerKind::Inc.run_threaded(&compressed, k, Threads::new(4))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
