//! **Fig 5i–l** (time vs `k`): ALG vs INC vs HOR vs HOR-I vs TOP as the
//! number of scheduled events grows, on a skew (Zip) and a homogeneous
//! (Unf) dataset. Expected ordering: ALG slowest; HOR-I fastest of the
//! greedy methods; the ALG gap widens with `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ses_algorithms::SchedulerKind;
use ses_bench::{instance_for_k, threaded_label, Threads, BENCH_THREADS};
use ses_datasets::Dataset;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for dataset in [Dataset::Zip, Dataset::Unf] {
        let mut group = c.benchmark_group(format!("fig5_time_vs_k/{}", dataset.name()));
        group.sample_size(10);
        for k in [25usize, 50, 100] {
            let inst = instance_for_k(dataset, k, 0xF15 + k as u64);
            for kind in [
                SchedulerKind::Alg,
                SchedulerKind::Inc,
                SchedulerKind::Hor,
                SchedulerKind::HorI,
                SchedulerKind::Top,
            ] {
                for threads in BENCH_THREADS {
                    let id = BenchmarkId::new(threaded_label(kind.name(), threads), k);
                    group.bench_with_input(id, &k, |b, &k| {
                        b.iter(|| black_box(kind.run_threaded(&inst, k, Threads::new(threads))))
                    });
                }
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
