//! Windowed-ingestion bench: one 32-op redundant window repaired as a
//! single coalesced batch vs op-at-a-time — the wall-clock side of the
//! `windowed` figure's ops/sec comparison, on the bursty-redundant
//! workload windowing exists for (most of the window is drift re-writes
//! of a few hot cells plus an add/remove pair that cancels outright).
//!
//! The window is state-neutral by construction: drift values flip
//! between two sets per iteration and the event add/remove pairs cancel,
//! so the instance never drifts across Criterion iterations. Dividing 32
//! by the per-window median gives sustained ops/sec; the coalesced
//! median must stay at or below the op-at-a-time one (BENCH_BASELINE.json
//! records both). `coalesce_only` isolates the cost of the coalescing
//! pass itself. The t1/t4 dimension matches the other benches — results
//! are bit-identical across it.

use criterion::{criterion_group, criterion_main, Criterion};
use ses_algorithms::stream::StreamScheduler;
use ses_bench::{threaded_label, Threads, BENCH_THREADS};
use ses_core::delta::coalesce::coalesce;
use ses_core::delta::DeltaOp;
use ses_core::model::Event;
use ses_core::{EventId, LocationId};
use ses_datasets::Dataset;
use std::hint::black_box;

/// Ops per window; the bench names carry it as `w32`.
const WINDOW: usize = 32;

/// A 32-op redundant window against the bench instance: 28 interest
/// drifts hammering four hot cells (seven writes each, only the last
/// per cell surviving coalescing), then two add/remove event pairs that
/// cancel outright. The surviving batch is 4 ops.
fn window(flip: bool, num_events: usize, num_users: usize) -> Vec<DeltaOp> {
    let cells: [(usize, usize); 4] = [(7, 11), (3, 42), (12, 97), (21, 5)];
    let mut ops = Vec::with_capacity(WINDOW);
    for rep in 0..7 {
        for (i, &(e, u)) in cells.iter().enumerate() {
            let wobble = 0.05 * ((rep * 4 + i) % 5) as f64;
            let interest = if flip { 0.7 + wobble } else { 0.1 + wobble };
            ops.push(DeltaOp::ShiftInterest { event: EventId::new(e), user: u, interest });
        }
    }
    for _ in 0..2 {
        ops.push(DeltaOp::AddEvent {
            event: Event::new(LocationId::new(3), 1.0),
            interest: vec![0.4; num_users],
        });
        ops.push(DeltaOp::RemoveEvent { event: EventId::new(num_events) });
    }
    assert_eq!(ops.len(), WINDOW);
    ops
}

fn bench(c: &mut Criterion) {
    // Table-1 shape ratios at k = 20: |E| = 100, |T| = 30.
    let base = ses_bench::instance(Dataset::Unf, 100, 30, 0xD7);
    let k = 20;
    let (ne, nu) = (base.num_events(), base.num_users());

    let mut group = c.benchmark_group("windowed_stream");
    for threads in BENCH_THREADS {
        let t = Threads::new(threads);

        let mut stream = StreamScheduler::new(base.clone(), k, t);
        let mut flip = false;
        group.bench_function(threaded_label("coalesced/w32", threads), |b| {
            b.iter(|| {
                flip = !flip;
                let w = window(flip, ne, nu);
                black_box(stream.repair_batch(&w).expect("valid window"));
            })
        });

        let mut stream = StreamScheduler::new(base.clone(), k, t);
        let mut flip = false;
        group.bench_function(threaded_label("op_at_a_time/w32", threads), |b| {
            b.iter(|| {
                flip = !flip;
                for op in window(flip, ne, nu) {
                    black_box(stream.apply(&op).expect("valid op"));
                }
            })
        });

        let w = window(true, ne, nu);
        group.bench_function(threaded_label("coalesce_only/w32", threads), |b| {
            b.iter(|| black_box(coalesce(&base, &w).expect("valid window")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
