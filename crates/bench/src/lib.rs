//! Shared helpers for the Criterion benches.
//!
//! Every bench mirrors one figure of the paper at **bench scale**: the
//! paper's parameter ratios (Table 1) at a user count small enough for
//! Criterion's repeated sampling. Absolute times differ from the paper's
//! Xeon runs by design; the *orderings* (who is faster, where crossovers
//! fall) are the reproduction target — see EXPERIMENTS.md.

use ses_core::model::Instance;
use ses_datasets::Dataset;

pub use ses_core::parallel::Threads;

/// Users per bench instance.
pub const BENCH_USERS: usize = 150;

/// The thread counts every bench target sweeps (sequential reference vs a
/// small pool). Results are bit-identical across the dimension — only the
/// timing differs — so the same bench id doubles as a differential check.
pub const BENCH_THREADS: [usize; 2] = [1, 4];

/// Bench id component for a scheduler at a thread count, e.g. `ALG/t4`.
pub fn threaded_label(name: &str, threads: usize) -> String {
    format!("{name}/t{threads}")
}

/// Builds a bench-scale instance with the Table-1 shape ratios for a given
/// `k`: `|E| = 5k`, `|T| = 3k/2`.
pub fn instance_for_k(dataset: Dataset, k: usize, seed: u64) -> Instance {
    dataset.build(BENCH_USERS, 5 * k, (3 * k / 2).max(1), seed)
}

/// Builds a bench-scale instance with explicit shape.
pub fn instance(dataset: Dataset, events: usize, intervals: usize, seed: u64) -> Instance {
    dataset.build(BENCH_USERS, events, intervals, seed)
}
