//! Shared helpers for the Criterion benches.
//!
//! Every bench mirrors one figure of the paper at **bench scale**: the
//! paper's parameter ratios (Table 1) at a user count small enough for
//! Criterion's repeated sampling. Absolute times differ from the paper's
//! Xeon runs by design; the *orderings* (who is faster, where crossovers
//! fall) are the reproduction target — see EXPERIMENTS.md.

use ses_core::model::Instance;
use ses_datasets::Dataset;

pub use ses_core::parallel::Threads;

/// Users per bench instance.
pub const BENCH_USERS: usize = 150;

/// The thread counts every bench target sweeps (sequential reference vs a
/// small pool). Results are bit-identical across the dimension — only the
/// timing differs — so the same bench id doubles as a differential check.
pub const BENCH_THREADS: [usize; 2] = [1, 4];

/// Bench id component for a scheduler at a thread count, e.g. `ALG/t4`.
pub fn threaded_label(name: &str, threads: usize) -> String {
    format!("{name}/t{threads}")
}

/// Builds a bench-scale instance with the Table-1 shape ratios for a given
/// `k`: `|E| = 5k`, `|T| = 3k/2`.
pub fn instance_for_k(dataset: Dataset, k: usize, seed: u64) -> Instance {
    dataset.build(BENCH_USERS, 5 * k, (3 * k / 2).max(1), seed)
}

/// Builds a bench-scale instance with explicit shape.
pub fn instance(dataset: Dataset, events: usize, intervals: usize, seed: u64) -> Instance {
    dataset.build(BENCH_USERS, events, intervals, seed)
}

/// Records one deterministic gauge (e.g. resident bytes) into the
/// `CRITERION_JSON` stream, using the same line schema as timing results so
/// `ses bench-baseline` picks it up alongside the medians. The value lands
/// in the `median_ns`/`mean_ns`/`min_ns` fields verbatim; the id should make
/// the unit obvious (e.g. `scale_100k/heap_bytes/compressed`). No-op when
/// `CRITERION_JSON` is unset. Failures are reported, never fatal.
pub fn record_gauge(id: &str, value: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else { return };
    if path.is_empty() {
        return;
    }
    eprintln!("{id:<56} gauge {value:>14}");
    let line = format!(
        "{{\"id\":\"{id}\",\"median_ns\":{value},\"mean_ns\":{value},\"min_ns\":{value},\"samples\":1}}\n"
    );
    use std::io::Write as _;
    let res = std::fs::OpenOptions::new().create(true).append(true).open(&path);
    if let Err(e) = res.and_then(|mut f| f.write_all(line.as_bytes())) {
        eprintln!("bench: cannot append gauge to CRITERION_JSON={path}: {e}");
    }
}
