//! Scenario constraints layered over the paper's feasibility model:
//! per-venue capacities, mutually-exclusive event pairs, and precedence.
//!
//! §2.1 makes a schedule feasible when no interval double-books a location
//! and no interval exceeds the resource budget θ. Real event scheduling
//! adds organizer-level rules that the paper's model cannot express:
//!
//! * **venue capacity** — a location may host at most `c` interval-slots
//!   across the whole schedule (an event of duration `d` consumes `d`
//!   slots), modelling venues rented for a bounded number of sessions;
//! * **conflict pairs** — two events that must never both be scheduled
//!   (shared headliner, mutually-exclusive sponsorships); cliques expand
//!   into pairs;
//! * **precedence** — event `a` must *finish* before event `b` starts,
//!   whenever both are scheduled.
//!
//! [`ConstraintSet`] carries the rules, [`ConstraintSet::validate`] rejects
//! malformed sets at build time (dangling event ids, zero capacities,
//! self-references, precedence cycles), and [`ConstraintSet::check`] is the
//! single *feasibility gate* every candidate generator consults — it is
//! called from [`Schedule::check_assign`], so ALG/INC/HOR/HOR-I/LAZY/TOP/
//! RANDOM/REFINE/EXACT, the stream repairer, and the bound-first gate all
//! admit candidates through the same predicate with zero per-scheduler
//! code. Scores are constraint-independent (constraints only gate
//! *admission*), so the scoring kernel and its reduction geometry are
//! untouched and every bit-identity invariant carries over verbatim.
//!
//! ## Downward closure (why greedy and EXACT stay sound)
//!
//! All three rule families are *downward-closed*: removing an assignment
//! from a feasible schedule never creates a violation. Venue usage only
//! shrinks, a conflict needs both endpoints scheduled, and a precedence
//! edge is checked only when both endpoints are scheduled. Consequently
//! every prefix of a feasible schedule is feasible, which is exactly what
//! greedy insertion and EXACT's skip-or-assign enumeration (in event-id
//! order) need to remain complete over the constrained space.
//!
//! ## Example
//!
//! ```
//! use ses_core::constraints::ConstraintSet;
//! use ses_core::ids::{EventId, LocationId};
//!
//! let mut cs = ConstraintSet::new();
//! cs.set_venue_capacity(LocationId::new(0), 2);
//! cs.add_conflict(EventId::new(0), EventId::new(1));
//! cs.add_precedence(EventId::new(1), EventId::new(2));
//! assert_eq!(cs.len(), 3);
//!
//! // Well-formed against a 3-event instance…
//! assert!(cs.validate(3).is_ok());
//! // …but event id 2 dangles when only 2 events exist.
//! assert!(cs.validate(2).is_err());
//!
//! // Rules are queryable both ways; conflicts are unordered.
//! assert!(cs.has_conflict(EventId::new(1), EventId::new(0)));
//! assert!(cs.has_precedence(EventId::new(1), EventId::new(2)));
//! assert!(!cs.has_precedence(EventId::new(2), EventId::new(1)));
//!
//! // Cycle probes guard churn before it happens.
//! assert!(cs.precedence_would_cycle(EventId::new(2), EventId::new(1)));
//! ```
//!
//! [`Schedule::check_assign`]: crate::schedule::Schedule::check_assign

use crate::error::{BuildError, ScheduleError};
use crate::ids::{EventId, LocationId};
use crate::model::Instance;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// A per-venue capacity: location `location` may host at most `capacity`
/// interval-slots across the whole schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VenueCapacity {
    /// The constrained location.
    pub location: LocationId,
    /// Maximum interval-slots hosted there (`≥ 1`; an event of duration
    /// `d` consumes `d` slots).
    pub capacity: u32,
}

/// A mutual-exclusion pair: `a` and `b` must never both be scheduled.
/// Unordered — `(a, b)` and `(b, a)` denote the same rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictPair {
    /// One endpoint.
    pub a: EventId,
    /// The other endpoint.
    pub b: EventId,
}

/// A precedence edge: whenever both are scheduled, `before` must finish
/// (its last occupied interval) strictly before `after` starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecedenceEdge {
    /// The event that must run first.
    pub before: EventId,
    /// The event that must run later.
    pub after: EventId,
}

/// The constraint layer of an [`Instance`] (see the module docs). An empty
/// set is the paper's original model; [`check`](Self::check) fast-paths it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstraintSet {
    /// Per-venue slot budgets (at most one entry per location).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    venue_capacities: Vec<VenueCapacity>,
    /// Mutual-exclusion pairs.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    conflicts: Vec<ConflictPair>,
    /// Precedence edges.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    precedences: Vec<PrecedenceEdge>,
}

impl ConstraintSet {
    /// An empty (unconstrained) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no rule is present — the fast path every unconstrained
    /// instance takes through [`check`](Self::check).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.venue_capacities.is_empty() && self.conflicts.is_empty() && self.precedences.is_empty()
    }

    /// Total number of rules (capacities + conflict pairs + precedence
    /// edges) — what a service snapshot reports.
    pub fn len(&self) -> usize {
        self.venue_capacities.len() + self.conflicts.len() + self.precedences.len()
    }

    /// The venue-capacity entries.
    pub fn venue_capacities(&self) -> &[VenueCapacity] {
        &self.venue_capacities
    }

    /// The conflict pairs.
    pub fn conflicts(&self) -> &[ConflictPair] {
        &self.conflicts
    }

    /// The precedence edges.
    pub fn precedences(&self) -> &[PrecedenceEdge] {
        &self.precedences
    }

    /// The capacity configured for `location`, if any.
    pub fn venue_capacity(&self, location: LocationId) -> Option<u32> {
        self.venue_capacities.iter().find(|v| v.location == location).map(|v| v.capacity)
    }

    /// Whether an (unordered) conflict between `a` and `b` exists.
    pub fn has_conflict(&self, a: EventId, b: EventId) -> bool {
        self.conflicts.iter().any(|p| (p.a == a && p.b == b) || (p.a == b && p.b == a))
    }

    /// Whether the directed precedence edge `before → after` exists.
    pub fn has_precedence(&self, before: EventId, after: EventId) -> bool {
        self.precedences.iter().any(|e| e.before == before && e.after == after)
    }

    /// Sets (or replaces) the capacity for `location`. Validation rejects
    /// `capacity == 0` — use [`clear_venue_capacity`](Self::clear_venue_capacity)
    /// to lift a budget.
    pub fn set_venue_capacity(&mut self, location: LocationId, capacity: u32) -> &mut Self {
        match self.venue_capacities.iter_mut().find(|v| v.location == location) {
            Some(v) => v.capacity = capacity,
            None => self.venue_capacities.push(VenueCapacity { location, capacity }),
        }
        self
    }

    /// Removes the capacity entry for `location`, returning whether one
    /// existed.
    pub fn clear_venue_capacity(&mut self, location: LocationId) -> bool {
        let before = self.venue_capacities.len();
        self.venue_capacities.retain(|v| v.location != location);
        self.venue_capacities.len() != before
    }

    /// Adds the (unordered) conflict `a – b`; duplicates are not added.
    pub fn add_conflict(&mut self, a: EventId, b: EventId) -> &mut Self {
        if !self.has_conflict(a, b) {
            self.conflicts.push(ConflictPair { a, b });
        }
        self
    }

    /// Expands a clique into pairwise conflicts: every two distinct events
    /// in `events` become mutually exclusive.
    pub fn add_conflict_clique(&mut self, events: &[EventId]) -> &mut Self {
        for (i, &a) in events.iter().enumerate() {
            for &b in &events[i + 1..] {
                if a != b {
                    self.add_conflict(a, b);
                }
            }
        }
        self
    }

    /// Removes the (unordered) conflict `a – b`, returning whether it
    /// existed.
    pub fn remove_conflict(&mut self, a: EventId, b: EventId) -> bool {
        let before = self.conflicts.len();
        self.conflicts.retain(|p| !((p.a == a && p.b == b) || (p.a == b && p.b == a)));
        self.conflicts.len() != before
    }

    /// Adds the precedence edge `before → after`; duplicates are not
    /// added. Cycle safety is checked by [`validate`](Self::validate) (or
    /// eagerly via [`precedence_would_cycle`](Self::precedence_would_cycle)).
    pub fn add_precedence(&mut self, before: EventId, after: EventId) -> &mut Self {
        if !self.has_precedence(before, after) {
            self.precedences.push(PrecedenceEdge { before, after });
        }
        self
    }

    /// Removes the precedence edge `before → after`, returning whether it
    /// existed.
    pub fn remove_precedence(&mut self, before: EventId, after: EventId) -> bool {
        let len = self.precedences.len();
        self.precedences.retain(|e| !(e.before == before && e.after == after));
        self.precedences.len() != len
    }

    /// Whether adding `before → after` would close a precedence cycle
    /// (i.e. `before` is already reachable from `after`).
    pub fn precedence_would_cycle(&self, before: EventId, after: EventId) -> bool {
        if before == after {
            return true;
        }
        // DFS from `after` along existing edges, looking for `before`.
        let mut stack = vec![after];
        let mut seen = vec![after];
        while let Some(node) = stack.pop() {
            for e in &self.precedences {
                if e.before != node {
                    continue;
                }
                if e.after == before {
                    return true;
                }
                if !seen.contains(&e.after) {
                    seen.push(e.after);
                    stack.push(e.after);
                }
            }
        }
        false
    }

    /// Maintains the set across a dense-id event removal (`Vec::remove`
    /// semantics, mirroring [`crate::delta`]): every rule referencing the
    /// removed event is dropped, and ids above it shift down by one.
    pub fn remove_event(&mut self, event: EventId) {
        let shift = |id: &mut EventId| {
            if *id > event {
                *id = EventId::new(id.index() - 1);
            }
        };
        self.conflicts.retain(|p| p.a != event && p.b != event);
        for p in &mut self.conflicts {
            shift(&mut p.a);
            shift(&mut p.b);
        }
        self.precedences.retain(|e| e.before != event && e.after != event);
        for e in &mut self.precedences {
            shift(&mut e.before);
            shift(&mut e.after);
        }
    }

    /// Validates the set against an instance with `num_events` candidate
    /// events: every referenced event must exist, capacities must be
    /// positive and unique per location, conflicts and precedences must not
    /// be self-referential, and the precedence relation must be acyclic.
    ///
    /// # Errors
    /// The first violation found, as a [`BuildError`].
    pub fn validate(&self, num_events: usize) -> Result<(), BuildError> {
        for (i, v) in self.venue_capacities.iter().enumerate() {
            if v.capacity == 0 {
                return Err(BuildError::ZeroVenueCapacity { location: v.location });
            }
            if self.venue_capacities[..i].iter().any(|w| w.location == v.location) {
                return Err(BuildError::DuplicateVenueCapacity { location: v.location });
            }
        }
        let check_event = |id: EventId, context: &'static str| {
            if id.index() >= num_events {
                Err(BuildError::DanglingConstraintEvent { event: id, num_events, context })
            } else {
                Ok(())
            }
        };
        for p in &self.conflicts {
            check_event(p.a, "conflict pair")?;
            check_event(p.b, "conflict pair")?;
            if p.a == p.b {
                return Err(BuildError::SelfReferentialConstraint {
                    event: p.a,
                    context: "conflict pair",
                });
            }
        }
        for e in &self.precedences {
            check_event(e.before, "precedence edge")?;
            check_event(e.after, "precedence edge")?;
            if e.before == e.after {
                return Err(BuildError::SelfReferentialConstraint {
                    event: e.before,
                    context: "precedence edge",
                });
            }
        }
        // Kahn's algorithm over the precedence relation; leftovers = cycle.
        if !self.precedences.is_empty() {
            let mut indeg = vec![0usize; num_events];
            for e in &self.precedences {
                indeg[e.after.index()] += 1;
            }
            let mut ready: Vec<usize> = (0..num_events).filter(|&v| indeg[v] == 0).collect();
            let mut emitted = 0usize;
            while let Some(v) = ready.pop() {
                emitted += 1;
                for e in &self.precedences {
                    if e.before.index() == v {
                        indeg[e.after.index()] -= 1;
                        if indeg[e.after.index()] == 0 {
                            ready.push(e.after.index());
                        }
                    }
                }
            }
            if emitted != num_events {
                let on_cycle = (0..num_events)
                    .find(|&v| indeg[v] > 0)
                    .expect("unemitted node has positive in-degree");
                return Err(BuildError::PrecedenceCycle { event: EventId::new(on_cycle) });
            }
        }
        Ok(())
    }

    /// The feasibility gate: whether assigning `e` at `t` on top of
    /// `schedule` respects every rule. Called from
    /// [`Schedule::check_assign`] after the §2.1 checks; an empty set
    /// returns immediately, so unconstrained instances pay one branch.
    ///
    /// # Errors
    /// The first violated rule, in a fixed order (capacity, conflicts,
    /// precedence) so error selection is deterministic.
    pub fn check(
        &self,
        inst: &Instance,
        schedule: &Schedule,
        e: EventId,
        t: crate::ids::IntervalId,
    ) -> Result<(), ScheduleError> {
        if self.is_empty() {
            return Ok(());
        }
        let ev = &inst.events[e.index()];
        if let Some(capacity) = self.venue_capacity(ev.location) {
            let mut used = u64::from(ev.duration);
            for a in schedule.assignments() {
                if inst.events[a.event.index()].location == ev.location {
                    used += u64::from(inst.events[a.event.index()].duration);
                }
            }
            if used > u64::from(capacity) {
                return Err(ScheduleError::VenueCapacityExceeded {
                    event: e,
                    location: ev.location,
                    capacity,
                });
            }
        }
        for p in &self.conflicts {
            let other = if p.a == e {
                p.b
            } else if p.b == e {
                p.a
            } else {
                continue;
            };
            if schedule.is_scheduled(other) {
                return Err(ScheduleError::ConflictViolation { event: e, other });
            }
        }
        for edge in &self.precedences {
            if edge.before == e {
                if let Some(t_after) = schedule.interval_of(edge.after) {
                    if t.index() + ev.duration as usize > t_after.index() {
                        return Err(ScheduleError::PrecedenceViolation {
                            before: e,
                            after: edge.after,
                        });
                    }
                }
            } else if edge.after == e {
                if let Some(t_before) = schedule.interval_of(edge.before) {
                    let d = inst.events[edge.before.index()].duration as usize;
                    if t_before.index() + d > t.index() {
                        return Err(ScheduleError::PrecedenceViolation {
                            before: edge.before,
                            after: e,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IntervalId;
    use crate::model::running_example;

    fn e(i: usize) -> EventId {
        EventId::new(i)
    }
    fn t(i: usize) -> IntervalId {
        IntervalId::new(i)
    }

    #[test]
    fn empty_set_allows_everything() {
        let inst = running_example();
        let cs = ConstraintSet::new();
        assert!(cs.is_empty());
        assert_eq!(cs.len(), 0);
        let s = Schedule::new(&inst);
        for (ev, tv) in inst.assignment_universe() {
            assert!(cs.check(&inst, &s, ev, tv).is_ok());
        }
    }

    #[test]
    fn venue_capacity_counts_slots_across_schedule() {
        let inst = running_example();
        // e1 and e2 share Stage 1 (location 0); cap it at one slot.
        let mut cs = ConstraintSet::new();
        cs.set_venue_capacity(LocationId::new(0), 1);
        let mut s = Schedule::new(&inst);
        assert!(cs.check(&inst, &s, e(0), t(0)).is_ok());
        s.assign(&inst, e(0), t(0)).unwrap();
        // Second Stage-1 event, even at the *other* interval, exceeds cap.
        let err = cs.check(&inst, &s, e(1), t(1)).unwrap_err();
        assert!(matches!(err, ScheduleError::VenueCapacityExceeded { capacity: 1, .. }));
        // A different location is unconstrained.
        assert!(cs.check(&inst, &s, e(2), t(1)).is_ok());
    }

    #[test]
    fn conflict_blocks_both_scheduled() {
        let inst = running_example();
        let mut cs = ConstraintSet::new();
        cs.add_conflict(e(0), e(3));
        let mut s = Schedule::new(&inst);
        assert!(cs.check(&inst, &s, e(0), t(0)).is_ok());
        s.assign(&inst, e(0), t(0)).unwrap();
        let err = cs.check(&inst, &s, e(3), t(1)).unwrap_err();
        assert_eq!(err, ScheduleError::ConflictViolation { event: e(3), other: e(0) });
        // Unrelated events pass.
        assert!(cs.check(&inst, &s, e(2), t(1)).is_ok());
    }

    #[test]
    fn conflict_clique_expands_pairwise() {
        let mut cs = ConstraintSet::new();
        cs.add_conflict_clique(&[e(0), e(1), e(2)]);
        assert_eq!(cs.conflicts().len(), 3);
        assert!(cs.has_conflict(e(1), e(0)));
        assert!(cs.has_conflict(e(2), e(1)));
        // Re-adding the clique adds nothing (dedup).
        cs.add_conflict_clique(&[e(0), e(1), e(2)]);
        assert_eq!(cs.conflicts().len(), 3);
    }

    #[test]
    fn precedence_enforced_only_when_both_scheduled() {
        let inst = running_example();
        let mut cs = ConstraintSet::new();
        cs.add_precedence(e(0), e(3)); // e1 before e4
        let mut s = Schedule::new(&inst);
        // e4 alone anywhere: fine (partial schedules stay feasible).
        assert!(cs.check(&inst, &s, e(3), t(0)).is_ok());
        s.assign(&inst, e(3), t(0)).unwrap();
        // e1 can no longer finish before t0.
        let err = cs.check(&inst, &s, e(0), t(0)).unwrap_err();
        assert_eq!(err, ScheduleError::PrecedenceViolation { before: e(0), after: e(3) });
        assert!(cs.check(&inst, &s, e(0), t(1)).is_err());
        // The other direction: with e1 at t0, e4 fits only at t1.
        s.unassign(&inst, e(3)).unwrap();
        s.assign(&inst, e(0), t(0)).unwrap();
        assert!(cs.check(&inst, &s, e(3), t(0)).is_err());
        assert!(cs.check(&inst, &s, e(3), t(1)).is_ok());
    }

    #[test]
    fn precedence_respects_duration() {
        let mut inst = running_example();
        inst.events[2].duration = 2; // e3 spans two intervals
        let mut cs = ConstraintSet::new();
        cs.add_precedence(e(2), e(3));
        let mut s = Schedule::new(&inst);
        s.assign(&inst, e(2), t(0)).unwrap(); // occupies t0 and t1
                                              // e4 at t1 starts before e3 finishes.
        assert!(cs.check(&inst, &s, e(3), t(1)).is_err());
    }

    #[test]
    fn validation_rejects_malformed_sets() {
        let mut cs = ConstraintSet::new();
        cs.set_venue_capacity(LocationId::new(0), 0);
        assert!(matches!(cs.validate(4), Err(BuildError::ZeroVenueCapacity { .. })));

        let mut cs = ConstraintSet::new();
        cs.add_conflict(e(0), e(9));
        assert!(matches!(cs.validate(4), Err(BuildError::DanglingConstraintEvent { .. })));

        let mut cs = ConstraintSet::new();
        cs.conflicts.push(ConflictPair { a: e(1), b: e(1) });
        assert!(matches!(cs.validate(4), Err(BuildError::SelfReferentialConstraint { .. })));

        let mut cs = ConstraintSet::new();
        cs.add_precedence(e(0), e(1)).add_precedence(e(1), e(2)).add_precedence(e(2), e(0));
        assert!(matches!(cs.validate(4), Err(BuildError::PrecedenceCycle { .. })));

        // A well-formed set passes.
        let mut cs = ConstraintSet::new();
        cs.set_venue_capacity(LocationId::new(0), 2);
        cs.add_conflict(e(0), e(1));
        cs.add_precedence(e(0), e(2)).add_precedence(e(2), e(3));
        assert!(cs.validate(4).is_ok());
    }

    #[test]
    fn duplicate_capacity_rejected_but_set_overwrites() {
        // The mutator overwrites in place, so duplicates only arise from
        // hand-built (e.g. deserialized) sets.
        let mut cs = ConstraintSet::new();
        cs.set_venue_capacity(LocationId::new(1), 2).set_venue_capacity(LocationId::new(1), 3);
        assert_eq!(cs.venue_capacity(LocationId::new(1)), Some(3));
        assert!(cs.validate(4).is_ok());

        cs.venue_capacities.push(VenueCapacity { location: LocationId::new(1), capacity: 5 });
        assert!(matches!(cs.validate(4), Err(BuildError::DuplicateVenueCapacity { .. })));
    }

    #[test]
    fn cycle_probe_matches_validation() {
        let mut cs = ConstraintSet::new();
        cs.add_precedence(e(0), e(1)).add_precedence(e(1), e(2));
        assert!(!cs.precedence_would_cycle(e(0), e(3)));
        assert!(cs.precedence_would_cycle(e(2), e(0)));
        assert!(cs.precedence_would_cycle(e(1), e(1)));
    }

    #[test]
    fn remove_event_drops_and_shifts() {
        let mut cs = ConstraintSet::new();
        cs.add_conflict(e(0), e(2)).add_conflict(e(1), e(3));
        cs.add_precedence(e(2), e(3)).add_precedence(e(0), e(1));
        cs.remove_event(e(2));
        // Rules touching e2 are gone; ids above 2 shifted down.
        assert_eq!(cs.conflicts(), &[ConflictPair { a: e(1), b: e(2) }]);
        assert_eq!(cs.precedences(), &[PrecedenceEdge { before: e(0), after: e(1) }]);
        assert!(cs.validate(3).is_ok());
    }

    #[test]
    fn removal_mutators_report_presence() {
        let mut cs = ConstraintSet::new();
        cs.add_conflict(e(0), e(1)).add_precedence(e(0), e(2));
        cs.set_venue_capacity(LocationId::new(0), 2);
        assert!(cs.remove_conflict(e(1), e(0))); // unordered
        assert!(!cs.remove_conflict(e(0), e(1)));
        assert!(cs.remove_precedence(e(0), e(2)));
        assert!(!cs.remove_precedence(e(2), e(0))); // directed
        assert!(cs.clear_venue_capacity(LocationId::new(0)));
        assert!(!cs.clear_venue_capacity(LocationId::new(0)));
        assert!(cs.is_empty());
    }

    /// The design decision §11 leans on: the constraint check runs *after*
    /// the §2.1 checks in `check_assign`, so a candidate that violates both
    /// reports the paper-model error — unconstrained instances keep their
    /// exact historical error surface — while the constraint error appears
    /// as soon as §2.1 alone is satisfied.
    #[test]
    fn paper_model_errors_outrank_constraint_errors() {
        let mut inst = running_example();
        inst.constraints.add_conflict(e(0), e(1)); // e0/e1 also share stage1
        assert!(inst.validate().is_ok());

        let mut s = Schedule::new(&inst);
        s.assign(&inst, e(0), t(0)).unwrap();
        // Same interval: both the §2.1 location rule and the conflict rule
        // reject — the §2.1 error must win.
        assert_eq!(
            s.check_assign(&inst, e(1), t(0)),
            Err(ScheduleError::LocationConflict { event: e(1), interval: t(0), occupant: e(0) })
        );
        // Other interval: §2.1 is satisfied, so the conflict surfaces.
        assert_eq!(
            s.check_assign(&inst, e(1), t(1)),
            Err(ScheduleError::ConflictViolation { event: e(1), other: e(0) })
        );
    }

    #[test]
    fn serde_roundtrip_and_empty_shape() {
        let mut cs = ConstraintSet::new();
        cs.set_venue_capacity(LocationId::new(2), 3);
        cs.add_conflict(e(0), e(1));
        cs.add_precedence(e(1), e(3));
        let json = serde_json::to_string(&cs).unwrap();
        let back: ConstraintSet = serde_json::from_str(&json).unwrap();
        assert_eq!(cs, back);
        // The empty set serializes to an empty object and parses back.
        assert_eq!(serde_json::to_string(&ConstraintSet::new()).unwrap(), "{}");
        let empty: ConstraintSet = serde_json::from_str("{}").unwrap();
        assert!(empty.is_empty());
    }
}
