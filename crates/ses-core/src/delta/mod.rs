//! Dynamic-workload deltas: an op log applied against a live [`Instance`].
//!
//! The paper schedules a *static* batch of events; real EBSN workloads
//! churn — events get announced and cancelled, users join and lapse,
//! interests drift. This module defines the op vocabulary ([`DeltaOp`]),
//! applies ops in place ([`apply`]), and reports what each op invalidated
//! ([`DeltaEffect`]) so schedulers can repair caches instead of rebuilding
//! them (see `ses_algorithms::stream`).
//!
//! ## Identifier semantics
//!
//! Ids stay **dense** under churn, mirroring the `Vec` storage they index:
//!
//! * [`DeltaOp::RemoveEvent`] shifts every later event id down by one
//!   (`Vec::remove` semantics), in lock-step across `events` and
//!   `event_interest`.
//! * [`DeltaOp::RetireUsers`] does the same for user indices across both
//!   interest matrices, the activity matrix, and the optional weights.
//! * [`DeltaOp::AddEvent`] / [`DeltaOp::AddUsers`] append at the tail.
//!
//! Two parties that apply the same op log to equal instances therefore end
//! with *identical* instances — the property the stream-equivalence suite
//! leans on to compare incremental repair against full recompute.
//!
//! ## Cache invalidation contract
//!
//! Per op, the caches a warm-started scheduler keeps:
//!
//! | op | competing mass `C(u,t)` | empty-schedule score of `(e,t)` |
//! |---|---|---|
//! | `AddEvent` | unchanged | new column needs scoring; others exact |
//! | `RemoveEvent` | unchanged | drop the column; others exact |
//! | `ShiftInterest` | unchanged | that event's column needs rescoring |
//! | `AddUsers` | extend rows ([`refresh_comp_mass`]) | grows by at most `Σ_new w·σ(u,t)` (bound) |
//! | `RetireUsers` | drop cells ([`refresh_comp_mass`]) | only shrinks (old value is a bound) |
//! | constraint ops | unchanged | unchanged (scores are constraint-independent) |
//!
//! Constraint ops (`AddConflict` / `RemoveConflict` / `AddPrecedence` /
//! `RemovePrecedence` / `SetVenueCapacity`) edit the instance's
//! [`ConstraintSet`](crate::constraints::ConstraintSet) without touching any
//! score, but the current schedule may have become infeasible — warm
//! schedulers re-run selection on [`DeltaEffect::ConstraintsChanged`].
//! `RemoveEvent` additionally drops the removed event's conflict and
//! precedence edges and shifts the surviving edge ids, atomically with the
//! event itself, so an op stream can never strand a dangling constraint
//! reference.
//!
//! The two "bound" rows are what keep user churn cheap: cached scores stay
//! *sound upper bounds* (the invariant INC-style pruning needs), so nothing
//! must be eagerly rescored.

use crate::error::DeltaError;
use crate::ids::EventId;
use crate::model::{Event, Instance};
use serde::{Deserialize, Serialize};

pub mod coalesce;

/// One mutation of a live [`Instance`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// Announce a new candidate event; `interest` is its dense per-user
    /// interest column (`len == |U|`).
    AddEvent {
        /// The event to append.
        event: Event,
        /// Interest `µ(u, e)` of every current user.
        interest: Vec<f64>,
    },
    /// Cancel a candidate event; later event ids shift down by one.
    RemoveEvent {
        /// The event to remove.
        event: EventId,
    },
    /// A batch of users joins; they receive the next consecutive indices.
    AddUsers {
        /// The joining users.
        users: Vec<NewUser>,
    },
    /// A batch of users lapses; indices must be strictly increasing, and
    /// surviving users shift down to stay dense.
    RetireUsers {
        /// The lapsing users' current indices.
        users: Vec<usize>,
    },
    /// One user's interest in one candidate event drifts to a new value.
    ShiftInterest {
        /// The event whose interest shifts.
        event: EventId,
        /// The user whose interest shifts.
        user: usize,
        /// The new interest `µ(user, event) ∈ [0, 1]`.
        interest: f64,
    },
    /// Declare two events mutually exclusive.
    AddConflict {
        /// One endpoint.
        a: EventId,
        /// The other endpoint.
        b: EventId,
    },
    /// Retract a mutual-exclusion pair (unordered match).
    RemoveConflict {
        /// One endpoint.
        a: EventId,
        /// The other endpoint.
        b: EventId,
    },
    /// Add a precedence edge (`before` must finish before `after` starts).
    /// Rejected if it would close a cycle.
    AddPrecedence {
        /// The event that must run first.
        before: EventId,
        /// The event that must run later.
        after: EventId,
    },
    /// Retract a precedence edge (directed match).
    RemovePrecedence {
        /// The event that must run first.
        before: EventId,
        /// The event that must run later.
        after: EventId,
    },
    /// Set (`Some(c)`, `c ≥ 1`) or clear (`None`) a venue's slot budget.
    SetVenueCapacity {
        /// The location to (un)constrain.
        location: crate::ids::LocationId,
        /// The new budget, or `None` to lift it.
        capacity: Option<u32>,
    },
}

impl DeltaOp {
    /// Short display name of the op kind (for traces and reports).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::AddEvent { .. } => "AddEvent",
            Self::RemoveEvent { .. } => "RemoveEvent",
            Self::AddUsers { .. } => "AddUsers",
            Self::RetireUsers { .. } => "RetireUsers",
            Self::ShiftInterest { .. } => "ShiftInterest",
            Self::AddConflict { .. } => "AddConflict",
            Self::RemoveConflict { .. } => "RemoveConflict",
            Self::AddPrecedence { .. } => "AddPrecedence",
            Self::RemovePrecedence { .. } => "RemovePrecedence",
            Self::SetVenueCapacity { .. } => "SetVenueCapacity",
        }
    }
}

/// Payload of one joining user: interest over current candidate and
/// competing events, activity over the intervals, and (iff the instance is
/// weighted) a weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NewUser {
    /// Interest `µ(u, e)` over candidate events (`len == |E|`).
    pub event_interest: Vec<f64>,
    /// Interest `µ(u, c)` over competing events (`len == |C|`).
    pub competing_interest: Vec<f64>,
    /// Activity `σ(u, t)` over intervals (`len == |T|`).
    pub activity: Vec<f64>,
    /// Weight — required iff the instance carries per-user weights.
    #[serde(default)]
    pub weight: Option<f64>,
}

/// What [`apply`] changed — the cache-invalidation summary a warm-started
/// scheduler keys its repair on (see the module docs for the contract).
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaEffect {
    /// A new event was appended with this id.
    EventAdded(EventId),
    /// This event was removed; every event id above it shifted down by one.
    EventRemoved(EventId),
    /// `count` users were appended starting at index `first`.
    UsersAdded {
        /// Index of the first new user.
        first: usize,
        /// Number of users added.
        count: usize,
    },
    /// These users (pre-removal indices, strictly increasing) were removed;
    /// survivors shifted down.
    UsersRetired {
        /// The removed indices, in pre-removal numbering.
        users: Vec<usize>,
    },
    /// One interest value changed.
    InterestShifted {
        /// The affected event.
        event: EventId,
        /// The affected user.
        user: usize,
    },
    /// The instance's [`ConstraintSet`] changed. Scores are
    /// constraint-independent, so no cache entry is invalidated — but the
    /// current schedule may have become infeasible, so warm schedulers must
    /// re-run selection.
    ///
    /// [`ConstraintSet`]: crate::constraints::ConstraintSet
    ConstraintsChanged,
}

fn check_unit_values(what: &'static str, values: &[f64]) -> Result<(), DeltaError> {
    for &v in values {
        if !(0.0..=1.0).contains(&v) || v.is_nan() {
            return Err(DeltaError::ValueOutOfRange { what, value: v });
        }
    }
    Ok(())
}

fn check_len(what: &'static str, expected: usize, actual: usize) -> Result<(), DeltaError> {
    if expected != actual {
        return Err(DeltaError::ShapeMismatch { what, expected, actual });
    }
    Ok(())
}

/// Applies one op to the instance, in place, after validating it against
/// the instance's current shape and value ranges. On error the instance is
/// unchanged.
///
/// # Errors
/// Any [`DeltaError`]; see the variants for the individual contracts.
pub fn apply(inst: &mut Instance, op: &DeltaOp) -> Result<DeltaEffect, DeltaError> {
    match op {
        DeltaOp::AddEvent { event, interest } => {
            check_len("new event interest column", inst.num_users(), interest.len())?;
            check_unit_values("interest", interest)?;
            if !event.required_resources.is_finite() || event.required_resources < 0.0 {
                return Err(DeltaError::ValueOutOfRange {
                    what: "required resources",
                    value: event.required_resources,
                });
            }
            if event.required_resources > inst.resources {
                return Err(DeltaError::UnschedulableEvent {
                    required: event.required_resources,
                    available: inst.resources,
                });
            }
            inst.event_interest.push_item(interest);
            inst.events.push(event.clone());
            Ok(DeltaEffect::EventAdded(EventId::new(inst.events.len() - 1)))
        }
        DeltaOp::RemoveEvent { event } => {
            if event.index() >= inst.num_events() {
                return Err(DeltaError::UnknownEvent {
                    event: *event,
                    num_events: inst.num_events(),
                });
            }
            if inst.num_events() == 1 {
                return Err(DeltaError::WouldEmpty("candidate events"));
            }
            inst.events.remove(event.index());
            inst.event_interest.remove_item(event.index());
            // Constraint edges must move in lock-step with the dense ids:
            // drop rules referencing the removed event and shift the rest,
            // or later ops would resolve against the wrong (or a dangling)
            // event.
            inst.constraints.remove_event(*event);
            Ok(DeltaEffect::EventRemoved(*event))
        }
        DeltaOp::AddUsers { users } => {
            if users.is_empty() {
                return Err(DeltaError::EmptyOp("users"));
            }
            let weighted = inst.user_weights.is_some();
            for u in users {
                check_len("new user event interest", inst.num_events(), u.event_interest.len())?;
                check_len(
                    "new user competing interest",
                    inst.num_competing(),
                    u.competing_interest.len(),
                )?;
                check_len("new user activity", inst.num_intervals(), u.activity.len())?;
                check_unit_values("interest", &u.event_interest)?;
                check_unit_values("interest", &u.competing_interest)?;
                check_unit_values("activity", &u.activity)?;
                match u.weight {
                    Some(_) if !weighted => {
                        return Err(DeltaError::WeightMismatch { instance_weighted: false });
                    }
                    None if weighted => {
                        return Err(DeltaError::WeightMismatch { instance_weighted: true });
                    }
                    Some(w) if !w.is_finite() || w < 0.0 => {
                        return Err(DeltaError::ValueOutOfRange { what: "weight", value: w });
                    }
                    _ => {}
                }
            }
            let first = inst.num_users();
            let ev_rows: Vec<Vec<f64>> = users.iter().map(|u| u.event_interest.clone()).collect();
            let comp_rows: Vec<Vec<f64>> =
                users.iter().map(|u| u.competing_interest.clone()).collect();
            inst.event_interest.append_users(&ev_rows);
            inst.competing_interest.append_users(&comp_rows);
            for u in users {
                inst.activity.append_user(&u.activity);
            }
            if let Some(w) = &mut inst.user_weights {
                w.extend(users.iter().map(|u| u.weight.expect("validated above")));
            }
            Ok(DeltaEffect::UsersAdded { first, count: users.len() })
        }
        DeltaOp::RetireUsers { users } => {
            if users.is_empty() {
                return Err(DeltaError::EmptyOp("users"));
            }
            let mut prev = None;
            for &u in users {
                if u >= inst.num_users() {
                    return Err(DeltaError::UnknownUser { user: u, num_users: inst.num_users() });
                }
                if prev.is_some_and(|p| p >= u) {
                    return Err(DeltaError::UnsortedUsers);
                }
                prev = Some(u);
            }
            if users.len() >= inst.num_users() {
                return Err(DeltaError::WouldEmpty("users"));
            }
            let keep = crate::model::user_keep_mask(inst.num_users(), users);
            inst.event_interest.remove_users(users);
            inst.competing_interest.remove_users(users);
            inst.activity.remove_users(users);
            if let Some(w) = &mut inst.user_weights {
                let mut user = 0usize;
                w.retain(|_| {
                    let kept = keep[user];
                    user += 1;
                    kept
                });
            }
            Ok(DeltaEffect::UsersRetired { users: users.clone() })
        }
        DeltaOp::ShiftInterest { event, user, interest } => {
            if event.index() >= inst.num_events() {
                return Err(DeltaError::UnknownEvent {
                    event: *event,
                    num_events: inst.num_events(),
                });
            }
            if *user >= inst.num_users() {
                return Err(DeltaError::UnknownUser { user: *user, num_users: inst.num_users() });
            }
            if !(0.0..=1.0).contains(interest) || interest.is_nan() {
                return Err(DeltaError::ValueOutOfRange { what: "interest", value: *interest });
            }
            inst.event_interest.set_value(event.index(), *user, *interest);
            Ok(DeltaEffect::InterestShifted { event: *event, user: *user })
        }
        DeltaOp::AddConflict { a, b } => {
            check_constraint_event(inst, *a)?;
            check_constraint_event(inst, *b)?;
            if a == b {
                return Err(DeltaError::SelfConstraint { event: *a });
            }
            if inst.constraints.has_conflict(*a, *b) {
                return Err(DeltaError::DuplicateConstraint);
            }
            inst.constraints.add_conflict(*a, *b);
            Ok(DeltaEffect::ConstraintsChanged)
        }
        DeltaOp::RemoveConflict { a, b } => {
            if !inst.constraints.remove_conflict(*a, *b) {
                return Err(DeltaError::UnknownConstraint);
            }
            Ok(DeltaEffect::ConstraintsChanged)
        }
        DeltaOp::AddPrecedence { before, after } => {
            check_constraint_event(inst, *before)?;
            check_constraint_event(inst, *after)?;
            if before == after {
                return Err(DeltaError::SelfConstraint { event: *before });
            }
            if inst.constraints.has_precedence(*before, *after) {
                return Err(DeltaError::DuplicateConstraint);
            }
            if inst.constraints.precedence_would_cycle(*before, *after) {
                return Err(DeltaError::ConstraintCycle { before: *before, after: *after });
            }
            inst.constraints.add_precedence(*before, *after);
            Ok(DeltaEffect::ConstraintsChanged)
        }
        DeltaOp::RemovePrecedence { before, after } => {
            if !inst.constraints.remove_precedence(*before, *after) {
                return Err(DeltaError::UnknownConstraint);
            }
            Ok(DeltaEffect::ConstraintsChanged)
        }
        DeltaOp::SetVenueCapacity { location, capacity } => match capacity {
            Some(0) => Err(DeltaError::ZeroCapacity),
            Some(c) => {
                inst.constraints.set_venue_capacity(*location, *c);
                Ok(DeltaEffect::ConstraintsChanged)
            }
            None => {
                if !inst.constraints.clear_venue_capacity(*location) {
                    return Err(DeltaError::UnknownConstraint);
                }
                Ok(DeltaEffect::ConstraintsChanged)
            }
        },
    }
}

fn check_constraint_event(inst: &Instance, event: EventId) -> Result<(), DeltaError> {
    if event.index() >= inst.num_events() {
        return Err(DeltaError::UnknownEvent { event, num_events: inst.num_events() });
    }
    Ok(())
}

/// Applies a whole op log to a clone of `base` — the "full recompute" side
/// of the incremental-vs-recompute comparison, and the reference
/// materialization tests check the stream scheduler against.
///
/// # Errors
/// The first [`DeltaError`] hit; no instance is returned on error.
pub fn materialize(base: &Instance, ops: &[DeltaOp]) -> Result<Instance, DeltaError> {
    let mut inst = base.clone();
    for op in ops {
        apply(&mut inst, op)?;
    }
    Ok(inst)
}

/// One cell of a freshly built competing-mass table, accumulated in the
/// exact order [`ScoringEngine::with_threads`] uses (ascending competing
/// id within the interval) so warm tables stay bit-identical to cold ones.
///
/// [`ScoringEngine::with_threads`]: crate::scoring::ScoringEngine::with_threads
fn comp_cell(inst: &Instance, user: usize, t: usize) -> f64 {
    let mut total = 0.0;
    for (ci, c) in inst.competing.iter().enumerate() {
        if c.interval.index() == t {
            total += inst.competing_interest.value(ci, user);
        }
    }
    total
}

/// Maintains a cached competing-mass table `C(u,t)` (layout `[t·|U| + u]`,
/// as built by the scoring engine) across an applied delta: user churn
/// reflows the table incrementally — new cells are aggregated in the
/// engine's canonical order, surviving cells are moved untouched — so the
/// result is bit-identical to a from-scratch rebuild at a fraction of the
/// `O(|U|·|C|)` cost. Event-level ops leave the table untouched.
///
/// `inst` must be the **post-apply** instance and `effect` the value
/// [`apply`] returned for it.
///
/// # Panics
/// Panics if the table's length does not match the pre-op shape.
pub fn refresh_comp_mass(mass: &mut Vec<f64>, inst: &Instance, effect: &DeltaEffect) {
    let intervals = inst.num_intervals();
    match effect {
        DeltaEffect::EventAdded(_)
        | DeltaEffect::EventRemoved(_)
        | DeltaEffect::InterestShifted { .. }
        | DeltaEffect::ConstraintsChanged => {}
        DeltaEffect::UsersAdded { first, count } => {
            let users = inst.num_users();
            let old_users = users - count;
            assert_eq!(mass.len(), old_users * intervals, "competing-mass table shape mismatch");
            let mut out = Vec::with_capacity(users * intervals);
            for t in 0..intervals {
                out.extend_from_slice(&mass[t * old_users..(t + 1) * old_users]);
                for u in *first..first + count {
                    out.push(comp_cell(inst, u, t));
                }
            }
            *mass = out;
        }
        DeltaEffect::UsersRetired { users: gone } => {
            let users = inst.num_users();
            let old_users = users + gone.len();
            assert_eq!(mass.len(), old_users * intervals, "competing-mass table shape mismatch");
            let mut keep = vec![true; old_users];
            for &u in gone {
                keep[u] = false;
            }
            let mut out = Vec::with_capacity(users * intervals);
            for t in 0..intervals {
                let row = &mass[t * old_users..(t + 1) * old_users];
                out.extend(row.iter().zip(&keep).filter(|(_, &k)| k).map(|(&v, _)| v));
            }
            *mass = out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{IntervalId, LocationId};
    use crate::model::running_example;
    use crate::parallel::Threads;
    use crate::scoring::ScoringEngine;

    fn unit_user(num_events: usize, num_competing: usize, num_intervals: usize) -> NewUser {
        NewUser {
            event_interest: vec![0.5; num_events],
            competing_interest: vec![0.25; num_competing],
            activity: vec![0.75; num_intervals],
            weight: None,
        }
    }

    #[test]
    fn add_and_remove_event_roundtrip_shape() {
        let mut inst = running_example();
        let effect = apply(
            &mut inst,
            &DeltaOp::AddEvent {
                event: Event::new(LocationId::new(3), 1.0),
                interest: vec![0.4, 0.8],
            },
        )
        .unwrap();
        assert_eq!(effect, DeltaEffect::EventAdded(EventId::new(4)));
        assert_eq!(inst.num_events(), 5);
        assert_eq!(inst.event_interest.value(4, 1), 0.8);
        assert!(inst.validate().is_ok());

        let effect = apply(&mut inst, &DeltaOp::RemoveEvent { event: EventId::new(0) }).unwrap();
        assert_eq!(effect, DeltaEffect::EventRemoved(EventId::new(0)));
        assert_eq!(inst.num_events(), 4);
        // Former e1 (index 1) is now index 0.
        assert_eq!(inst.events[0].label.as_deref(), Some("e2"));
        assert_eq!(inst.event_interest.value(0, 1), 0.6);
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn add_and_retire_users_keep_instance_valid() {
        let mut inst = running_example();
        let u = unit_user(4, 2, 2);
        apply(&mut inst, &DeltaOp::AddUsers { users: vec![u.clone(), u] }).unwrap();
        assert_eq!(inst.num_users(), 4);
        assert_eq!(inst.activity.value(3, 0), 0.75);
        assert!(inst.validate().is_ok());

        apply(&mut inst, &DeltaOp::RetireUsers { users: vec![0, 2] }).unwrap();
        assert_eq!(inst.num_users(), 2);
        // Former u2 (index 1) is now index 0.
        assert_eq!(inst.event_interest.value(0, 0), 0.2);
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn shift_interest_sets_value() {
        let mut inst = running_example();
        apply(
            &mut inst,
            &DeltaOp::ShiftInterest { event: EventId::new(2), user: 0, interest: 0.9 },
        )
        .unwrap();
        assert_eq!(inst.event_interest.value(2, 0), 0.9);
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_ops() {
        let mut inst = running_example();
        let before = inst.clone();
        let bad: Vec<DeltaOp> = vec![
            DeltaOp::AddEvent { event: Event::new(LocationId::new(0), 1.0), interest: vec![0.5] },
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(0), 99.0), // θ = 10
                interest: vec![0.5, 0.5],
            },
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(0), 1.0),
                interest: vec![0.5, 1.5],
            },
            DeltaOp::RemoveEvent { event: EventId::new(9) },
            DeltaOp::AddUsers { users: vec![] },
            DeltaOp::AddUsers { users: vec![NewUser { weight: Some(1.0), ..unit_user(4, 2, 2) }] },
            DeltaOp::RetireUsers { users: vec![1, 0] },
            DeltaOp::RetireUsers { users: vec![0, 1] }, // would empty
            DeltaOp::ShiftInterest { event: EventId::new(0), user: 9, interest: 0.5 },
            DeltaOp::ShiftInterest { event: EventId::new(0), user: 0, interest: -0.1 },
        ];
        for op in bad {
            assert!(apply(&mut inst, &op).is_err(), "{op:?} must be rejected");
            assert_eq!(inst, before, "{op:?} must leave the instance unchanged");
        }
    }

    #[test]
    fn remove_last_event_rejected() {
        let mut inst = running_example();
        for _ in 0..3 {
            apply(&mut inst, &DeltaOp::RemoveEvent { event: EventId::new(0) }).unwrap();
        }
        let err = apply(&mut inst, &DeltaOp::RemoveEvent { event: EventId::new(0) }).unwrap_err();
        assert_eq!(err, DeltaError::WouldEmpty("candidate events"));
    }

    #[test]
    fn materialize_applies_in_order() {
        let base = running_example();
        let ops = vec![
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(4), 1.0),
                interest: vec![0.3, 0.3],
            },
            DeltaOp::RemoveEvent { event: EventId::new(1) },
            DeltaOp::ShiftInterest { event: EventId::new(0), user: 1, interest: 0.0 },
        ];
        let inst = materialize(&base, &ops).unwrap();
        assert_eq!(inst.num_events(), 4);
        assert_eq!(inst.event_interest.value(0, 1), 0.0);
        assert!(inst.validate().is_ok());
    }

    /// The warm competing-mass table must be bit-identical to a cold
    /// rebuild after any mix of user churn — the invariant that lets the
    /// stream scheduler skip the `O(|U|·|C|)` setup.
    #[test]
    fn refreshed_comp_mass_matches_cold_rebuild() {
        let mut inst = running_example();
        let mut mass = {
            let engine = ScoringEngine::new(&inst);
            let mut m = Vec::new();
            for t in 0..inst.num_intervals() {
                for u in 0..inst.num_users() {
                    m.push(engine.competing_mass(u, IntervalId::new(t)));
                }
            }
            m
        };
        let ops = vec![
            DeltaOp::AddUsers {
                users: vec![
                    NewUser { competing_interest: vec![0.9, 0.0], ..unit_user(4, 2, 2) },
                    NewUser { competing_interest: vec![0.0, 0.6], ..unit_user(4, 2, 2) },
                ],
            },
            DeltaOp::RetireUsers { users: vec![0, 3] },
            DeltaOp::AddUsers { users: vec![unit_user(4, 2, 2)] },
        ];
        for op in &ops {
            let effect = apply(&mut inst, op).unwrap();
            refresh_comp_mass(&mut mass, &inst, &effect);
            let cold = ScoringEngine::with_threads(&inst, Threads::sequential());
            for t in 0..inst.num_intervals() {
                for u in 0..inst.num_users() {
                    let warm = mass[t * inst.num_users() + u];
                    let fresh = cold.competing_mass(u, IntervalId::new(t));
                    assert_eq!(warm.to_bits(), fresh.to_bits(), "cell ({u}, t{t}) after {op:?}");
                }
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let op = DeltaOp::AddUsers { users: vec![unit_user(2, 1, 2)] };
        let json = serde_json::to_string(&op).unwrap();
        let back: DeltaOp = serde_json::from_str(&json).unwrap();
        assert_eq!(op, back);
        let op = DeltaOp::ShiftInterest { event: EventId::new(1), user: 0, interest: 0.25 };
        let back: DeltaOp = serde_json::from_str(&serde_json::to_string(&op).unwrap()).unwrap();
        assert_eq!(op, back);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(DeltaOp::RemoveEvent { event: EventId::new(0) }.kind(), "RemoveEvent");
        assert_eq!(DeltaOp::RetireUsers { users: vec![0] }.kind(), "RetireUsers");
        assert_eq!(
            DeltaOp::SetVenueCapacity { location: LocationId::new(0), capacity: None }.kind(),
            "SetVenueCapacity"
        );
    }

    #[test]
    fn constraint_ops_edit_the_set() {
        let mut inst = running_example();
        let e = |i: usize| EventId::new(i);
        for op in [
            DeltaOp::AddConflict { a: e(0), b: e(3) },
            DeltaOp::AddPrecedence { before: e(0), after: e(2) },
            DeltaOp::SetVenueCapacity { location: LocationId::new(0), capacity: Some(2) },
        ] {
            assert_eq!(apply(&mut inst, &op).unwrap(), DeltaEffect::ConstraintsChanged);
        }
        assert!(inst.constraints.has_conflict(e(3), e(0)));
        assert!(inst.constraints.has_precedence(e(0), e(2)));
        assert_eq!(inst.constraints.venue_capacity(LocationId::new(0)), Some(2));
        assert!(inst.validate().is_ok());

        apply(&mut inst, &DeltaOp::RemoveConflict { a: e(3), b: e(0) }).unwrap();
        apply(&mut inst, &DeltaOp::RemovePrecedence { before: e(0), after: e(2) }).unwrap();
        apply(
            &mut inst,
            &DeltaOp::SetVenueCapacity { location: LocationId::new(0), capacity: None },
        )
        .unwrap();
        assert!(inst.constraints.is_empty());
    }

    #[test]
    fn constraint_op_validation_is_atomic() {
        let mut inst = running_example();
        apply(&mut inst, &DeltaOp::AddConflict { a: EventId::new(0), b: EventId::new(1) }).unwrap();
        apply(
            &mut inst,
            &DeltaOp::AddPrecedence { before: EventId::new(1), after: EventId::new(2) },
        )
        .unwrap();
        let before = inst.clone();
        let e = |i: usize| EventId::new(i);
        let bad: Vec<(DeltaOp, DeltaError)> = vec![
            (
                DeltaOp::AddConflict { a: e(0), b: e(9) },
                DeltaError::UnknownEvent { event: e(9), num_events: 4 },
            ),
            (DeltaOp::AddConflict { a: e(2), b: e(2) }, DeltaError::SelfConstraint { event: e(2) }),
            (DeltaOp::AddConflict { a: e(1), b: e(0) }, DeltaError::DuplicateConstraint),
            (DeltaOp::RemoveConflict { a: e(2), b: e(3) }, DeltaError::UnknownConstraint),
            (
                DeltaOp::AddPrecedence { before: e(9), after: e(0) },
                DeltaError::UnknownEvent { event: e(9), num_events: 4 },
            ),
            (
                DeltaOp::AddPrecedence { before: e(3), after: e(3) },
                DeltaError::SelfConstraint { event: e(3) },
            ),
            (DeltaOp::AddPrecedence { before: e(1), after: e(2) }, DeltaError::DuplicateConstraint),
            (
                DeltaOp::AddPrecedence { before: e(2), after: e(1) },
                DeltaError::ConstraintCycle { before: e(2), after: e(1) },
            ),
            (
                DeltaOp::RemovePrecedence { before: e(2), after: e(1) },
                DeltaError::UnknownConstraint,
            ),
            (
                DeltaOp::SetVenueCapacity { location: LocationId::new(0), capacity: Some(0) },
                DeltaError::ZeroCapacity,
            ),
            (
                DeltaOp::SetVenueCapacity { location: LocationId::new(7), capacity: None },
                DeltaError::UnknownConstraint,
            ),
        ];
        for (op, want) in bad {
            assert_eq!(apply(&mut inst, &op).unwrap_err(), want, "{op:?}");
            assert_eq!(inst, before, "{op:?} must leave the instance unchanged");
        }
    }

    /// Regression: removing an event must drop its conflict/precedence
    /// edges and shift the survivors' ids atomically with the event itself,
    /// so op streams cannot strand dangling constraint references.
    #[test]
    fn remove_event_maintains_constraints() {
        let mut inst = running_example();
        let e = |i: usize| EventId::new(i);
        apply(&mut inst, &DeltaOp::AddConflict { a: e(0), b: e(2) }).unwrap();
        apply(&mut inst, &DeltaOp::AddConflict { a: e(1), b: e(3) }).unwrap();
        apply(&mut inst, &DeltaOp::AddPrecedence { before: e(1), after: e(2) }).unwrap();
        apply(&mut inst, &DeltaOp::AddPrecedence { before: e(0), after: e(3) }).unwrap();

        apply(&mut inst, &DeltaOp::RemoveEvent { event: e(1) }).unwrap();
        // Rules touching e1 are gone; ids above 1 shifted down in lock-step
        // with events/event_interest, and the instance still validates.
        assert_eq!(inst.num_events(), 3);
        assert!(inst.constraints.has_conflict(e(0), e(1))); // was e0–e2
        assert!(!inst.constraints.has_conflict(e(1), e(3)));
        assert!(inst.constraints.has_precedence(e(0), e(2))); // was e0→e3
        assert_eq!(inst.constraints.len(), 2);
        assert!(inst.validate().is_ok());

        // A failing removal leaves the constraints untouched too.
        let before = inst.clone();
        assert!(apply(&mut inst, &DeltaOp::RemoveEvent { event: e(9) }).is_err());
        assert_eq!(inst, before);
    }

    #[test]
    fn constraint_ops_serde_roundtrip() {
        for op in [
            DeltaOp::AddConflict { a: EventId::new(0), b: EventId::new(1) },
            DeltaOp::RemovePrecedence { before: EventId::new(2), after: EventId::new(0) },
            DeltaOp::SetVenueCapacity { location: LocationId::new(1), capacity: Some(4) },
            DeltaOp::SetVenueCapacity { location: LocationId::new(1), capacity: None },
        ] {
            let back: DeltaOp = serde_json::from_str(&serde_json::to_string(&op).unwrap()).unwrap();
            assert_eq!(op, back);
        }
    }
}
