//! Window coalescing: collapse a burst of [`DeltaOp`]s into one canonical
//! minimal batch with the same net effect, bit for bit.
//!
//! Real delta traffic is bursty and redundant — N interest drifts on one
//! `(event, user)` cell collapse to the last one, an announce-then-cancel
//! of the same event cancels outright, a joining user who lapses within
//! the window never existed as far as the scheduler cares. Applying a
//! whole window op-at-a-time pays one repair *per op*; coalescing first
//! pays one repair *per window* over a batch that is never larger than
//! the window (each emitted op is sponsored by at least one window op).
//!
//! ## The algebra
//!
//! [`coalesce`] simulates the window against a scratch clone of the base
//! instance (reusing [`apply`]'s validation verbatim, so a window fails
//! exactly where op-at-a-time application would), tracks which event and
//! user *slots* survive, and then re-derives a canonical batch from the
//! final state:
//!
//! | rule | effect |
//! |---|---|
//! | drift-merge | per surviving base `(event, user)` cell, only the final value is emitted — and nothing at all when it net-reverted to the base bits |
//! | add/remove cancellation | an event or user added and removed inside the window vanishes from the batch |
//! | user-churn folding | all joins fold into one `AddUsers`, all lapses of base users into one `RetireUsers` |
//! | constraint last-writer-wins | the constraint sets are diffed; redundant set/clear churn disappears |
//!
//! ## Emission order (and why replay is bit-identical)
//!
//! The batch is emitted in a fixed canonical order: `AddUsers`,
//! `RetireUsers`, `AddEvent`s (final tail order), `RemoveEvent`s
//! (descending base id), `ShiftInterest`s (ascending final cell), then
//! the constraint diff (removals in pre-window order, additions in final
//! storage order). Additions before removals keeps every intermediate
//! state clear of the `WouldEmpty` guards; descending event removal keeps
//! base ids stable while they are consumed. Every `f64` in the batch is
//! bit-copied from the simulated final instance, and both interest-matrix
//! representations plus the constraint `Vec`s are canonical in (or
//! reproduced in) storage order — so materializing the coalesced batch
//! yields an [`Instance`] that is **equal** (`PartialEq`, and bitwise
//! underneath) to materializing the original window. The equivalence
//! suite pins this for every dataset family.

use std::collections::BTreeSet;

use super::{apply, DeltaOp, NewUser};
use crate::constraints::{ConflictPair, PrecedenceEdge, VenueCapacity};
use crate::error::DeltaError;
use crate::ids::EventId;
use crate::model::Instance;

/// A window op failed validation during simulation; `op_index` is its
/// position inside the window and `source` the exact error op-at-a-time
/// application would have reported.
#[derive(Debug, Clone, PartialEq)]
pub struct CoalesceError {
    /// Index of the rejected op within the window.
    pub op_index: usize,
    /// Why it was rejected.
    pub source: DeltaError,
}

impl std::fmt::Display for CoalesceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "window op #{}: {}", self.op_index, self.source)
    }
}

impl std::error::Error for CoalesceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Coalesces `window` against `base` into a canonical batch whose
/// materialization equals applying the window op-at-a-time (see the
/// module docs for the algebra and the bit-identity argument).
///
/// The batch is never longer than the window, and coalescing is
/// idempotent: re-coalescing a coalesced batch returns it unchanged.
///
/// # Errors
/// [`CoalesceError`] wrapping the first op the window rejects — the same
/// op, and the same [`DeltaError`], as op-at-a-time application. Nothing
/// is emitted for a rejected window.
pub fn coalesce(base: &Instance, window: &[DeltaOp]) -> Result<Vec<DeltaOp>, CoalesceError> {
    // --- Simulation pass -------------------------------------------------
    // `apply` both validates (identically to op-at-a-time) and accumulates
    // the final state every emitted value is bit-copied from. Slot lists
    // track identity through the dense-id shifts: `Some(orig)` is a base
    // slot, `None` a window-added one. Base slots always precede added
    // slots (adds append, removals preserve order), so survivors keep
    // their base-relative order.
    let mut cur = base.clone();
    let mut ev_slots: Vec<Option<usize>> = (0..base.num_events()).map(Some).collect();
    let mut user_slots: Vec<Option<usize>> = (0..base.num_users()).map(Some).collect();
    // Base-cell drifts, recorded by *base* ids so later shifts cannot
    // alias them. Drifts on window-added rows/columns need no record —
    // the emitted AddEvent/AddUsers payloads read final values anyway.
    let mut touched: BTreeSet<(usize, usize)> = BTreeSet::new();

    for (op_index, op) in window.iter().enumerate() {
        apply(&mut cur, op).map_err(|source| CoalesceError { op_index, source })?;
        match op {
            DeltaOp::AddEvent { .. } => ev_slots.push(None),
            DeltaOp::RemoveEvent { event } => {
                ev_slots.remove(event.index());
            }
            DeltaOp::AddUsers { users } => {
                user_slots.extend(std::iter::repeat_n(None, users.len()));
            }
            DeltaOp::RetireUsers { users } => {
                for &u in users.iter().rev() {
                    user_slots.remove(u);
                }
            }
            DeltaOp::ShiftInterest { event, user, .. } => {
                if let (Some(oe), Some(ou)) = (ev_slots[event.index()], user_slots[*user]) {
                    touched.insert((oe, ou));
                }
            }
            // Constraint ops are reconstructed from the state diff below.
            _ => {}
        }
    }

    // Base id -> final position for the survivors.
    let mut ev_final: Vec<Option<usize>> = vec![None; base.num_events()];
    for (pos, slot) in ev_slots.iter().enumerate() {
        if let Some(orig) = slot {
            ev_final[*orig] = Some(pos);
        }
    }
    let mut user_final: Vec<Option<usize>> = vec![None; base.num_users()];
    for (pos, slot) in user_slots.iter().enumerate() {
        if let Some(orig) = slot {
            user_final[*orig] = Some(pos);
        }
    }

    let mut out = Vec::new();

    // --- (a) AddUsers: surviving joiners, final tail order ---------------
    // Emitted first, while the replay's event set is still the base set:
    // each row spans the base events, with surviving columns carrying the
    // final bits and doomed columns zero-padded (the pad is erased with
    // the column in step (d), so it never reaches the final instance).
    let added_users: Vec<usize> =
        user_slots.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(p, _)| p).collect();
    if !added_users.is_empty() {
        let users: Vec<NewUser> = added_users
            .iter()
            .map(|&p| NewUser {
                event_interest: (0..base.num_events())
                    .map(|oe| match ev_final[oe] {
                        Some(fp) => cur.event_interest.value(fp, p),
                        None => 0.0,
                    })
                    .collect(),
                competing_interest: (0..cur.num_competing())
                    .map(|c| cur.competing_interest.value(c, p))
                    .collect(),
                activity: (0..cur.num_intervals()).map(|t| cur.activity.value(p, t)).collect(),
                weight: cur.user_weights.as_ref().map(|w| w[p]),
            })
            .collect();
        out.push(DeltaOp::AddUsers { users });
    }

    // --- (b) RetireUsers: lapsed base users, ascending base ids ----------
    // Valid pre-shift indices: the joiners sit at the tail, above every
    // base id, and the final user count bounds the batch away from empty.
    let retired: Vec<usize> =
        (0..base.num_users()).filter(|&ou| user_final[ou].is_none()).collect();
    if !retired.is_empty() {
        out.push(DeltaOp::RetireUsers { users: retired });
    }

    // --- (c) AddEvent: surviving announcements, final tail order ---------
    // The user set is final after (a)+(b), so each column is read at full
    // final width.
    for (pos, slot) in ev_slots.iter().enumerate() {
        if slot.is_none() {
            out.push(DeltaOp::AddEvent {
                event: cur.events[pos].clone(),
                interest: (0..cur.num_users()).map(|u| cur.event_interest.value(pos, u)).collect(),
            });
        }
    }

    // --- (d) RemoveEvent: cancelled base events, descending base ids -----
    // Descending keeps every remaining base id equal to its original, and
    // each removal drops the event's constraint edges exactly as the
    // constraint diff below expects (it diffs against the same replay).
    let removed_events: Vec<usize> =
        (0..base.num_events()).filter(|&oe| ev_final[oe].is_none()).collect();
    for &oe in removed_events.iter().rev() {
        out.push(DeltaOp::RemoveEvent { event: EventId::new(oe) });
    }

    // --- (e) ShiftInterest: net drifts on surviving base cells -----------
    // BTreeSet order is ascending (base event, base user); survival is
    // order-preserving, so emission is ascending in final ids too.
    for &(oe, ou) in &touched {
        if let (Some(fe), Some(fu)) = (ev_final[oe], user_final[ou]) {
            let v = cur.event_interest.value(fe, fu);
            if v.to_bits() != base.event_interest.value(oe, ou).to_bits() {
                out.push(DeltaOp::ShiftInterest { event: EventId::new(fe), user: fu, interest: v });
            }
        }
    }

    // --- (f) Constraint diff ---------------------------------------------
    // `pre` is the constraint set the replay holds after step (d): base
    // rules minus the removed events' edges, ids shifted in the same
    // descending order. Each family is diffed order-aware against the
    // final set so the replay reproduces its exact Vec storage (the
    // constraint sets compare order-sensitively).
    let mut pre = base.constraints.clone();
    for &oe in removed_events.iter().rev() {
        pre.remove_event(EventId::new(oe));
    }
    diff_conflicts(pre.conflicts(), cur.constraints.conflicts(), &mut out);
    diff_precedences(pre.precedences(), cur.constraints.precedences(), &mut out);
    diff_capacities(pre.venue_capacities(), cur.constraints.venue_capacities(), &mut out);

    Ok(out)
}

/// Splits `cur` into the longest prefix that is an in-order (by `eq`)
/// subsequence of `pre` — the survivors — and a tail of additions.
/// Returns the split point and a per-`pre`-entry survival mask. This is
/// the unique decomposition a retain-then-push history can produce:
/// removals preserve order and additions append, so everything after the
/// first non-survivor is an addition.
fn split_survivors<T>(pre: &[T], cur: &[T], eq: impl Fn(&T, &T) -> bool) -> (usize, Vec<bool>) {
    let mut matched = vec![false; pre.len()];
    let mut j = 0;
    let mut split = cur.len();
    for (i, entry) in cur.iter().enumerate() {
        match pre[j..].iter().position(|p| eq(p, entry)) {
            Some(off) => {
                matched[j + off] = true;
                j += off + 1;
            }
            None => {
                split = i;
                break;
            }
        }
    }
    (split, matched)
}

fn diff_conflicts(pre: &[ConflictPair], cur: &[ConflictPair], out: &mut Vec<DeltaOp>) {
    // Exact (oriented) equality: a surviving pair is never rewritten, so
    // its stored orientation must match; a re-added pair with flipped
    // orientation correctly lands in the removal+addition path.
    let (split, matched) = split_survivors(pre, cur, |a, b| a == b);
    for (p, _) in pre.iter().zip(&matched).filter(|(_, &m)| !m) {
        out.push(DeltaOp::RemoveConflict { a: p.a, b: p.b });
    }
    for p in &cur[split..] {
        out.push(DeltaOp::AddConflict { a: p.a, b: p.b });
    }
}

fn diff_precedences(pre: &[PrecedenceEdge], cur: &[PrecedenceEdge], out: &mut Vec<DeltaOp>) {
    let (split, matched) = split_survivors(pre, cur, |a, b| a == b);
    for (p, _) in pre.iter().zip(&matched).filter(|(_, &m)| !m) {
        out.push(DeltaOp::RemovePrecedence { before: p.before, after: p.after });
    }
    for p in &cur[split..] {
        out.push(DeltaOp::AddPrecedence { before: p.before, after: p.after });
    }
}

fn diff_capacities(pre: &[VenueCapacity], cur: &[VenueCapacity], out: &mut Vec<DeltaOp>) {
    // Capacities match by location: a set on an existing location updates
    // in place (position preserved), so survivors may carry a new value.
    // Clears go first so a cleared-then-reset location re-enters at the
    // tail, exactly where the replayed push puts it.
    let (split, matched) = split_survivors(pre, cur, |a, b| a.location == b.location);
    for (p, _) in pre.iter().zip(&matched).filter(|(_, &m)| !m) {
        out.push(DeltaOp::SetVenueCapacity { location: p.location, capacity: None });
    }
    for entry in &cur[..split] {
        let old = pre.iter().find(|p| p.location == entry.location).expect("matched survivor");
        if old.capacity != entry.capacity {
            out.push(DeltaOp::SetVenueCapacity {
                location: entry.location,
                capacity: Some(entry.capacity),
            });
        }
    }
    for entry in &cur[split..] {
        out.push(DeltaOp::SetVenueCapacity {
            location: entry.location,
            capacity: Some(entry.capacity),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::materialize;
    use super::*;
    use crate::ids::LocationId;
    use crate::model::{running_example, Event};

    fn e(i: usize) -> EventId {
        EventId::new(i)
    }

    fn unit_user(inst: &Instance, fill: f64) -> NewUser {
        NewUser {
            event_interest: vec![fill; inst.num_events()],
            competing_interest: vec![fill / 2.0; inst.num_competing()],
            activity: vec![fill; inst.num_intervals()],
            weight: None,
        }
    }

    /// The one invariant everything else leans on: materializing the
    /// coalesced batch equals materializing the window.
    fn assert_sound(base: &Instance, window: &[DeltaOp]) -> Vec<DeltaOp> {
        let batch = coalesce(base, window).expect("window must be valid");
        assert!(batch.len() <= window.len(), "batch may not outgrow the window");
        let via_window = materialize(base, window).unwrap();
        let via_batch = materialize(base, &batch).unwrap();
        assert_eq!(via_batch, via_window, "coalesced replay diverged");
        // Idempotence: a canonical batch re-coalesces to itself.
        assert_eq!(coalesce(base, &batch).unwrap(), batch);
        batch
    }

    #[test]
    fn empty_window_coalesces_to_nothing() {
        let base = running_example();
        assert_eq!(coalesce(&base, &[]).unwrap(), Vec::<DeltaOp>::new());
    }

    #[test]
    fn drift_merge_keeps_only_the_last_value() {
        let base = running_example();
        let window = vec![
            DeltaOp::ShiftInterest { event: e(1), user: 0, interest: 0.1 },
            DeltaOp::ShiftInterest { event: e(1), user: 0, interest: 0.7 },
            DeltaOp::ShiftInterest { event: e(1), user: 0, interest: 0.35 },
        ];
        let batch = assert_sound(&base, &window);
        assert_eq!(batch, vec![DeltaOp::ShiftInterest { event: e(1), user: 0, interest: 0.35 }]);
    }

    #[test]
    fn reverted_drift_cancels_outright() {
        let base = running_example();
        let original = base.event_interest.value(2, 1);
        let window = vec![
            DeltaOp::ShiftInterest { event: e(2), user: 1, interest: 0.9 },
            DeltaOp::ShiftInterest { event: e(2), user: 1, interest: original },
        ];
        assert_eq!(assert_sound(&base, &window), vec![]);
    }

    #[test]
    fn add_then_remove_event_cancels() {
        let base = running_example();
        let window = vec![
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(3), 1.0),
                interest: vec![0.4, 0.8],
            },
            // The new event lands at id 4 and is cancelled right away.
            DeltaOp::RemoveEvent { event: e(4) },
        ];
        assert_eq!(assert_sound(&base, &window), vec![]);
    }

    #[test]
    fn join_then_lapse_cancels_and_folds() {
        let base = running_example();
        let window = vec![
            DeltaOp::AddUsers { users: vec![unit_user(&base, 0.5), unit_user(&base, 0.25)] },
            DeltaOp::AddUsers { users: vec![unit_user(&base, 0.75)] },
            // Retire one base user and the first joiner (index 2 post-add).
            DeltaOp::RetireUsers { users: vec![0, 2] },
        ];
        let batch = assert_sound(&base, &window);
        // Folds to one AddUsers (two surviving joiners) + one RetireUsers.
        assert_eq!(batch.len(), 2);
        assert!(matches!(&batch[0], DeltaOp::AddUsers { users } if users.len() == 2));
        assert_eq!(batch[1], DeltaOp::RetireUsers { users: vec![0] });
    }

    #[test]
    fn drift_on_added_event_folds_into_its_column() {
        let base = running_example();
        let window = vec![
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(3), 1.0),
                interest: vec![0.4, 0.8],
            },
            DeltaOp::ShiftInterest { event: e(4), user: 1, interest: 0.05 },
        ];
        let batch = assert_sound(&base, &window);
        assert_eq!(batch.len(), 1);
        match &batch[0] {
            DeltaOp::AddEvent { interest, .. } => assert_eq!(interest, &vec![0.4, 0.05]),
            other => panic!("expected AddEvent, got {other:?}"),
        }
    }

    #[test]
    fn drift_on_removed_event_vanishes() {
        let base = running_example();
        let window = vec![
            DeltaOp::ShiftInterest { event: e(3), user: 0, interest: 0.9 },
            DeltaOp::RemoveEvent { event: e(3) },
        ];
        let batch = assert_sound(&base, &window);
        assert_eq!(batch, vec![DeltaOp::RemoveEvent { event: e(3) }]);
    }

    #[test]
    fn constraint_churn_is_last_writer_wins() {
        let base = running_example();
        let loc = LocationId::new(0);
        let window = vec![
            DeltaOp::SetVenueCapacity { location: loc, capacity: Some(2) },
            DeltaOp::SetVenueCapacity { location: loc, capacity: Some(5) },
            DeltaOp::AddConflict { a: e(0), b: e(2) },
            DeltaOp::RemoveConflict { a: e(2), b: e(0) },
            DeltaOp::AddPrecedence { before: e(1), after: e(3) },
        ];
        let batch = assert_sound(&base, &window);
        assert_eq!(
            batch,
            vec![
                DeltaOp::AddPrecedence { before: e(1), after: e(3) },
                DeltaOp::SetVenueCapacity { location: loc, capacity: Some(5) },
            ]
        );
    }

    #[test]
    fn set_then_clear_capacity_cancels() {
        let base = running_example();
        let loc = LocationId::new(1);
        let window = vec![
            DeltaOp::SetVenueCapacity { location: loc, capacity: Some(3) },
            DeltaOp::SetVenueCapacity { location: loc, capacity: None },
        ];
        assert_eq!(assert_sound(&base, &window), vec![]);
    }

    /// Removing a base event inside the window must also coalesce away
    /// the constraint rules that removal dropped — the diff is taken
    /// against the post-removal (`pre`) set, not the raw base set.
    #[test]
    fn event_removal_folds_its_constraint_edges() {
        let mut base = running_example();
        base.constraints.add_conflict(e(0), e(1));
        base.constraints.add_precedence(e(1), e(2));
        base.constraints.add_conflict(e(2), e(3));
        let window = vec![
            DeltaOp::RemoveEvent { event: e(1) },
            // Former e3 is now e2; retract the surviving (shifted) pair.
            DeltaOp::RemoveConflict { a: e(1), b: e(2) },
        ];
        let batch = assert_sound(&base, &window);
        assert_eq!(
            batch,
            vec![
                DeltaOp::RemoveEvent { event: e(1) },
                DeltaOp::RemoveConflict { a: e(1), b: e(2) },
            ]
        );
    }

    /// A conflict removed and re-added lands at the tail of the storage
    /// Vec; the batch must reproduce that exact order, not just the set.
    #[test]
    fn readded_conflict_reproduces_storage_order() {
        let mut base = running_example();
        base.constraints.add_conflict(e(0), e(1));
        base.constraints.add_conflict(e(2), e(3));
        let window = vec![
            DeltaOp::RemoveConflict { a: e(0), b: e(1) },
            DeltaOp::AddConflict { a: e(0), b: e(1) },
        ];
        let batch = assert_sound(&base, &window);
        assert_eq!(
            batch,
            vec![
                DeltaOp::RemoveConflict { a: e(0), b: e(1) },
                DeltaOp::AddConflict { a: e(0), b: e(1) },
            ]
        );
    }

    #[test]
    fn mixed_window_stays_sound() {
        let base = running_example();
        let window = vec![
            DeltaOp::AddUsers { users: vec![unit_user(&base, 0.6)] },
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(2), 2.0),
                interest: vec![0.1, 0.2, 0.3],
            },
            DeltaOp::ShiftInterest { event: e(0), user: 2, interest: 0.45 },
            DeltaOp::RemoveEvent { event: e(2) },
            DeltaOp::AddConflict { a: e(0), b: e(3) },
            DeltaOp::RetireUsers { users: vec![1] },
            DeltaOp::ShiftInterest { event: e(0), user: 0, interest: 0.0 },
        ];
        assert_sound(&base, &window);
    }

    #[test]
    fn invalid_window_reports_the_offending_op() {
        let base = running_example();
        let window = vec![
            DeltaOp::ShiftInterest { event: e(0), user: 0, interest: 0.5 },
            DeltaOp::RemoveEvent { event: e(9) },
        ];
        let err = coalesce(&base, &window).unwrap_err();
        assert_eq!(err.op_index, 1);
        assert!(matches!(err.source, DeltaError::UnknownEvent { .. }));
        assert!(err.to_string().contains("window op #1"));
    }
}
