//! Candidate time intervals.

use serde::{Deserialize, Serialize};

/// A candidate time interval `t ∈ T` — a period available for organizing
/// events (e.g. ⟨Friday 8–11pm⟩ in the paper's running example).
///
/// The SES model treats intervals as atomic, non-overlapping slots; all
/// temporal-conflict structure (which competing events overlap which slot)
/// is expressed by attaching competing events to intervals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// Optional human-readable label (used by examples and reports).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub label: Option<String>,
}

impl Interval {
    /// Creates an unlabeled interval.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a labeled interval.
    pub fn named(label: impl Into<String>) -> Self {
        Self { label: Some(label.into()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_interval_keeps_label() {
        let t = Interval::named("Friday 8-11pm");
        assert_eq!(t.label.as_deref(), Some("Friday 8-11pm"));
    }

    #[test]
    fn default_is_unlabeled() {
        assert!(Interval::new().label.is_none());
    }
}
