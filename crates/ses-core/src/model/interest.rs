//! Storage for the interest function `µ : U × (E ∪ C) → [0, 1]`.
//!
//! Interest drives every score computation (Eq. 1/4), so its layout decides
//! the performance of the whole system. Two interchangeable representations
//! are provided:
//!
//! * [`DenseInterest`] — an *item-major* dense matrix (`data[item · |U| + u]`).
//!   Iterating an item's column touches `|U|` contiguous doubles, exactly
//!   matching the paper's cost accounting of `|U|` operations per assignment
//!   score. This is the faithful-reproduction representation.
//! * [`SparseInterest`] — a CSC-like per-item list of `(user, µ)` non-zeros.
//!   Real EBSN interest is extremely sparse (a Meetup user cares about a
//!   handful of the ~16K events), and a score only receives contributions
//!   from users with `µ_{u,e} > 0`, so iterating non-zeros is an exact
//!   optimization. The `ablation` bench quantifies the difference.
//! * [`CompressedInterest`] — dictionary-encoded codes in 512-user-aligned
//!   compressed blocks, ~2 bytes per stored entry on quantized dense
//!   columns. The million-user layout; see [`super::compressed`].
//!
//! All three decode to the same `(user, µ)` sequence in the same order, so
//! every downstream float reduction is bit-identical across backends.
//!
//! Both candidate-event interest and competing-event interest use this type;
//! an "item" is a column (an event) and the matrix is `items × users`.

use super::compressed::{CompressedInterest, CompressedInterestBuilder, StorageKind};
use crate::error::BuildError;
use serde::{Deserialize, Serialize};

/// Interest of every user over a set of items (events), in one of three
/// physical layouts. See the module docs for the trade-off.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InterestMatrix {
    /// Dense item-major storage; column iteration touches every user.
    Dense(DenseInterest),
    /// Sparse per-item non-zero lists; column iteration touches `nnz` users.
    Sparse(SparseInterest),
    /// Dictionary-encoded 512-aligned compressed blocks; column iteration
    /// touches `nnz` users, decoded block-wise.
    Compressed(CompressedInterest),
}

impl InterestMatrix {
    /// Number of items (columns/events).
    #[inline]
    pub fn num_items(&self) -> usize {
        match self {
            Self::Dense(d) => d.num_items,
            Self::Sparse(s) => s.indptr.len() - 1,
            Self::Compressed(c) => c.num_items(),
        }
    }

    /// Number of users (rows).
    #[inline]
    pub fn num_users(&self) -> usize {
        match self {
            Self::Dense(d) => d.num_users,
            Self::Sparse(s) => s.num_users,
            Self::Compressed(c) => c.num_users(),
        }
    }

    /// Interest value `µ(user, item)`; `0.0` for absent sparse entries.
    ///
    /// # Panics
    /// Panics if `item` or `user` is out of range.
    #[inline]
    pub fn value(&self, item: usize, user: usize) -> f64 {
        match self {
            Self::Dense(d) => d.value(item, user),
            Self::Sparse(s) => s.value(item, user),
            Self::Compressed(c) => c.value(item, user),
        }
    }

    /// Iterates the column of `item` as `(user, µ)` pairs in increasing user
    /// order. Dense storage yields **all** users (zeros included, matching the
    /// paper's `|U|`-per-score accounting); sparse yields non-zeros only.
    #[inline]
    pub fn column(&self, item: usize) -> ColumnIter<'_> {
        match self {
            Self::Dense(d) => {
                ColumnIter::Dense { values: d.column_slice(item), first_user: 0, next: 0 }
            }
            Self::Sparse(s) => {
                let (users, values) = s.column_slices(item);
                ColumnIter::Sparse { users, values, next: 0 }
            }
            Self::Compressed(c) => {
                let (pos, end, block_idx) = c.part_cursor(item, 0..c.column_len(item));
                ColumnIter::Compressed { matrix: c, pos, end, block_idx }
            }
        }
    }

    /// Iterates one *positional* slice of `item`'s column: entries at
    /// positions `range` of the [`column`](Self::column) iteration (for
    /// dense storage positions are user indices; for sparse they index the
    /// non-zero list). Concatenating `column_part(item, r)` over the blocks
    /// of [`crate::parallel::block_range`] reproduces `column(item)` exactly
    /// — this is the unit the engine's fixed-block reduction works in.
    ///
    /// # Panics
    /// Panics if `range` exceeds `column_len(item)`.
    #[inline]
    pub fn column_part(&self, item: usize, range: std::ops::Range<usize>) -> ColumnIter<'_> {
        match self {
            Self::Dense(d) => {
                let col = d.column_slice(item);
                ColumnIter::Dense {
                    values: &col[range.start..range.end],
                    first_user: range.start,
                    next: 0,
                }
            }
            Self::Sparse(s) => {
                let (users, values) = s.column_slices(item);
                ColumnIter::Sparse {
                    users: &users[range.start..range.end],
                    values: &values[range.start..range.end],
                    next: 0,
                }
            }
            Self::Compressed(c) => {
                let (pos, end, block_idx) = c.part_cursor(item, range);
                ColumnIter::Compressed { matrix: c, pos, end, block_idx }
            }
        }
    }

    /// Number of entries a [`column`](Self::column) iteration will touch for
    /// `item` — the per-score "user operations" cost of this representation.
    #[inline]
    pub fn column_len(&self, item: usize) -> usize {
        match self {
            Self::Dense(d) => {
                assert!(item < d.num_items, "item {item} out of range");
                d.num_users
            }
            Self::Sparse(s) => {
                let (users, _) = s.column_slices(item);
                users.len()
            }
            Self::Compressed(c) => c.column_len(item),
        }
    }

    /// Total mass `Σ_u µ(u, item)` of one column — O(1): both layouts cache
    /// per-column sums, maintained as the bitwise left-to-right sum of the
    /// stored column on every mutation. The scoring engine's bound-first
    /// gate leans on this being cheap.
    #[inline]
    pub fn column_sum(&self, item: usize) -> f64 {
        match self {
            Self::Dense(d) => d.col_sums[item],
            Self::Sparse(s) => s.col_sums[item],
            Self::Compressed(c) => c.column_sum(item),
        }
    }

    /// Validates that every stored value lies in `[0, 1]`.
    pub fn validate(&self) -> Result<(), BuildError> {
        for item in 0..self.num_items() {
            for (user, v) in self.column(item) {
                if !(0.0..=1.0).contains(&v) || v.is_nan() {
                    return Err(BuildError::InterestOutOfRange {
                        value: v,
                        context: format!("user {user}, item {item}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Appends one item (event) with the given dense per-user column.
    /// Sparse storage keeps only the non-zeros.
    ///
    /// # Panics
    /// Panics if `column.len() != num_users()`.
    pub fn push_item(&mut self, column: &[f64]) {
        match self {
            Self::Dense(d) => d.push_item(column),
            Self::Sparse(s) => s.push_item(column),
            Self::Compressed(c) => c.push_item(column),
        }
    }

    /// Removes one item (event); items above it shift down by one, exactly
    /// mirroring a `Vec::remove` on the owning event list.
    ///
    /// # Panics
    /// Panics if `item` is out of range.
    pub fn remove_item(&mut self, item: usize) {
        match self {
            Self::Dense(d) => d.remove_item(item),
            Self::Sparse(s) => s.remove_item(item),
            Self::Compressed(c) => c.remove_item(item),
        }
    }

    /// Sets `µ(user, item)`. Sparse storage inserts, overwrites, or (for a
    /// zero) drops the entry, preserving the drop-exact-zeros convention of
    /// [`to_sparse`](Self::to_sparse).
    ///
    /// # Panics
    /// Panics if `item` or `user` is out of range.
    pub fn set_value(&mut self, item: usize, user: usize, value: f64) {
        match self {
            Self::Dense(d) => d.set(item, user, value),
            Self::Sparse(s) => s.set_value(item, user, value),
            Self::Compressed(c) => c.set_value(item, user, value),
        }
    }

    /// Appends new users. `rows[j]` is the j-th new user's interest over all
    /// items (`rows[j].len() == num_items()`); the new users receive the next
    /// consecutive user indices.
    ///
    /// # Panics
    /// Panics on a row-length mismatch.
    pub fn append_users(&mut self, rows: &[Vec<f64>]) {
        match self {
            Self::Dense(d) => d.append_users(rows),
            Self::Sparse(s) => s.append_users(rows),
            Self::Compressed(c) => c.append_users(rows),
        }
    }

    /// Removes the given users (strictly increasing indices); surviving
    /// users shift down to keep indices dense.
    ///
    /// # Panics
    /// Panics if the indices are not strictly increasing or out of range.
    pub fn remove_users(&mut self, users: &[usize]) {
        match self {
            Self::Dense(d) => d.remove_users(users),
            Self::Sparse(s) => s.remove_users(users),
            Self::Compressed(c) => c.remove_users(users),
        }
    }

    /// Converts to the dense representation (no-op if already dense).
    pub fn to_dense(&self) -> DenseInterest {
        match self {
            Self::Dense(d) => d.clone(),
            Self::Sparse(s) => {
                // Fill the raw buffer, then compute each column sum once at
                // construction — `set` would recompute the O(|U|) sum per
                // stored non-zero.
                let (num_items, num_users) = (s.indptr.len() - 1, s.num_users);
                let mut data = vec![0.0; num_items * num_users];
                for item in 0..num_items {
                    let (users, values) = s.column_slices(item);
                    for (&u, &v) in users.iter().zip(values) {
                        data[item * num_users + u as usize] = v;
                    }
                }
                DenseInterest::from_raw(num_items, num_users, data)
                    .expect("shape is consistent by construction")
            }
            Self::Compressed(c) => {
                let (num_items, num_users) = (c.num_items(), c.num_users());
                let mut data = vec![0.0; num_items * num_users];
                for item in 0..num_items {
                    c.for_each_in_part(item, 0..c.column_len(item), |u, v| {
                        data[item * num_users + u] = v;
                    });
                }
                DenseInterest::from_raw(num_items, num_users, data)
                    .expect("shape is consistent by construction")
            }
        }
    }

    /// Converts to the sparse representation (no-op if already sparse),
    /// dropping exact zeros.
    pub fn to_sparse(&self) -> SparseInterest {
        match self {
            Self::Sparse(s) => s.clone(),
            Self::Dense(d) => {
                let mut b = SparseInterestBuilder::new(d.num_items, d.num_users);
                for item in 0..d.num_items {
                    for (u, &v) in d.column_slice(item).iter().enumerate() {
                        if v != 0.0 {
                            b.push(item, u, v);
                        }
                    }
                }
                b.build()
            }
            Self::Compressed(c) => {
                let mut b = SparseInterestBuilder::new(c.num_items(), c.num_users());
                for item in 0..c.num_items() {
                    c.for_each_in_part(item, 0..c.column_len(item), |u, v| {
                        b.push(item, u, v);
                    });
                }
                b.build()
            }
        }
    }

    /// Converts to the compressed representation (no-op if already
    /// compressed), dropping exact zeros and interning the dictionary in
    /// canonical first-use order over the item-ascending, user-ascending
    /// entry stream.
    pub fn to_compressed(&self) -> CompressedInterest {
        match self {
            Self::Compressed(c) => c.clone(),
            _ => {
                let mut b = CompressedInterestBuilder::new(self.num_items(), self.num_users());
                for item in 0..self.num_items() {
                    for (u, v) in self.column(item) {
                        b.push(item, u, v); // the builder drops zeros
                    }
                }
                b.build()
            }
        }
    }

    /// An empty (zero-item) matrix in the requested layout, ready to grow
    /// one column at a time via [`push_item`](Self::push_item) — the
    /// streaming-generation entry point: large instances are assembled
    /// column-by-column without ever materializing a dense matrix.
    pub fn empty(kind: StorageKind, num_users: usize) -> InterestMatrix {
        match kind {
            StorageKind::Dense => Self::Dense(DenseInterest::zeros(0, num_users)),
            StorageKind::Sparse => Self::Sparse(SparseInterestBuilder::new(0, num_users).build()),
            StorageKind::Compressed => Self::Compressed(CompressedInterest::empty(num_users)),
        }
    }

    /// The physical layout currently in use.
    #[inline]
    pub fn storage_kind(&self) -> StorageKind {
        match self {
            Self::Dense(_) => StorageKind::Dense,
            Self::Sparse(_) => StorageKind::Sparse,
            Self::Compressed(_) => StorageKind::Compressed,
        }
    }

    /// Converts to the requested layout (no-op when already there).
    pub fn convert_to(&self, kind: StorageKind) -> InterestMatrix {
        match kind {
            StorageKind::Dense => Self::Dense(self.to_dense()),
            StorageKind::Sparse => Self::Sparse(self.to_sparse()),
            StorageKind::Compressed => Self::Compressed(self.to_compressed()),
        }
    }

    /// Approximate resident bytes of the backing arrays (element counts ×
    /// element sizes; allocator slack excluded so the figure is
    /// deterministic).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Self::Dense(d) => d.heap_bytes(),
            Self::Sparse(s) => s.heap_bytes(),
            Self::Compressed(c) => c.heap_bytes(),
        }
    }

    /// Normalizes the representation so that logically equal matrices built
    /// through different mutation histories compare equal after conversion:
    /// drops stored exact zeros from the sparse and compressed layouts
    /// (reachable only via hand-built or deserialized data — every mutation
    /// path already drops them) and re-interns the compressed dictionary.
    /// Dense storage is always canonical. Returns the number of stored
    /// entries dropped.
    pub fn canonicalize(&mut self) -> usize {
        match self {
            Self::Dense(_) => 0,
            Self::Sparse(s) => s.canonicalize(),
            Self::Compressed(c) => c.canonicalize(),
        }
    }
}

impl From<DenseInterest> for InterestMatrix {
    fn from(d: DenseInterest) -> Self {
        Self::Dense(d)
    }
}

impl From<SparseInterest> for InterestMatrix {
    fn from(s: SparseInterest) -> Self {
        Self::Sparse(s)
    }
}

impl From<CompressedInterest> for InterestMatrix {
    fn from(c: CompressedInterest) -> Self {
        Self::Compressed(c)
    }
}

/// Iterator over one item's `(user, µ)` column. See
/// [`InterestMatrix::column`].
#[derive(Debug)]
pub enum ColumnIter<'a> {
    /// Dense column: yields every user index with its (possibly zero) value.
    Dense {
        /// The (sub)column's contiguous value slice.
        values: &'a [f64],
        /// User index of `values[0]` (non-zero for `column_part` slices).
        first_user: usize,
        /// Next position within `values` to yield.
        next: usize,
    },
    /// Sparse column: yields stored non-zeros only.
    Sparse {
        /// Sorted user indices of the non-zeros.
        users: &'a [u32],
        /// Values parallel to `users`.
        values: &'a [f64],
        /// Next position to yield.
        next: usize,
    },
    /// Compressed column: yields stored non-zeros only, decoded block-wise.
    Compressed {
        /// The backing matrix (codes, dictionary, block directory).
        matrix: &'a CompressedInterest,
        /// Next absolute entry position to yield.
        pos: usize,
        /// One-past-the-last absolute entry position.
        end: usize,
        /// Directory index of the block containing `pos`.
        block_idx: usize,
    },
}

impl Iterator for ColumnIter<'_> {
    type Item = (usize, f64);

    #[inline]
    fn next(&mut self) -> Option<(usize, f64)> {
        match self {
            ColumnIter::Dense { values, first_user, next } => {
                let i = *next;
                let v = *values.get(i)?;
                *next += 1;
                Some((*first_user + i, v))
            }
            ColumnIter::Sparse { users, values, next } => {
                let i = *next;
                let u = *users.get(i)?;
                *next += 1;
                Some((u as usize, values[i]))
            }
            ColumnIter::Compressed { matrix, pos, end, block_idx } => {
                matrix.cursor_next(pos, *end, block_idx)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = match self {
            ColumnIter::Dense { values, next, .. } => values.len() - next,
            ColumnIter::Sparse { users, next, .. } => users.len() - next,
            ColumnIter::Compressed { pos, end, .. } => end - pos,
        };
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ColumnIter<'_> {}

/// Dense item-major interest storage. `data[item · num_users + user]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseInterest {
    num_items: usize,
    num_users: usize,
    data: Vec<f64>,
    /// Cached per-item column sums — always the bitwise left-to-right sum of
    /// the stored column (every mutation recomputes the affected columns, it
    /// never adjusts incrementally, so the cache cannot drift).
    col_sums: Vec<f64>,
}

/// The one definition of a cached column sum: the left-to-right sum of the
/// stored values. Shared by all layouts so the caches agree bitwise
/// (interleaved exact zeros add nothing).
#[inline]
pub(crate) fn stored_sum(values: &[f64]) -> f64 {
    let mut s = 0.0;
    for &v in values {
        s += v;
    }
    s
}

impl DenseInterest {
    /// An all-zero matrix of the given shape.
    pub fn zeros(num_items: usize, num_users: usize) -> Self {
        Self {
            num_items,
            num_users,
            data: vec![0.0; num_items * num_users],
            col_sums: vec![0.0; num_items],
        }
    }

    /// Builds from a generator function `f(item, user) -> µ`.
    pub fn from_fn(
        num_items: usize,
        num_users: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(num_items * num_users);
        for item in 0..num_items {
            for user in 0..num_users {
                data.push(f(item, user));
            }
        }
        Self::with_sums(num_items, num_users, data)
    }

    /// Builds from raw item-major data.
    ///
    /// # Errors
    /// Returns [`BuildError::DimensionMismatch`] if
    /// `data.len() != num_items * num_users`.
    pub fn from_raw(
        num_items: usize,
        num_users: usize,
        data: Vec<f64>,
    ) -> Result<Self, BuildError> {
        if data.len() != num_items * num_users {
            return Err(BuildError::DimensionMismatch {
                what: "dense interest",
                expected: num_items * num_users,
                actual: data.len(),
            });
        }
        Ok(Self::with_sums(num_items, num_users, data))
    }

    fn with_sums(num_items: usize, num_users: usize, data: Vec<f64>) -> Self {
        let col_sums =
            (0..num_items).map(|i| stored_sum(&data[i * num_users..(i + 1) * num_users])).collect();
        Self { num_items, num_users, data, col_sums }
    }

    /// Recomputes one cached column sum from storage.
    fn refresh_sum(&mut self, item: usize) {
        let s = stored_sum(self.column_slice(item));
        self.col_sums[item] = s;
    }

    /// Number of items (columns).
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of users (rows).
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// The contiguous per-user slice of one item.
    #[inline]
    pub fn column_slice(&self, item: usize) -> &[f64] {
        let start = item * self.num_users;
        &self.data[start..start + self.num_users]
    }

    /// Value lookup.
    #[inline]
    pub fn value(&self, item: usize, user: usize) -> f64 {
        assert!(user < self.num_users, "user {user} out of range");
        self.data[item * self.num_users + user]
    }

    /// Sets one value.
    #[inline]
    pub fn set(&mut self, item: usize, user: usize, value: f64) {
        assert!(user < self.num_users, "user {user} out of range");
        self.data[item * self.num_users + user] = value;
        self.refresh_sum(item);
    }

    /// Appends one item column. See [`InterestMatrix::push_item`].
    pub fn push_item(&mut self, column: &[f64]) {
        assert_eq!(column.len(), self.num_users, "column length must equal user count");
        self.data.extend_from_slice(column);
        self.col_sums.push(stored_sum(column));
        self.num_items += 1;
    }

    /// Removes one item column. See [`InterestMatrix::remove_item`].
    pub fn remove_item(&mut self, item: usize) {
        assert!(item < self.num_items, "item {item} out of range");
        let start = item * self.num_users;
        self.data.drain(start..start + self.num_users);
        self.col_sums.remove(item);
        self.num_items -= 1;
    }

    /// Appends new users. See [`InterestMatrix::append_users`].
    pub fn append_users(&mut self, rows: &[Vec<f64>]) {
        for row in rows {
            assert_eq!(row.len(), self.num_items, "user row length must equal item count");
        }
        let new_users = self.num_users + rows.len();
        let mut data = Vec::with_capacity(self.num_items * new_users);
        for item in 0..self.num_items {
            data.extend_from_slice(self.column_slice(item));
            data.extend(rows.iter().map(|row| row[item]));
        }
        *self = Self::with_sums(self.num_items, new_users, data);
    }

    /// Removes users. See [`InterestMatrix::remove_users`].
    pub fn remove_users(&mut self, users: &[usize]) {
        let keep = user_keep_mask(self.num_users, users);
        let mut data = Vec::with_capacity(self.num_items * (self.num_users - users.len()));
        for item in 0..self.num_items {
            let col = self.column_slice(item);
            data.extend(col.iter().zip(&keep).filter(|(_, &k)| k).map(|(&v, _)| v));
        }
        *self = Self::with_sums(self.num_items, self.num_users - users.len(), data);
    }

    /// Approximate resident bytes (element counts × element sizes; allocator
    /// slack excluded so the figure is deterministic).
    pub fn heap_bytes(&self) -> usize {
        (self.data.len() + self.col_sums.len()) * 8
    }
}

/// Validates a strictly increasing user-removal list and returns the
/// per-user keep mask — the one definition of the removal invariant shared
/// by every user-indexed structure (interest, activity, weights).
///
/// # Panics
/// Panics if the list is not strictly increasing or references a user out
/// of range.
pub(crate) fn user_keep_mask(num_users: usize, users: &[usize]) -> Vec<bool> {
    let mut keep = vec![true; num_users];
    let mut prev = None;
    for &u in users {
        assert!(u < num_users, "user {u} out of range");
        assert!(prev.is_none_or(|p| p < u), "user removal list must be strictly increasing");
        keep[u] = false;
        prev = Some(u);
    }
    keep
}

/// Sparse (CSC-like) interest storage: per item, sorted `(user, value)`
/// non-zeros held in two parallel arrays (`users[i]` indexes `values[i]`),
/// so a column is a pair of contiguous slices the scoring kernel can stream
/// without per-entry dispatch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseInterest {
    num_users: usize,
    /// `indptr[item]..indptr[item+1]` delimits item's entries.
    indptr: Vec<usize>,
    users: Vec<u32>,
    values: Vec<f64>,
    /// Cached per-item column sums; see [`DenseInterest`]'s field docs —
    /// identical invariant (bitwise left-to-right sum of stored non-zeros,
    /// recomputed on every mutation of the column).
    col_sums: Vec<f64>,
}

impl SparseInterest {
    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of users (rows).
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items (columns).
    #[inline]
    pub fn num_items(&self) -> usize {
        self.indptr.len() - 1
    }

    /// One item's column as parallel `(user-index, value)` slices — the raw
    /// form the scoring kernel's sparse loop streams over.
    #[inline]
    pub fn column_slices(&self, item: usize) -> (&[u32], &[f64]) {
        let (a, b) = (self.indptr[item], self.indptr[item + 1]);
        (&self.users[a..b], &self.values[a..b])
    }

    /// Recomputes one cached column sum from storage.
    fn refresh_sum(&mut self, item: usize) {
        let (a, b) = (self.indptr[item], self.indptr[item + 1]);
        self.col_sums[item] = stored_sum(&self.values[a..b]);
    }

    /// Recomputes every cached column sum (used after whole-matrix rebuilds).
    fn refresh_all_sums(&mut self) {
        self.col_sums = (0..self.num_items())
            .map(|i| stored_sum(&self.values[self.indptr[i]..self.indptr[i + 1]]))
            .collect();
    }

    /// Value lookup by binary search; absent entries are `0.0`.
    pub fn value(&self, item: usize, user: usize) -> f64 {
        assert!(user < self.num_users, "user {user} out of range");
        let (users, values) = self.column_slices(item);
        match users.binary_search(&(user as u32)) {
            Ok(i) => values[i],
            Err(_) => 0.0,
        }
    }

    /// Appends one item column (dense input; zeros are dropped). See
    /// [`InterestMatrix::push_item`].
    pub fn push_item(&mut self, column: &[f64]) {
        assert_eq!(column.len(), self.num_users, "column length must equal user count");
        let before = self.values.len();
        for (u, &v) in column.iter().enumerate() {
            if v != 0.0 {
                self.users.push(u as u32);
                self.values.push(v);
            }
        }
        self.indptr.push(self.users.len());
        self.col_sums.push(stored_sum(&self.values[before..]));
    }

    /// Removes one item column. See [`InterestMatrix::remove_item`].
    pub fn remove_item(&mut self, item: usize) {
        assert!(item < self.num_items(), "item {item} out of range");
        let (a, b) = (self.indptr[item], self.indptr[item + 1]);
        self.users.drain(a..b);
        self.values.drain(a..b);
        self.indptr.remove(item + 1);
        self.col_sums.remove(item);
        for p in self.indptr.iter_mut().skip(item + 1) {
            *p -= b - a;
        }
    }

    /// Sets one value, inserting/overwriting/dropping the stored non-zero.
    /// See [`InterestMatrix::set_value`].
    pub fn set_value(&mut self, item: usize, user: usize, value: f64) {
        assert!(item < self.num_items(), "item {item} out of range");
        assert!(user < self.num_users, "user {user} out of range");
        let (a, b) = (self.indptr[item], self.indptr[item + 1]);
        match self.users[a..b].binary_search(&(user as u32)) {
            Ok(i) if value != 0.0 => self.values[a + i] = value,
            Ok(i) => {
                self.users.remove(a + i);
                self.values.remove(a + i);
                for p in self.indptr.iter_mut().skip(item + 1) {
                    *p -= 1;
                }
            }
            Err(_) if value == 0.0 => {}
            Err(i) => {
                self.users.insert(a + i, user as u32);
                self.values.insert(a + i, value);
                for p in self.indptr.iter_mut().skip(item + 1) {
                    *p += 1;
                }
            }
        }
        self.refresh_sum(item);
    }

    /// Appends new users (zeros dropped). New users receive the largest
    /// indices, so their non-zeros land at every column's tail in order.
    /// See [`InterestMatrix::append_users`].
    pub fn append_users(&mut self, rows: &[Vec<f64>]) {
        let num_items = self.num_items();
        for row in rows {
            assert_eq!(row.len(), num_items, "user row length must equal item count");
        }
        let mut users = Vec::with_capacity(self.users.len());
        let mut values = Vec::with_capacity(self.values.len());
        let mut indptr = Vec::with_capacity(self.indptr.len());
        indptr.push(0);
        for item in 0..num_items {
            let (old_u, old_v) = self.column_slices(item);
            users.extend_from_slice(old_u);
            values.extend_from_slice(old_v);
            for (j, row) in rows.iter().enumerate() {
                if row[item] != 0.0 {
                    users.push((self.num_users + j) as u32);
                    values.push(row[item]);
                }
            }
            indptr.push(users.len());
        }
        self.users = users;
        self.values = values;
        self.indptr = indptr;
        self.num_users += rows.len();
        self.refresh_all_sums();
    }

    /// Removes users, remapping the surviving indices down. See
    /// [`InterestMatrix::remove_users`].
    pub fn remove_users(&mut self, users: &[usize]) {
        let keep = user_keep_mask(self.num_users, users);
        // remap[u] = u's new index (meaningful only where keep[u]).
        let mut remap = vec![0u32; self.num_users];
        let mut next = 0u32;
        for (u, &k) in keep.iter().enumerate() {
            remap[u] = next;
            if k {
                next += 1;
            }
        }
        let mut new_users = Vec::with_capacity(self.users.len());
        let mut new_values = Vec::with_capacity(self.values.len());
        let mut indptr = Vec::with_capacity(self.indptr.len());
        indptr.push(0);
        for item in 0..self.num_items() {
            let (old_u, old_v) = self.column_slices(item);
            for (&u, &v) in old_u.iter().zip(old_v) {
                if keep[u as usize] {
                    new_users.push(remap[u as usize]);
                    new_values.push(v);
                }
            }
            indptr.push(new_users.len());
        }
        self.users = new_users;
        self.values = new_values;
        self.indptr = indptr;
        self.num_users -= users.len();
        self.refresh_all_sums();
    }

    /// Approximate resident bytes (element counts × element sizes; allocator
    /// slack excluded so the figure is deterministic).
    pub fn heap_bytes(&self) -> usize {
        (self.indptr.len() + self.values.len() + self.col_sums.len()) * 8 + self.users.len() * 4
    }

    /// Drops any stored exact zeros (reachable only via deserialized data —
    /// every mutation path drops them as it goes). Returns the number of
    /// entries dropped. See [`InterestMatrix::canonicalize`].
    pub fn canonicalize(&mut self) -> usize {
        let before = self.values.len();
        if !self.values.contains(&0.0) {
            return 0;
        }
        let mut users = Vec::with_capacity(before);
        let mut values = Vec::with_capacity(before);
        let mut indptr = Vec::with_capacity(self.indptr.len());
        indptr.push(0);
        for item in 0..self.num_items() {
            let (old_u, old_v) = self.column_slices(item);
            for (&u, &v) in old_u.iter().zip(old_v) {
                if v != 0.0 {
                    users.push(u);
                    values.push(v);
                }
            }
            indptr.push(users.len());
        }
        self.users = users;
        self.values = values;
        self.indptr = indptr;
        self.refresh_all_sums();
        before - self.values.len()
    }
}

/// Incremental builder for [`SparseInterest`]. Entries may be pushed in any
/// order; `build` sorts and deduplicates (last write wins).
#[derive(Debug)]
pub struct SparseInterestBuilder {
    num_items: usize,
    num_users: usize,
    triplets: Vec<(u32, u32, f64)>,
}

impl SparseInterestBuilder {
    /// A builder for a matrix of the given shape.
    pub fn new(num_items: usize, num_users: usize) -> Self {
        Self { num_items, num_users, triplets: Vec::new() }
    }

    /// Adds one `(item, user) -> value` entry. Zero values are dropped.
    ///
    /// # Panics
    /// Panics if `item` or `user` is out of range.
    pub fn push(&mut self, item: usize, user: usize, value: f64) {
        assert!(item < self.num_items, "item {item} out of range");
        assert!(user < self.num_users, "user {user} out of range");
        if value != 0.0 {
            self.triplets.push((item as u32, user as u32, value));
        }
    }

    /// Finalizes into CSC form.
    pub fn build(mut self) -> SparseInterest {
        self.triplets.sort_unstable_by_key(|&(i, u, _)| (i, u));
        // Last write wins on duplicates.
        self.triplets.dedup_by(|later, earlier| {
            if later.0 == earlier.0 && later.1 == earlier.1 {
                earlier.2 = later.2;
                true
            } else {
                false
            }
        });

        let mut indptr = Vec::with_capacity(self.num_items + 1);
        let mut users = Vec::with_capacity(self.triplets.len());
        let mut values = Vec::with_capacity(self.triplets.len());
        let mut pos = 0usize;
        indptr.push(0);
        for item in 0..self.num_items as u32 {
            while pos < self.triplets.len() && self.triplets[pos].0 == item {
                users.push(self.triplets[pos].1);
                values.push(self.triplets[pos].2);
                pos += 1;
            }
            indptr.push(users.len());
        }
        let mut out =
            SparseInterest { num_users: self.num_users, indptr, users, values, col_sums: vec![] };
        out.refresh_all_sums();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> DenseInterest {
        // 2 items × 3 users
        DenseInterest::from_raw(2, 3, vec![0.9, 0.0, 0.2, 0.3, 0.6, 0.0]).unwrap()
    }

    #[test]
    fn dense_value_and_column() {
        let d = sample_dense();
        assert_eq!(d.value(0, 0), 0.9);
        assert_eq!(d.value(1, 1), 0.6);
        let col: Vec<_> = InterestMatrix::from(d).column(0).collect();
        assert_eq!(col, vec![(0, 0.9), (1, 0.0), (2, 0.2)]);
    }

    #[test]
    fn dense_column_len_is_all_users() {
        let m = InterestMatrix::from(sample_dense());
        assert_eq!(m.column_len(0), 3);
        assert_eq!(m.column_len(1), 3);
    }

    #[test]
    fn sparse_skips_zeros() {
        let m = InterestMatrix::from(sample_dense()).to_sparse();
        assert_eq!(m.nnz(), 4);
        let m = InterestMatrix::from(m);
        let col: Vec<_> = m.column(0).collect();
        assert_eq!(col, vec![(0, 0.9), (2, 0.2)]);
        assert_eq!(m.column_len(0), 2);
        assert_eq!(m.value(0, 1), 0.0);
        assert_eq!(m.value(1, 1), 0.6);
    }

    #[test]
    fn dense_sparse_roundtrip_preserves_values() {
        let d = sample_dense();
        let roundtrip = InterestMatrix::from(d.clone()).to_sparse();
        let back = InterestMatrix::from(roundtrip).to_dense();
        assert_eq!(d, back);
    }

    #[test]
    fn column_sum_agrees_across_layouts() {
        let dense = InterestMatrix::from(sample_dense());
        let sparse = InterestMatrix::from(dense.to_sparse());
        for item in 0..2 {
            assert!((dense.column_sum(item) - sparse.column_sum(item)).abs() < 1e-12);
        }
    }

    /// The cached `column_sum` must stay bitwise equal to a fresh
    /// left-to-right recompute of the stored column through every mutation,
    /// in both layouts — the O(1) lookup the scoring engine's bound-first
    /// gate relies on.
    #[test]
    fn column_sum_cache_survives_mutations() {
        let assert_cache = |m: &InterestMatrix, what: &str| {
            for item in 0..m.num_items() {
                let recomputed: f64 = {
                    let mut s = 0.0;
                    for (_, v) in m.column(item) {
                        s += v;
                    }
                    s
                };
                assert_eq!(
                    m.column_sum(item).to_bits(),
                    recomputed.to_bits(),
                    "{what}: cached sum of item {item} drifted"
                );
            }
        };
        for mut m in [
            InterestMatrix::from(sample_dense()),
            InterestMatrix::from(sample_dense().to_sparse_helper()),
            InterestMatrix::from(sample_dense()).convert_to(StorageKind::Compressed),
        ] {
            assert_cache(&m, "fresh");
            m.push_item(&[0.0, 0.5, 0.8]);
            assert_cache(&m, "push_item");
            m.set_value(0, 1, 0.4);
            m.set_value(2, 1, 0.0);
            assert_cache(&m, "set_value");
            m.append_users(&[vec![0.1, 0.0, 0.2]]);
            assert_cache(&m, "append_users");
            m.remove_item(1);
            assert_cache(&m, "remove_item");
            m.remove_users(&[0, 3]);
            assert_cache(&m, "remove_users");
        }
    }

    #[test]
    fn builder_handles_unordered_and_duplicate_pushes() {
        let mut b = SparseInterestBuilder::new(2, 4);
        b.push(1, 3, 0.5);
        b.push(0, 2, 0.1);
        b.push(0, 0, 0.7);
        b.push(0, 2, 0.4); // overwrite
        b.push(1, 1, 0.0); // dropped
        let s = b.build();
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.value(0, 2), 0.4);
        assert_eq!(s.value(0, 0), 0.7);
        assert_eq!(s.value(1, 3), 0.5);
        assert_eq!(s.value(1, 1), 0.0);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let d = DenseInterest::from_raw(1, 2, vec![0.5, 1.5]).unwrap();
        let err = InterestMatrix::from(d).validate().unwrap_err();
        assert!(matches!(err, BuildError::InterestOutOfRange { .. }));
    }

    #[test]
    fn validate_accepts_bounds() {
        let d = DenseInterest::from_raw(1, 2, vec![0.0, 1.0]).unwrap();
        assert!(InterestMatrix::from(d).validate().is_ok());
    }

    #[test]
    fn from_raw_rejects_wrong_len() {
        assert!(matches!(
            DenseInterest::from_raw(2, 2, vec![0.0; 3]),
            Err(BuildError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_fn_layout() {
        let d = DenseInterest::from_fn(2, 2, |item, user| (item * 10 + user) as f64 / 100.0);
        assert_eq!(d.value(1, 0), 0.10);
        assert_eq!(d.value(0, 1), 0.01);
    }

    #[test]
    fn exact_size_iterator() {
        let m = InterestMatrix::from(sample_dense());
        let mut it = m.column(0);
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn column_part_tiles_the_column() {
        let dense = InterestMatrix::from(sample_dense());
        let sparse = InterestMatrix::from(dense.to_sparse());
        let compressed = InterestMatrix::from(dense.to_compressed());
        for m in [&dense, &sparse, &compressed] {
            for item in 0..2 {
                let len = m.column_len(item);
                let whole: Vec<_> = m.column(item).collect();
                for split in 0..=len {
                    let mut tiled: Vec<_> = m.column_part(item, 0..split).collect();
                    tiled.extend(m.column_part(item, split..len));
                    assert_eq!(tiled, whole, "item {item} split {split}");
                }
            }
        }
    }

    /// Every mutation, applied to both layouts, must leave them agreeing
    /// value-for-value (the delta module relies on this to keep dense and
    /// sparse instances interchangeable under op streams).
    #[test]
    fn mutations_agree_across_layouts() {
        let mut dense = InterestMatrix::from(sample_dense());
        let mut sparse = InterestMatrix::from(sample_dense().to_sparse_helper());
        let mut compressed =
            InterestMatrix::from(sample_dense()).convert_to(StorageKind::Compressed);
        let assert_agree = |d: &InterestMatrix, s: &InterestMatrix, what: &str| {
            assert_eq!(d.num_items(), s.num_items(), "{what}: item counts");
            assert_eq!(d.num_users(), s.num_users(), "{what}: user counts");
            for item in 0..d.num_items() {
                for user in 0..d.num_users() {
                    assert_eq!(d.value(item, user), s.value(item, user), "{what} ({item},{user})");
                }
            }
        };
        for m in [&mut dense, &mut sparse, &mut compressed] {
            m.push_item(&[0.0, 0.5, 0.8]);
            m.set_value(0, 1, 0.4); // insert (was 0)
            m.set_value(2, 1, 0.0); // drop
            m.set_value(1, 0, 0.9); // overwrite
            m.append_users(&[vec![0.1, 0.0, 0.2], vec![0.0, 0.0, 0.0]]);
            m.remove_item(1);
            m.remove_users(&[0, 3]);
        }
        assert_agree(&dense, &sparse, "after mutation chain (sparse)");
        assert_agree(&dense, &compressed, "after mutation chain (compressed)");
        assert_eq!(dense.num_items(), 2);
        assert_eq!(dense.num_users(), 3);
        // Mutated sparse/compressed must equal a from-scratch conversion of
        // the mutated dense (canonical form, zeros dropped).
        assert_eq!(dense.to_sparse(), sparse.to_sparse());
        assert_eq!(dense.to_compressed(), compressed.to_compressed());
    }

    #[test]
    fn push_and_remove_item_shift_ids() {
        let mut m = InterestMatrix::from(sample_dense());
        m.push_item(&[0.7, 0.0, 0.1]);
        assert_eq!(m.num_items(), 3);
        assert_eq!(m.value(2, 0), 0.7);
        m.remove_item(0);
        // Former items 1, 2 are now 0, 1.
        assert_eq!(m.value(0, 1), 0.6);
        assert_eq!(m.value(1, 0), 0.7);
    }

    #[test]
    fn sparse_set_value_keeps_zero_drop_convention() {
        let mut s = InterestMatrix::from(sample_dense().to_sparse_helper());
        let nnz_before = s.column_len(0);
        s.set_value(0, 0, 0.0);
        assert_eq!(s.column_len(0), nnz_before - 1, "zeros must be dropped, not stored");
        s.set_value(0, 0, 0.0); // idempotent on absent entries
        assert_eq!(s.column_len(0), nnz_before - 1);
    }

    /// `set_value(.., 0.0)` is representation-invariant: whichever backend
    /// absorbs the write, converting all backends to canonical sparse form
    /// afterwards yields the identical matrix — the regression the
    /// `canonicalize` helper guards.
    #[test]
    fn set_zero_is_representation_invariant() {
        let mut dense = InterestMatrix::from(sample_dense());
        let mut sparse = InterestMatrix::from(sample_dense().to_sparse_helper());
        let mut compressed =
            InterestMatrix::from(sample_dense()).convert_to(StorageKind::Compressed);
        for m in [&mut dense, &mut sparse, &mut compressed] {
            m.set_value(0, 0, 0.0); // drop a stored non-zero
            m.set_value(1, 2, 0.0); // no-op on an absent/zero entry
            assert_eq!(m.canonicalize(), 0, "mutation paths must already drop zeros");
        }
        assert_eq!(dense.to_sparse(), sparse.to_sparse());
        assert_eq!(dense.to_sparse(), compressed.to_sparse());
        assert_eq!(dense.to_compressed(), compressed.to_compressed());
        assert_eq!(dense.value(0, 0), 0.0);
    }

    /// Deserialized sparse data may carry stored exact zeros; `canonicalize`
    /// drops them and restores equality with the canonical form.
    #[test]
    fn canonicalize_drops_stored_zeros() {
        let mut s = sample_dense().to_sparse_helper();
        // Hand-build a stored zero the mutation API can't produce.
        let json = serde_json::to_string(&s).unwrap().replacen("0.9", "0.0", 1);
        let mut tainted: SparseInterest = serde_json::from_str(&json).unwrap();
        assert_eq!(tainted.nnz(), s.nnz(), "the zero is stored before canonicalization");
        let mut m = InterestMatrix::from(tainted.clone());
        assert_eq!(m.canonicalize(), 1);
        tainted.canonicalize();
        s.set_value(0, 0, 0.0);
        assert_eq!(tainted, s);
        assert_eq!(m, InterestMatrix::from(s));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn remove_users_rejects_unsorted() {
        let mut m = InterestMatrix::from(sample_dense());
        m.remove_users(&[1, 0]);
    }

    impl DenseInterest {
        fn to_sparse_helper(&self) -> SparseInterest {
            InterestMatrix::from(self.clone()).to_sparse()
        }
    }

    #[test]
    fn empty_sparse_column() {
        let b = SparseInterestBuilder::new(3, 2);
        let s = b.build();
        assert_eq!(s.num_items(), 3);
        let m = InterestMatrix::from(s);
        assert_eq!(m.column(1).count(), 0);
        assert_eq!(m.column_sum(1), 0.0);
    }
}
