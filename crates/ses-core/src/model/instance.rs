//! The SES problem instance: everything except the schedule itself.

use crate::constraints::ConstraintSet;
use crate::error::BuildError;
use crate::ids::{CompetingEventId, EventId, IntervalId, LocationId};
use crate::model::activity::ActivityMatrix;
use crate::model::event::{CompetingEvent, Event};
use crate::model::interest::{DenseInterest, InterestMatrix};
use crate::model::interval::Interval;
use serde::{Deserialize, Serialize};

/// A complete instance of the Social Event Scheduling problem (§2.1):
/// candidate events `E`, candidate intervals `T`, competing events `C`,
/// users `U` with interest `µ` and activity `σ`, and the organizer's
/// per-interval resource budget `θ`.
///
/// Instances are immutable once built (construct via [`InstanceBuilder`] or
/// the dataset generators in `ses-datasets`); algorithms never mutate them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Candidate events `E`.
    pub events: Vec<Event>,
    /// Candidate time intervals `T`.
    pub intervals: Vec<Interval>,
    /// Competing events `C` (each pinned to one interval).
    pub competing: Vec<CompetingEvent>,
    /// Interest `µ(u, e)` over candidate events (`|E|` items × `|U|` users).
    pub event_interest: InterestMatrix,
    /// Interest `µ(u, c)` over competing events (`|C|` items × `|U|` users).
    pub competing_interest: InterestMatrix,
    /// Social activity probabilities `σ(u, t)`.
    pub activity: ActivityMatrix,
    /// Organizer's available resources `θ` per interval.
    pub resources: f64,
    /// Optional per-user weights (the §2.1 "weights over the users"
    /// extension, e.g. influence). `None` means every user weighs 1.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub user_weights: Option<Vec<f64>>,
    /// Scenario constraints (venue capacities, conflict pairs, precedence)
    /// consulted by [`Schedule::check_assign`]. Empty ≡ the paper's model;
    /// absent in serialized form when empty, so pre-constraint JSON and wire
    /// requests parse unchanged.
    ///
    /// [`Schedule::check_assign`]: crate::schedule::Schedule::check_assign
    #[serde(default, skip_serializing_if = "ConstraintSet::is_empty")]
    pub constraints: ConstraintSet,
}

impl Instance {
    /// Number of candidate events `|E|`.
    #[inline]
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of candidate intervals `|T|`.
    #[inline]
    pub fn num_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Number of users `|U|`.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.activity.num_users()
    }

    /// Number of competing events `|C|`.
    #[inline]
    pub fn num_competing(&self) -> usize {
        self.competing.len()
    }

    /// Weight of one user (1.0 when no weights are configured).
    #[inline]
    pub fn user_weight(&self, user: usize) -> f64 {
        match &self.user_weights {
            Some(w) => w[user],
            None => 1.0,
        }
    }

    /// Whether the instance carries per-user weights (the weighted-SES
    /// extension; unweighted instances treat every user as weight 1).
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.user_weights.is_some()
    }

    /// Number of *distinct* locations referenced by the candidate events —
    /// the `|L|` a service snapshot reports.
    pub fn num_locations(&self) -> usize {
        let mut locs: Vec<usize> = self.events.iter().map(|e| e.location.index()).collect();
        locs.sort_unstable();
        locs.dedup();
        locs.len()
    }

    /// The competing events pinned to interval `t` (the paper's `C_t`).
    pub fn competing_at(&self, t: IntervalId) -> impl Iterator<Item = CompetingEventId> + '_ {
        self.competing
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.interval == t)
            .map(|(i, _)| CompetingEventId::new(i))
    }

    /// Approximate resident bytes of the instance's bulk data: both interest
    /// matrices, the activity matrix, and the per-entity lists. The figure
    /// the `scale` benches, `ses run --profile`, and the wire `Snapshot`
    /// report; element counts × element sizes, so it is deterministic across
    /// builds of the same logical instance.
    pub fn heap_bytes(&self) -> usize {
        self.event_interest.heap_bytes()
            + self.competing_interest.heap_bytes()
            + self.activity.heap_bytes()
            + self.events.len() * std::mem::size_of::<Event>()
            + self.intervals.len() * std::mem::size_of::<Interval>()
            + self.competing.len() * std::mem::size_of::<CompetingEvent>()
            + self.user_weights.as_ref().map_or(0, |w| w.len() * 8)
    }

    /// All `(event, interval)` pairs — the initial assignment universe of
    /// size `|E| · |T|` that ALG scores up front.
    pub fn assignment_universe(&self) -> impl Iterator<Item = (EventId, IntervalId)> + '_ {
        (0..self.num_events()).flat_map(move |e| {
            (0..self.num_intervals()).map(move |t| (EventId::new(e), IntervalId::new(t)))
        })
    }

    /// Validates internal consistency: matrix shapes, value ranges, resource
    /// sanity, and competing-event interval references.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.events.is_empty() {
            return Err(BuildError::EmptyDimension("candidate events"));
        }
        if self.intervals.is_empty() {
            return Err(BuildError::EmptyDimension("time intervals"));
        }
        if self.num_users() == 0 {
            return Err(BuildError::EmptyDimension("users"));
        }

        if self.event_interest.num_items() != self.num_events() {
            return Err(BuildError::DimensionMismatch {
                what: "event interest items",
                expected: self.num_events(),
                actual: self.event_interest.num_items(),
            });
        }
        if self.event_interest.num_users() != self.num_users() {
            return Err(BuildError::DimensionMismatch {
                what: "event interest users",
                expected: self.num_users(),
                actual: self.event_interest.num_users(),
            });
        }
        if self.competing_interest.num_items() != self.num_competing() {
            return Err(BuildError::DimensionMismatch {
                what: "competing interest items",
                expected: self.num_competing(),
                actual: self.competing_interest.num_items(),
            });
        }
        if self.competing_interest.num_users() != self.num_users() {
            return Err(BuildError::DimensionMismatch {
                what: "competing interest users",
                expected: self.num_users(),
                actual: self.competing_interest.num_users(),
            });
        }
        if self.activity.num_intervals() != self.num_intervals() {
            return Err(BuildError::DimensionMismatch {
                what: "activity intervals",
                expected: self.num_intervals(),
                actual: self.activity.num_intervals(),
            });
        }

        if !self.resources.is_finite() || self.resources < 0.0 {
            return Err(BuildError::InvalidResource {
                value: self.resources,
                context: "organizer resources θ".into(),
            });
        }
        for (i, e) in self.events.iter().enumerate() {
            if !e.required_resources.is_finite() || e.required_resources < 0.0 {
                return Err(BuildError::InvalidResource {
                    value: e.required_resources,
                    context: format!("event {i} required resources"),
                });
            }
            if e.required_resources > self.resources {
                return Err(BuildError::EventNeverSchedulable {
                    event: EventId::new(i),
                    required: e.required_resources,
                    available: self.resources,
                });
            }
        }
        for c in &self.competing {
            if c.interval.index() >= self.num_intervals() {
                return Err(BuildError::DanglingCompetingInterval {
                    interval: c.interval.index(),
                    num_intervals: self.num_intervals(),
                });
            }
        }
        if let Some(w) = &self.user_weights {
            if w.len() != self.num_users() {
                return Err(BuildError::DimensionMismatch {
                    what: "user weights",
                    expected: self.num_users(),
                    actual: w.len(),
                });
            }
            for (u, &x) in w.iter().enumerate() {
                if !x.is_finite() || x < 0.0 {
                    return Err(BuildError::InvalidWeight { value: x, user: u });
                }
            }
        }

        self.event_interest.validate()?;
        self.competing_interest.validate()?;
        self.activity.validate()?;
        self.constraints.validate(self.num_events())?;
        Ok(())
    }
}

/// Step-by-step construction of an [`Instance`], with validation at `build`.
#[derive(Debug)]
pub struct InstanceBuilder {
    events: Vec<Event>,
    intervals: Vec<Interval>,
    competing: Vec<CompetingEvent>,
    event_interest: Option<InterestMatrix>,
    competing_interest: Option<InterestMatrix>,
    activity: Option<ActivityMatrix>,
    resources: f64,
    user_weights: Option<Vec<f64>>,
    constraints: ConstraintSet,
}

impl Default for InstanceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceBuilder {
    /// An empty builder with unlimited-ish resources (θ = ∞ is modeled as
    /// `f64::MAX`; set a real θ with [`resources`](Self::resources)).
    pub fn new() -> Self {
        Self {
            events: Vec::new(),
            intervals: Vec::new(),
            competing: Vec::new(),
            event_interest: None,
            competing_interest: None,
            activity: None,
            resources: f64::MAX,
            user_weights: None,
            constraints: ConstraintSet::new(),
        }
    }

    /// Appends a candidate event, returning its id.
    pub fn add_event(&mut self, event: Event) -> EventId {
        self.events.push(event);
        EventId::new(self.events.len() - 1)
    }

    /// Appends `n` unlabeled intervals, returning the id of the first.
    pub fn add_intervals(&mut self, n: usize) -> IntervalId {
        let first = self.intervals.len();
        self.intervals.extend((0..n).map(|_| Interval::new()));
        IntervalId::new(first)
    }

    /// Appends one interval, returning its id.
    pub fn add_interval(&mut self, interval: Interval) -> IntervalId {
        self.intervals.push(interval);
        IntervalId::new(self.intervals.len() - 1)
    }

    /// Appends a competing event, returning its id.
    pub fn add_competing(&mut self, c: CompetingEvent) -> CompetingEventId {
        self.competing.push(c);
        CompetingEventId::new(self.competing.len() - 1)
    }

    /// Sets the candidate-event interest matrix.
    #[must_use]
    pub fn event_interest(mut self, m: impl Into<InterestMatrix>) -> Self {
        self.event_interest = Some(m.into());
        self
    }

    /// Sets the competing-event interest matrix.
    #[must_use]
    pub fn competing_interest(mut self, m: impl Into<InterestMatrix>) -> Self {
        self.competing_interest = Some(m.into());
        self
    }

    /// Sets the activity matrix.
    #[must_use]
    pub fn activity(mut self, a: ActivityMatrix) -> Self {
        self.activity = Some(a);
        self
    }

    /// Sets the organizer's resources θ.
    #[must_use]
    pub fn resources(mut self, theta: f64) -> Self {
        self.resources = theta;
        self
    }

    /// Sets per-user weights (influence extension).
    #[must_use]
    pub fn user_weights(mut self, w: Vec<f64>) -> Self {
        self.user_weights = Some(w);
        self
    }

    /// Sets the scenario constraints (validated at [`build`](Self::build)).
    #[must_use]
    pub fn constraints(mut self, cs: ConstraintSet) -> Self {
        self.constraints = cs;
        self
    }

    /// Finalizes and validates the instance.
    ///
    /// # Errors
    /// Any [`BuildError`] from [`Instance::validate`]. A missing competing
    /// interest matrix is only an error when competing events exist; a
    /// missing activity matrix is always an error.
    pub fn build(self) -> Result<Instance, BuildError> {
        let activity = self.activity.ok_or(BuildError::EmptyDimension("activity matrix"))?;
        let num_users = activity.num_users();
        let competing_interest = self
            .competing_interest
            .unwrap_or_else(|| DenseInterest::zeros(self.competing.len(), num_users).into());
        let event_interest =
            self.event_interest.ok_or(BuildError::EmptyDimension("event interest matrix"))?;
        let inst = Instance {
            events: self.events,
            intervals: self.intervals,
            competing: self.competing,
            event_interest,
            competing_interest,
            activity,
            resources: self.resources,
            user_weights: self.user_weights,
            constraints: self.constraints,
        };
        inst.validate()?;
        Ok(inst)
    }
}

/// The paper's running example (Figure 1): four candidate events, two
/// intervals, two competing events, two users.
///
/// Locations: `e1, e2 → Stage 1`, `e3 → Room A`, `e4 → Stage 2`.
/// Competing: `c1 → t1`, `c2 → t2`. Interest and activity values exactly as
/// in Figure 1d. Resources are not exercised by the example (`θ = 10`,
/// `ξ = 1` for every event).
///
/// Index mapping: the paper's `e1..e4` are [`EventId`] `0..=3`, `t1, t2` are
/// [`IntervalId`] `0, 1`, `u1, u2` are users `0, 1`.
///
/// With `k = 3`, all of ALG/INC/HOR/HOR-I schedule
/// `{e4@t2, e1@t1, e2@t2}` with total utility ≈ 1.4073 (Examples 2–5).
pub fn running_example() -> Instance {
    let mut b = InstanceBuilder::new();
    let stage1 = LocationId::new(0);
    let room_a = LocationId::new(1);
    let stage2 = LocationId::new(2);
    b.add_event(Event::new(stage1, 1.0).with_label("e1"));
    b.add_event(Event::new(stage1, 1.0).with_label("e2"));
    b.add_event(Event::new(room_a, 1.0).with_label("e3"));
    b.add_event(Event::new(stage2, 1.0).with_label("e4"));
    b.add_interval(Interval::named("Friday 8-11pm"));
    b.add_interval(Interval::named("Saturday 6-9pm"));
    b.add_competing(CompetingEvent::new(IntervalId::new(0)).with_label("c1"));
    b.add_competing(CompetingEvent::new(IntervalId::new(1)).with_label("c2"));

    // Figure 1d, item-major (per event, the two users' interests).
    let event_interest = DenseInterest::from_raw(
        4,
        2,
        vec![
            0.9, 0.2, // e1
            0.3, 0.6, // e2
            0.0, 0.1, // e3
            0.6, 0.6, // e4
        ],
    )
    .expect("running example event interest");
    let competing_interest = DenseInterest::from_raw(
        2,
        2,
        vec![
            0.8, 0.4, // c1
            0.3, 0.7, // c2
        ],
    )
    .expect("running example competing interest");
    let activity = ActivityMatrix::from_raw(
        2,
        2,
        vec![
            0.8, 0.5, // u1
            0.5, 0.7, // u2
        ],
    )
    .expect("running example activity");

    b.event_interest(event_interest)
        .competing_interest(competing_interest)
        .activity(activity)
        .resources(10.0)
        .build()
        .expect("running example must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_shape() {
        let inst = running_example();
        assert_eq!(inst.num_events(), 4);
        assert_eq!(inst.num_intervals(), 2);
        assert_eq!(inst.num_users(), 2);
        assert_eq!(inst.num_competing(), 2);
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn competing_at_filters_by_interval() {
        let inst = running_example();
        let at_t1: Vec<_> = inst.competing_at(IntervalId::new(0)).collect();
        assert_eq!(at_t1, vec![CompetingEventId::new(0)]);
        let at_t2: Vec<_> = inst.competing_at(IntervalId::new(1)).collect();
        assert_eq!(at_t2, vec![CompetingEventId::new(1)]);
    }

    #[test]
    fn assignment_universe_size() {
        let inst = running_example();
        assert_eq!(inst.assignment_universe().count(), 8);
    }

    #[test]
    fn user_weight_defaults_to_one() {
        let inst = running_example();
        assert_eq!(inst.user_weight(0), 1.0);
        assert_eq!(inst.user_weight(1), 1.0);
    }

    #[test]
    fn builder_rejects_missing_activity() {
        let mut b = InstanceBuilder::new();
        b.add_event(Event::new(LocationId::new(0), 1.0));
        b.add_intervals(1);
        let err = b.event_interest(DenseInterest::zeros(1, 1)).build().unwrap_err();
        assert!(matches!(err, BuildError::EmptyDimension("activity matrix")));
    }

    #[test]
    fn builder_defaults_competing_interest_to_zeros() {
        let mut b = InstanceBuilder::new();
        b.add_event(Event::new(LocationId::new(0), 1.0));
        b.add_intervals(1);
        b.add_competing(CompetingEvent::new(IntervalId::new(0)));
        let inst = b
            .event_interest(DenseInterest::zeros(1, 2))
            .activity(ActivityMatrix::constant(2, 1, 0.5))
            .build()
            .unwrap();
        assert_eq!(inst.competing_interest.num_items(), 1);
        assert_eq!(inst.competing_interest.value(0, 0), 0.0);
    }

    #[test]
    fn validate_rejects_dangling_competing_interval() {
        let mut inst = running_example();
        inst.competing[0].interval = IntervalId::new(9);
        assert!(matches!(
            inst.validate(),
            Err(BuildError::DanglingCompetingInterval { interval: 9, .. })
        ));
    }

    #[test]
    fn validate_rejects_unschedulable_event() {
        let mut inst = running_example();
        inst.events[0].required_resources = 100.0; // θ = 10
        assert!(matches!(inst.validate(), Err(BuildError::EventNeverSchedulable { .. })));
    }

    #[test]
    fn validate_rejects_wrong_weight_len() {
        let mut inst = running_example();
        inst.user_weights = Some(vec![1.0]);
        assert!(matches!(inst.validate(), Err(BuildError::DimensionMismatch { .. })));
    }

    #[test]
    fn validate_rejects_negative_weight() {
        let mut inst = running_example();
        inst.user_weights = Some(vec![1.0, -2.0]);
        assert!(matches!(inst.validate(), Err(BuildError::InvalidWeight { user: 1, .. })));
    }

    #[test]
    fn validate_rejects_bad_theta() {
        let mut inst = running_example();
        inst.resources = f64::NAN;
        // Events require 1.0 > NaN comparisons are false, so θ check fires first.
        assert!(matches!(inst.validate(), Err(BuildError::InvalidResource { .. })));
    }

    #[test]
    fn serde_roundtrip() {
        let inst = running_example();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }
}
