//! The social activity probability `σ : U × T → [0, 1]`.

use crate::error::BuildError;
use serde::{Deserialize, Serialize};

/// Dense user-major storage of the social activity probability `σ_u^t`:
/// the probability that user `u` participates in *some* social activity
/// during interval `t` (estimated from past behaviour such as check-ins,
/// §2.1). `data[user · num_intervals + interval]`.
///
/// Scoring loops look up `σ` for one `(user, interval)` pair at a time while
/// sweeping users of a fixed interval, so an interval-major layout would also
/// work; user-major is chosen because generators produce per-user rows and
/// the matrix is small (`|U| × |T|`) relative to interest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityMatrix {
    num_users: usize,
    num_intervals: usize,
    data: Vec<f64>,
}

impl ActivityMatrix {
    /// A matrix with every probability set to `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn constant(num_users: usize, num_intervals: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "activity probability out of range");
        Self { num_users, num_intervals, data: vec![p; num_users * num_intervals] }
    }

    /// Builds from a generator function `f(user, interval) -> σ`.
    pub fn from_fn(
        num_users: usize,
        num_intervals: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(num_users * num_intervals);
        for user in 0..num_users {
            for interval in 0..num_intervals {
                data.push(f(user, interval));
            }
        }
        Self { num_users, num_intervals, data }
    }

    /// Builds from raw user-major data.
    ///
    /// # Errors
    /// Returns [`BuildError::DimensionMismatch`] on a length mismatch.
    pub fn from_raw(
        num_users: usize,
        num_intervals: usize,
        data: Vec<f64>,
    ) -> Result<Self, BuildError> {
        if data.len() != num_users * num_intervals {
            return Err(BuildError::DimensionMismatch {
                what: "activity matrix",
                expected: num_users * num_intervals,
                actual: data.len(),
            });
        }
        Ok(Self { num_users, num_intervals, data })
    }

    /// Number of users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of intervals.
    #[inline]
    pub fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    /// `σ(user, interval)`.
    #[inline]
    pub fn value(&self, user: usize, interval: usize) -> f64 {
        debug_assert!(user < self.num_users && interval < self.num_intervals);
        self.data[user * self.num_intervals + interval]
    }

    /// Sets one probability.
    #[inline]
    pub fn set(&mut self, user: usize, interval: usize, p: f64) {
        assert!(user < self.num_users && interval < self.num_intervals);
        self.data[user * self.num_intervals + interval] = p;
    }

    /// Appends one user with the given per-interval activity row.
    ///
    /// # Panics
    /// Panics if `row.len() != num_intervals()`.
    pub fn append_user(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.num_intervals, "activity row length must equal |T|");
        self.data.extend_from_slice(row);
        self.num_users += 1;
    }

    /// Removes the given users (strictly increasing indices); survivors
    /// shift down to keep indices dense.
    ///
    /// # Panics
    /// Panics if the indices are not strictly increasing or out of range.
    pub fn remove_users(&mut self, users: &[usize]) {
        let keep = super::user_keep_mask(self.num_users, users);
        let mut data = Vec::with_capacity((self.num_users - users.len()) * self.num_intervals);
        for (user, _) in keep.iter().enumerate().filter(|(_, &k)| k) {
            let start = user * self.num_intervals;
            data.extend_from_slice(&self.data[start..start + self.num_intervals]);
        }
        self.data = data;
        self.num_users -= users.len();
    }

    /// Approximate resident bytes (element counts × element sizes; allocator
    /// slack excluded so the figure is deterministic).
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * 8
    }

    /// Validates that every probability lies in `[0, 1]`.
    pub fn validate(&self) -> Result<(), BuildError> {
        for (i, &p) in self.data.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(BuildError::ActivityOutOfRange {
                    value: p,
                    context: format!(
                        "user {}, interval {}",
                        i / self.num_intervals,
                        i % self.num_intervals
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_fill() {
        let a = ActivityMatrix::constant(2, 3, 0.5);
        assert_eq!(a.value(1, 2), 0.5);
        assert_eq!(a.num_users(), 2);
        assert_eq!(a.num_intervals(), 3);
    }

    #[test]
    fn from_fn_layout() {
        let a = ActivityMatrix::from_fn(2, 2, |u, t| (u * 10 + t) as f64 / 100.0);
        assert_eq!(a.value(0, 1), 0.01);
        assert_eq!(a.value(1, 0), 0.10);
    }

    #[test]
    fn set_and_get() {
        let mut a = ActivityMatrix::constant(1, 2, 0.0);
        a.set(0, 1, 0.8);
        assert_eq!(a.value(0, 1), 0.8);
        assert_eq!(a.value(0, 0), 0.0);
    }

    #[test]
    fn append_and_remove_users() {
        let mut a = ActivityMatrix::from_fn(3, 2, |u, t| (u * 10 + t) as f64 / 100.0);
        a.append_user(&[0.9, 0.8]);
        assert_eq!(a.num_users(), 4);
        assert_eq!(a.value(3, 1), 0.8);
        a.remove_users(&[0, 2]);
        assert_eq!(a.num_users(), 2);
        // Former users 1 and 3 are now 0 and 1.
        assert_eq!(a.value(0, 0), 0.10);
        assert_eq!(a.value(1, 0), 0.9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn remove_users_rejects_duplicates() {
        let mut a = ActivityMatrix::constant(3, 1, 0.5);
        a.remove_users(&[1, 1]);
    }

    #[test]
    fn validate_catches_bad_probability() {
        let a = ActivityMatrix::from_raw(1, 2, vec![0.5, -0.1]).unwrap();
        let err = a.validate().unwrap_err();
        assert!(matches!(err, BuildError::ActivityOutOfRange { .. }));
        assert!(err.to_string().contains("interval 1"));
    }

    #[test]
    fn from_raw_checks_len() {
        assert!(ActivityMatrix::from_raw(2, 2, vec![0.0; 5]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn constant_rejects_bad_probability() {
        let _ = ActivityMatrix::constant(1, 1, 1.5);
    }
}
