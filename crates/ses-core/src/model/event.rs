//! Candidate and competing events.

use crate::ids::{IntervalId, LocationId};
use serde::{Deserialize, Serialize};

/// A candidate event `e ∈ E` waiting to be scheduled.
///
/// Every candidate event is tied to a **location** `ℓe` (the stage/room that
/// would host it) and requires `ξe` **resources** (staff, materials, budget —
/// the paper's abstraction, §2.1). Two events with the same location can
/// never share an interval, and the resources of all events assigned to one
/// interval may not exceed the organizer's total `θ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// The location that would host this event.
    pub location: LocationId,
    /// Resources `ξe ≥ 0` required to organize this event.
    pub required_resources: f64,
    /// Optional human-readable label (used by examples and reports).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub label: Option<String>,
    /// Organization cost of the event — only used by the *profit-oriented*
    /// objective extension (§2.1 mentions this as a trivial modification).
    /// Ignored by the attendance-maximizing objective.
    #[serde(default)]
    pub cost: f64,
    /// Number of consecutive intervals the event spans, starting at its
    /// assigned interval. `1` (the default) reproduces the paper's model;
    /// larger values enable the *event duration* extension of §2.1.
    #[serde(default = "default_duration")]
    pub duration: u32,
}

fn default_duration() -> u32 {
    1
}

impl Event {
    /// Creates a plain (paper-model) event: unit duration, zero cost.
    pub fn new(location: LocationId, required_resources: f64) -> Self {
        Self { location, required_resources, label: None, cost: 0.0, duration: 1 }
    }

    /// Attaches a human-readable label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Sets the organization cost (profit-oriented extension).
    #[must_use]
    pub fn with_cost(mut self, cost: f64) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the duration in intervals (duration extension; must be ≥ 1).
    ///
    /// # Panics
    /// Panics if `duration == 0`.
    #[must_use]
    pub fn with_duration(mut self, duration: u32) -> Self {
        assert!(duration >= 1, "event duration must be at least one interval");
        self.duration = duration;
        self
    }
}

/// A competing event `c ∈ C`: an event already scheduled by a third party
/// that will draw attendance away from candidate events placed in the same
/// (overlapping) interval.
///
/// Competing events are fixed: they occupy an interval `t_c` and contribute
/// their per-user interest to the Luce-choice denominator of Eq. 1 for that
/// interval. They are never (re)scheduled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompetingEvent {
    /// The candidate interval this competing event overlaps with.
    pub interval: IntervalId,
    /// Optional human-readable label.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub label: Option<String>,
}

impl CompetingEvent {
    /// Creates a competing event overlapping the given interval.
    pub fn new(interval: IntervalId) -> Self {
        Self { interval, label: None }
    }

    /// Attaches a human-readable label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let e = Event::new(LocationId::new(2), 3.5)
            .with_label("rock concert")
            .with_cost(100.0)
            .with_duration(2);
        assert_eq!(e.location, LocationId::new(2));
        assert_eq!(e.required_resources, 3.5);
        assert_eq!(e.label.as_deref(), Some("rock concert"));
        assert_eq!(e.cost, 100.0);
        assert_eq!(e.duration, 2);
    }

    #[test]
    fn default_is_paper_model() {
        let e = Event::new(LocationId::new(0), 1.0);
        assert_eq!(e.duration, 1);
        assert_eq!(e.cost, 0.0);
        assert!(e.label.is_none());
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_rejected() {
        let _ = Event::new(LocationId::new(0), 1.0).with_duration(0);
    }

    #[test]
    fn competing_event_roundtrip() {
        let c = CompetingEvent::new(IntervalId::new(1)).with_label("rival gig");
        let json = serde_json::to_string(&c).unwrap();
        let back: CompetingEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn event_serde_defaults() {
        // An event serialized before the extension fields existed must
        // deserialize with paper-model defaults.
        let json = r#"{"location":0,"required_resources":2.0}"#;
        let e: Event = serde_json::from_str(json).unwrap();
        assert_eq!(e.duration, 1);
        assert_eq!(e.cost, 0.0);
    }
}
